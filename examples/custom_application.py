"""Managing a custom application with a custom workload.

The library is not tied to RUBiS: any multi-tier application can be
described by its tiers, transaction mix, and call-graph demands, and
any workload by a trace.  This example defines a two-tier ticketing
API (stateless API tier in front of a replicated database) under a
bursty lunchtime workload, and lets Mistral manage it next to a
standard RUBiS tenant.

Run with:  python examples/custom_application.py
"""

from repro.apps import (
    Application,
    ApplicationSet,
    TierSpec,
    TransactionType,
    make_rubis_application,
)
from repro.testbed import Testbed, build_mistral
from repro.workload.traces import Trace, world_cup_trace


def make_ticketing_app() -> Application:
    """A two-tier API: ~3 ms API work, 2-6 DB calls per transaction."""
    tiers = (
        TierSpec(name="api", software="gunicorn", min_replicas=1, max_replicas=2),
        TierSpec(name="db", software="postgres", min_replicas=1, max_replicas=2),
    )
    transactions = (
        TransactionType(
            name="search-events",
            mix_fraction=0.55,
            visits={"api": 1, "db": 4},
            demand_per_visit={"api": 0.003, "db": 0.0016},
        ),
        TransactionType(
            name="event-details",
            mix_fraction=0.30,
            visits={"api": 1, "db": 2},
            demand_per_visit={"api": 0.002, "db": 0.0014},
        ),
        TransactionType(
            name="checkout",
            mix_fraction=0.15,
            visits={"api": 1, "db": 6},
            demand_per_visit={"api": 0.005, "db": 0.0020},
        ),
    )
    return Application("tickets", tiers, transactions)


def lunchtime_trace() -> Trace:
    """Quiet morning, sharp lunchtime burst, quiet afternoon."""
    points = [
        (0.0, 15.0),
        (3600.0, 20.0),
        (5400.0, 70.0),  # lunch rush
        (7200.0, 75.0),
        (9000.0, 25.0),
        (23400.0, 18.0),
    ]
    return Trace(points, ripple_amplitude=3.0, ripple_period=1400.0, name="lunch")


def main() -> None:
    tickets = make_ticketing_app()
    rubis = make_rubis_application("RUBiS-1")
    applications = ApplicationSet([tickets, rubis])
    traces = {
        "tickets": lunchtime_trace(),
        "RUBiS-1": world_cup_trace(variant=0),
    }
    testbed = Testbed(
        applications,
        traces,
        host_ids=[f"host-{index}" for index in range(4)],
        seed=7,
    )
    controller, initial = build_mistral(testbed)

    print(f"managing: {', '.join(applications.names())}")
    print(f"tickets demand profile: {tickets.demand_profile()}")
    metrics = testbed.run(controller, initial, "mistral", horizon=3.0 * 3600.0)

    target = testbed.utility.parameters.target_response_time
    print()
    print(f"cumulative utility: {metrics.cumulative_utility():+.2f}")
    for app_name, series in sorted(metrics.response_times.items()):
        print(
            f"{app_name}: mean RT {series.mean() * 1000:.0f} ms "
            f"(target {target * 1000:.0f} ms, "
            f"missed {series.fraction_above(target):.0%})"
        )
    print(f"actions: {metrics.action_count()}, mean hosts: {metrics.hosts_powered.mean():.2f}")


if __name__ == "__main__":
    main()
