"""Hierarchical control of the largest scenario (4 apps, 8 hosts).

Demonstrates the paper's multi-level deployment (§II-C, §V-E): two
1st-level controllers, each owning four hosts with zero-width workload
bands and only the quick actions (CPU tuning, local migration), under
one 2nd-level controller that watches the whole system with an
8 req/s band and all six actions.  Prints per-level invocation and
search-time statistics — the data behind Table I.

Run with:  python examples/hierarchical_datacenter.py
"""

from repro.testbed import build_mistral, make_testbed


def main() -> None:
    testbed = make_testbed(app_count=4, seed=0)
    hierarchy, initial = build_mistral(testbed, hierarchical=True)

    print(f"hosts: {len(testbed.host_ids)}, VMs: {len(testbed.catalog)}")
    print(f"1st-level controllers: {len(hierarchy.level1)}")
    for controller in hierarchy.level1:
        scope = sorted(controller.search.scope_hosts or [])
        print(f"  {controller.name}: hosts {', '.join(scope)}")
    print()

    metrics = testbed.run(
        hierarchy, initial, "mistral-hierarchy", horizon=2.5 * 3600.0
    )

    print(f"cumulative utility: {metrics.cumulative_utility():+.2f}")
    print(f"mean power: {metrics.mean_power():.1f} W")
    print(f"actions executed: {metrics.action_count()}")
    print()
    print("per-controller statistics:")
    for controller in hierarchy.controllers():
        stats = controller.stats
        print(
            f"  {controller.name}: invoked {stats.invocations}x, "
            f"band escapes {stats.escapes}, decisions {stats.decisions} "
            f"({stats.null_decisions} null), "
            f"mean search {stats.mean_search_seconds():.2f}s, "
            f"actions issued {stats.actions_issued}"
        )
    durations = hierarchy.mean_search_seconds()
    print()
    print(
        f"mean decision time: level 1 = {durations['level1']:.2f}s, "
        f"level 2 = {durations['level2']:.2f}s "
        f"(the 2nd level considers every host and action, hence slower)"
    )


if __name__ == "__main__":
    main()
