"""Quickstart: run Mistral on the paper's 2-application scenario.

Builds the simulated testbed (two RUBiS applications on four hosts,
World Cup '98-shaped workloads), runs the hierarchical Mistral
controller for the first 90 minutes of the experiment, and prints what
happened: response times against the target, power, adaptation
actions, and the accrued utility.

Run with:  python examples/quickstart.py
"""

from repro import telemetry
from repro.testbed import build_mistral, make_testbed


def main() -> None:
    testbed = make_testbed(app_count=2, seed=0)
    controller, initial = build_mistral(testbed)
    print(f"target response time: {testbed.utility.parameters.target_response_time * 1000:.0f} ms")
    print(f"initial configuration: {initial}")
    print()

    # Telemetry is off by default; enabling it here collects search /
    # cache counters for the summary below (write a JSONL trace instead
    # with telemetry.enable(jsonl_path=...) and roll it up with
    # scripts/telemetry_report.py).
    telemetry.enable()
    metrics = testbed.run(controller, initial, "mistral", horizon=90 * 60.0)
    counters = telemetry.registry.snapshot()["counters"]
    telemetry.disable()

    print(f"samples: {len(metrics.power_watts)}")
    print(f"cumulative utility: {metrics.cumulative_utility():+.2f}")
    print(f"mean power: {metrics.mean_power():.1f} W")
    print(f"mean hosts powered: {metrics.hosts_powered.mean():.2f}")
    target = testbed.utility.parameters.target_response_time
    for app_name, series in sorted(metrics.response_times.items()):
        print(
            f"{app_name}: mean RT {series.mean() * 1000:.0f} ms, "
            f"target missed in {series.fraction_above(target):.0%} of intervals"
        )
    print()
    print(
        f"searches: {counters.get('search.runs', 0)} "
        f"({counters.get('search.expansions', 0)} expansions, "
        f"{counters.get('estimator.incremental_evaluations', 0)} "
        f"incremental evaluations)"
    )
    print(f"adaptation actions executed: {metrics.action_count()}")
    for record in metrics.actions[:10]:
        print(
            f"  t={record.start:7.0f}s  [{record.controller}]  "
            f"{record.description}  ({record.end - record.start:.0f}s)"
        )
    if metrics.action_count() > 10:
        print(f"  ... and {metrics.action_count() - 10} more")


if __name__ == "__main__":
    main()
