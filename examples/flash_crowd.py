"""Flash crowd: how each strategy survives a sudden workload spike.

Zooms into the World Cup flash crowd (16:52-17:14) of the 2-app
scenario and contrasts Mistral with the cost-oblivious Perf-Pwr
baseline: Perf-Pwr chases the optimum with expensive migrations while
the workload is still moving; Mistral weighs adaptation cost against
the predicted stability interval and scales up with cheaper partial
plans.

Run with:  python examples/flash_crowd.py
"""

from repro.testbed import build_mistral, build_perf_pwr, make_testbed

#: The flash crowd in experiment seconds (16:40-17:40).
WINDOW = (6000.0, 9600.0)
#: Run a bit past the window so late effects are visible.
HORIZON = 3.0 * 3600.0


def describe(name: str, metrics, target: float) -> None:
    start, end = WINDOW
    print(f"--- {name} ---")
    for app_name in ("RUBiS-1", "RUBiS-2"):
        series = metrics.response_times[app_name].window(start, end)
        print(
            f"  {app_name}: peak RT {series.maximum() * 1000:6.0f} ms, "
            f"missed target in {series.fraction_above(target):.0%} "
            f"of crowd intervals"
        )
    power = metrics.power_watts.window(start, end)
    print(f"  power during crowd: mean {power.mean():.0f} W, peak {power.maximum():.0f} W")
    actions = [
        record
        for record in metrics.actions
        if start <= record.start <= end
    ]
    print(f"  actions during crowd: {len(actions)}")
    for record in actions[:8]:
        print(f"    t={record.start:6.0f}s  {record.description}")
    if len(actions) > 8:
        print(f"    ... and {len(actions) - 8} more")
    print()


def main() -> None:
    testbed = make_testbed(app_count=2, seed=0)
    target = testbed.utility.parameters.target_response_time
    print(
        "flash crowd: RUBiS-1 ramps from ~30 to ~95 req/s between "
        "16:52 and 17:14\n"
    )
    for name, builder in (
        ("Mistral", build_mistral),
        ("Perf-Pwr (cost-oblivious)", build_perf_pwr),
    ):
        controller, initial = builder(testbed)
        metrics = testbed.run(controller, initial, name, horizon=HORIZON)
        describe(name, metrics, target)

    print(
        "Mistral adapts less frantically: it may briefly miss the "
        "target at the peak, but avoids migrations whose cost would "
        "never be recouped before the next workload change."
    )


if __name__ == "__main__":
    main()
