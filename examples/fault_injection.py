"""Fault injection: kill a host and fail migrations under Mistral.

Runs the 2-application scenario for two simulated hours under the demo
fault scenario from docs/OPERATIONS.md: the first two migration
attempts fail (exercising retry with exponential backoff, and rollback
if the retry budget runs out) and one host crashes an hour in,
stranding its VMs and forcing the hierarchy to re-plan.  Prints the
fault tally, the recovery actions, and what the faults cost in Eq. 3
utility against the same run with faults disabled.

Run with:  python examples/fault_injection.py
"""

from repro import telemetry
from repro.testbed import build_mistral, demo_fault_config, make_testbed

HORIZON = 2 * 3600.0


def main() -> None:
    testbed = make_testbed(app_count=2, seed=0)

    # The clean reference: same controller, same noise streams, no
    # injector attached (the default path is bit-identical to a
    # pre-resilience testbed).
    controller, initial = build_mistral(testbed)
    clean = testbed.run(controller, initial, "mistral", horizon=HORIZON)

    # The faulted run.  demo_fault_config scripts two migration
    # failures and one host crash; seed only matters for probabilistic
    # faults, which this scenario does not use.
    controller, initial = build_mistral(testbed)
    telemetry.enable()
    faulted = testbed.run(
        controller,
        initial,
        "mistral",
        horizon=HORIZON,
        faults=demo_fault_config(seed=0, crash_time=3600.0),
    )
    counters = telemetry.registry.snapshot()["counters"]
    telemetry.disable()

    stats = faulted.fault_stats
    print(
        f"faults injected: {stats.total()} "
        f"({stats.action_failures} action failures, "
        f"{stats.host_crashes} host crash)"
    )
    print(
        f"recovery: {counters.get('recovery.retries', 0)} retries, "
        f"{counters.get('recovery.plans_aborted', 0)} plans aborted, "
        f"{counters.get('recovery.rollbacks', 0)} rollbacks, "
        f"{counters.get('resilience.replans', 0)} forced replans"
    )
    print(
        f"utility: clean {clean.cumulative_utility():+.2f} vs "
        f"faulted {faulted.cumulative_utility():+.2f} "
        f"(faults cost "
        f"{clean.cumulative_utility() - faulted.cumulative_utility():.2f})"
    )
    print()
    print("fault-affected actions:")
    for record in faulted.actions:
        if "[" not in record.description:
            continue
        print(
            f"  t={record.start:7.0f}s  [{record.controller}]  "
            f"{record.description}"
        )


if __name__ == "__main__":
    main()
