"""Transient adaptation-cost model (paper §III-C).

Costs of the six adaptation actions are measured experimentally
*offline* — for each action and workload level, across random VM
placements with a background application — and stored in tables indexed
by workload.  At runtime the Cost Manager looks up the entry with the
nearest workload to predict an action's duration and its response-time
and power deltas.
"""

from repro.costmodel.table import CostEntry, CostTable
from repro.costmodel.measurement import MeasurementCampaign, run_campaign
from repro.costmodel.manager import CostManager, PredictedCost

__all__ = [
    "CostEntry",
    "CostTable",
    "MeasurementCampaign",
    "run_campaign",
    "CostManager",
    "PredictedCost",
]
