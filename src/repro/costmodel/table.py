"""Cost tables indexed by workload (paper §III-C).

Each table entry aggregates, for one ``(action family, tier)`` pair at
one workload level: the action duration, the response-time delta of the
application being adapted, the delta felt by co-located applications,
and the power delta on each affected host.  At runtime the entry with
the workload closest to the measured one is used.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True)
class CostEntry:
    """Averaged offline measurements for one action at one workload."""

    duration: float
    primary_rt_delta: float
    colocated_rt_delta: float
    power_delta_watts: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError("duration must be >= 0")


class CostTable:
    """Workload-indexed cost entries for every action family."""

    def __init__(self) -> None:
        # (kind, tier) -> parallel sorted lists of workloads and entries.
        self._entries: dict[tuple[str, str], tuple[list[float], list[CostEntry]]] = {}

    def add(
        self, kind: str, tier: str, workload: float, entry: CostEntry
    ) -> None:
        """Insert one measured entry (workloads must be unique per key)."""
        if workload < 0:
            raise ValueError("workload must be >= 0")
        workloads, entries = self._entries.setdefault((kind, tier), ([], []))
        index = bisect_left(workloads, workload)
        if index < len(workloads) and workloads[index] == workload:
            raise ValueError(
                f"duplicate entry for {kind}/{tier} at workload {workload}"
            )
        workloads.insert(index, workload)
        entries.insert(index, entry)

    def keys(self) -> tuple[tuple[str, str], ...]:
        """All ``(kind, tier)`` pairs with measurements."""
        return tuple(self._entries)

    def workload_levels(self, kind: str, tier: str) -> tuple[float, ...]:
        """Measured workload grid for one key."""
        workloads, _ = self._entries[(kind, tier)]
        return tuple(workloads)

    def entries(
        self, kind: str, tier: str
    ) -> Iterator[tuple[float, CostEntry]]:
        """All (workload, entry) pairs for one key, by workload."""
        workloads, entries = self._entries[(kind, tier)]
        return iter(zip(workloads, entries))

    def lookup(self, kind: str, tier: str, workload: float) -> CostEntry:
        """Entry with the workload nearest to ``workload``.

        Falls back to the ``'-'`` tier (tier-independent actions such
        as host power cycling), then to any measured tier of the same
        action family (for tiers the offline campaign did not cover —
        e.g. a newly onboarded application with novel tier names).
        """
        key = (kind, tier)
        if key not in self._entries:
            key = (kind, "-")
        if key not in self._entries:
            same_kind = sorted(
                entry_key for entry_key in self._entries
                if entry_key[0] == kind
            )
            if same_kind:
                key = same_kind[0]
        if key not in self._entries:
            raise KeyError(f"no cost entries for action {kind!r} tier {tier!r}")
        workloads, entries = self._entries[key]
        index = bisect_left(workloads, workload)
        if index == 0:
            return entries[0]
        if index == len(workloads):
            return entries[-1]
        before, after = workloads[index - 1], workloads[index]
        return entries[index - 1] if workload - before <= after - workload else (
            entries[index]
        )

    def __len__(self) -> int:
        return sum(len(workloads) for workloads, _ in self._entries.values())
