"""The Cost Manager predictor module (paper Fig. 2, §III-C).

Given an adaptation action, the current configuration, and the current
workload, the Cost Manager predicts the action's duration and its
response-time and power impact by looking up the offline cost table at
the nearest measured workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.actions import AdaptationAction, NullAction
from repro.core.config import Configuration, VmCatalog
from repro.costmodel.table import CostTable


@dataclass(frozen=True)
class PredictedCost:
    """Cost Manager output for one action."""

    duration: float
    rt_delta: Mapping[str, float]
    power_delta_watts: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "rt_delta", dict(self.rt_delta))


class CostManager:
    """Predicts transient adaptation costs from offline tables."""

    def __init__(self, table: CostTable, catalog: VmCatalog) -> None:
        self._table = table
        self._catalog = catalog

    @property
    def table(self) -> CostTable:
        """The underlying offline cost table."""
        return self._table

    def predict(
        self,
        action: AdaptationAction,
        configuration: Configuration,
        workloads: Mapping[str, float],
    ) -> PredictedCost:
        """Predicted duration and deltas for executing ``action`` now."""
        if isinstance(action, NullAction):
            return PredictedCost(0.0, {}, 0.0)

        kind, tier = action.cost_key(self._catalog)
        affected_apps = action.affected_apps(configuration, self._catalog)
        primary_app = self._primary_app(action)
        workload = (
            workloads.get(primary_app, 0.0) if primary_app is not None else 0.0
        )
        entry = self._table.lookup(kind, tier, workload)
        duration = entry.duration
        if kind in ("increase_cpu", "decrease_cpu"):
            # Multi-step cap changes are macros over the measured unit
            # step; duration scales with the step count.
            duration *= getattr(action, "count", 1)

        rt_delta: dict[str, float] = {}
        for app in affected_apps:
            if app == primary_app:
                rt_delta[app] = entry.primary_rt_delta
            else:
                rt_delta[app] = entry.colocated_rt_delta

        affected_hosts = action.affected_hosts(configuration)
        power_delta = entry.power_delta_watts
        if kind in ("migrate", "add_replica", "remove_replica"):
            # Table entries aggregate the campaign rig's affected hosts;
            # scale by how many hosts this instance actually touches.
            rig_hosts = 2 if kind == "migrate" else 1
            power_delta = (
                entry.power_delta_watts
                / rig_hosts
                * max(1, len(affected_hosts))
            )
        return PredictedCost(duration, rt_delta, power_delta)

    def _primary_app(self, action: AdaptationAction) -> str | None:
        """The application the action directly adapts."""
        vm_id = getattr(action, "vm_id", None)
        if vm_id is not None:
            return self._catalog.get(vm_id).app_name
        return getattr(action, "app_name", None)
