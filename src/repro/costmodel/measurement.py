"""Offline cost-measurement campaign (paper §III-C).

The paper measures adaptation costs by deploying a *target* application
alongside a *background* application (all replicas at equal 40% caps),
placing all VMs at random over the hosts, driving both at a workload
level, executing one adaptation action after a warm-up, and recording
(a) the action's duration, (b) the response-time change of the adapted
and co-located applications, and (c) the power change on affected
hosts.  Deltas are averaged over the random placements and written to a
cost table indexed by workload.

Here the role of the physical testbed is played by the hidden
:class:`~repro.cluster.transients.TransientModel`: each trial samples
the true (noisy) footprint of the action, and the campaign's averaging
recovers the underlying curve with residual estimation error — exactly
the fidelity a controller built from offline tables would have.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.apps.application import Application
from repro.cluster.transients import TransientModel, TransientModelParameters
from repro.core.actions import (
    AdaptationAction,
    AddReplica,
    IncreaseCpu,
    MigrateVm,
    PowerOffHost,
    PowerOnHost,
    RemoveReplica,
)
from repro.core.config import (
    Configuration,
    ConstraintLimits,
    Placement,
    VmCatalog,
)
from repro.costmodel.table import CostEntry, CostTable

#: The paper's measurement grid: 100..800 concurrent sessions, i.e.
#: 12.5..100 req/s under the sessions = 8 x rate mapping.
DEFAULT_WORKLOAD_GRID: tuple[float, ...] = (12.5, 25.0, 37.5, 50.0, 62.5, 75.0, 87.5, 100.0)


@dataclass
class MeasurementCampaign:
    """Configuration of one offline cost-measurement campaign."""

    target_app: Application
    background_app: Application
    host_ids: Sequence[str]
    limits: ConstraintLimits
    workload_grid: Sequence[float] = DEFAULT_WORKLOAD_GRID
    placements_per_point: int = 8
    measurement_cap: float = 0.4

    def __post_init__(self) -> None:
        if len(self.host_ids) < 2:
            raise ValueError("campaign needs at least two hosts")
        if self.placements_per_point < 1:
            raise ValueError("placements_per_point must be >= 1")


def _random_placement(
    catalog: VmCatalog,
    campaign: MeasurementCampaign,
    rng: np.random.Generator,
) -> Configuration:
    """Place every replica at the measurement cap on random hosts.

    Respects the per-host constraints by rejection: hosts are drawn
    uniformly and redrawn while the placement would violate memory, VM
    count, or cap-sum limits (always satisfiable on the campaign rig).
    """
    placements: dict[str, Placement] = {}
    hosts = list(campaign.host_ids)
    limits = campaign.limits

    def fits(host_id: str) -> bool:
        used_cap = sum(
            placement.cpu_cap
            for placement in placements.values()
            if placement.host_id == host_id
        )
        count = sum(
            1
            for placement in placements.values()
            if placement.host_id == host_id
        )
        memory = sum(
            catalog.get(vm_id).memory_mb
            for vm_id, placement in placements.items()
            if placement.host_id == host_id
        )
        return (
            used_cap + campaign.measurement_cap <= limits.max_total_cpu_cap + 1e-9
            and count + 1 <= limits.max_vms_per_host
            and memory + 200 <= limits.guest_memory_mb
        )

    for descriptor in catalog:
        candidates = [host for host in hosts if fits(host)]
        if not candidates:
            raise RuntimeError(
                "campaign rig too small for the applications being measured"
            )
        host_id = candidates[int(rng.integers(len(candidates)))]
        placements[descriptor.vm_id] = Placement(
            host_id, campaign.measurement_cap
        )
    return Configuration(placements, frozenset(hosts))


def _actions_for_kind(
    kind: str,
    tier: str,
    configuration: Configuration,
    catalog: VmCatalog,
    campaign: MeasurementCampaign,
    rng: np.random.Generator,
) -> Optional[AdaptationAction]:
    """Build one measurable action instance of the given family."""
    app_name = campaign.target_app.name
    tier_vms = [
        descriptor.vm_id
        for descriptor in catalog.for_tier(app_name, tier)
        if configuration.is_placed(descriptor.vm_id)
    ]
    if kind == "migrate":
        if not tier_vms:
            return None
        vm_id = tier_vms[int(rng.integers(len(tier_vms)))]
        current = configuration.placement_of(vm_id)
        assert current is not None
        targets = [
            host
            for host in campaign.host_ids
            if host != current.host_id
        ]
        return MigrateVm(vm_id, targets[int(rng.integers(len(targets)))])
    if kind == "add_replica":
        spec = campaign.target_app.tier(tier)
        placed = configuration.replica_count(catalog, app_name, tier)
        if placed >= spec.max_replicas:
            # Free one slot so the addition can be measured.
            return None
        host = campaign.host_ids[int(rng.integers(len(campaign.host_ids)))]
        return AddReplica(app_name, tier, host, campaign.measurement_cap)
    if kind == "remove_replica":
        if len(tier_vms) < 2:
            return None
        return RemoveReplica(tier_vms[int(rng.integers(len(tier_vms)))])
    if kind == "increase_cpu":
        if not tier_vms:
            return None
        return IncreaseCpu(tier_vms[int(rng.integers(len(tier_vms)))])
    raise ValueError(f"unsupported campaign action kind {kind!r}")


def _measure_kind(
    kind: str,
    tier: str,
    catalog: VmCatalog,
    campaign: MeasurementCampaign,
    transients: TransientModel,
    table: CostTable,
    rng: np.random.Generator,
) -> None:
    """Measure one (kind, tier) pair across the workload grid."""
    for workload in campaign.workload_grid:
        durations: list[float] = []
        primary: list[float] = []
        colocated: list[float] = []
        power: list[float] = []
        for _ in range(campaign.placements_per_point):
            configuration = _random_placement(catalog, campaign, rng)
            if kind == "add_replica":
                # Measure addition from a configuration with a free slot.
                placed = [
                    descriptor.vm_id
                    for descriptor in catalog.for_tier(
                        campaign.target_app.name, tier
                    )
                    if configuration.is_placed(descriptor.vm_id)
                ]
                if len(placed) > 1:
                    configuration = configuration.remove(placed[-1])
            action = _actions_for_kind(
                kind, tier, configuration, catalog, campaign, rng
            )
            if action is None:
                continue
            workloads = {
                campaign.target_app.name: workload,
                campaign.background_app.name: workload,
            }
            spec = transients.sample(action, configuration, workloads)
            durations.append(spec.duration)
            primary.append(spec.rt_delta.get(campaign.target_app.name, 0.0))
            background_delta = spec.rt_delta.get(
                campaign.background_app.name
            )
            if background_delta is not None:
                colocated.append(background_delta)
            power.append(spec.total_power_delta())
        if not durations:
            continue
        table.add(
            kind,
            tier,
            workload,
            CostEntry(
                duration=float(np.mean(durations)),
                primary_rt_delta=float(np.mean(primary)),
                colocated_rt_delta=(
                    float(np.mean(colocated)) if colocated else 0.0
                ),
                power_delta_watts=float(np.mean(power)),
            ),
        )


def run_campaign(
    campaign: MeasurementCampaign,
    transient_parameters: Optional[TransientModelParameters] = None,
    rng: Optional[np.random.Generator] = None,
) -> CostTable:
    """Run the full offline campaign and return the populated table.

    Measures migration, replica addition/removal, and CPU retuning per
    replicable tier, plus host power cycling (tier-independent).
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    catalog = VmCatalog(
        campaign.target_app.vm_descriptors()
        + campaign.background_app.vm_descriptors()
    )
    transients = TransientModel(catalog, transient_parameters, rng)
    table = CostTable()

    for tier_spec in campaign.target_app.tiers:
        tier = tier_spec.name
        _measure_kind("migrate", tier, catalog, campaign, transients, table, rng)
        _measure_kind(
            "increase_cpu", tier, catalog, campaign, transients, table, rng
        )
        if tier_spec.max_replicas > tier_spec.min_replicas:
            _measure_kind(
                "add_replica", tier, catalog, campaign, transients, table, rng
            )
            _measure_kind(
                "remove_replica", tier, catalog, campaign, transients, table, rng
            )

    # CPU decrease mirrors increase (same hypercall path).
    for workload in campaign.workload_grid:
        for tier_spec in campaign.target_app.tiers:
            try:
                entry = table.lookup("increase_cpu", tier_spec.name, workload)
            except KeyError:
                continue
            try:
                table.add("decrease_cpu", tier_spec.name, workload, entry)
            except ValueError:
                pass

    # Host power cycling: measured once, workload-independent (paper
    # §V-B: start ~90 s / ~80 W, shutdown ~30 s / ~20 W).
    sample_config = _random_placement(catalog, campaign, rng)
    spare = campaign.host_ids[0]
    on_specs = [
        transients.sample(
            PowerOnHost(spare + "-spare"),
            sample_config,
            {campaign.target_app.name: 50.0},
        )
        for _ in range(campaign.placements_per_point)
    ]
    off_specs = [
        transients.sample(
            PowerOffHost(spare + "-spare"),
            Configuration({}, frozenset({spare + "-spare"})),
            {campaign.target_app.name: 50.0},
        )
        for _ in range(campaign.placements_per_point)
    ]
    table.add(
        "power_on",
        "-",
        0.0,
        CostEntry(
            duration=float(np.mean([spec.duration for spec in on_specs])),
            primary_rt_delta=0.0,
            colocated_rt_delta=0.0,
            power_delta_watts=float(
                np.mean([spec.total_power_delta() for spec in on_specs])
            ),
        ),
    )
    table.add(
        "power_off",
        "-",
        0.0,
        CostEntry(
            duration=float(np.mean([spec.duration for spec in off_specs])),
            primary_rt_delta=0.0,
            colocated_rt_delta=0.0,
            power_delta_watts=float(
                np.mean([spec.total_power_delta() for spec in off_specs])
            ),
        ),
    )
    return table
