"""Simulated Xen cluster substrate.

Stands in for the paper's testbed: 8 Pentium-4-class hosts running Xen
with credit-scheduler CPU caps, a dormant-VM pool host, shared storage,
and a watt meter.  The substrate exposes exactly the surface the
controllers interact with — monitored workload/response time/power and
actuation of the six adaptation actions with realistic durations and
transient performance/power side effects (paper Figs. 1 and 7).
"""

from repro.cluster.host import HostSpec, PhysicalHost, PowerState
from repro.cluster.vm import VirtualMachine, VmState
from repro.cluster.transients import TransientModel, TransientSpec
from repro.cluster.cluster import ActionExecution, Cluster
from repro.cluster.power_meter import PowerMeter

__all__ = [
    "HostSpec",
    "PhysicalHost",
    "PowerState",
    "VirtualMachine",
    "VmState",
    "TransientModel",
    "TransientSpec",
    "ActionExecution",
    "Cluster",
    "PowerMeter",
]
