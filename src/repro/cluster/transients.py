"""Ground-truth transient costs of adaptation actions.

This module is the simulator's hidden reality: every action execution
samples a duration, per-application response-time deltas, and per-host
power deltas from workload-dependent curves with multiplicative noise.
The curves are shaped to the paper's measurements:

- Fig. 1/7a: live migration raises power on the involved hosts by
  ~8-17% depending on workload;
- Fig. 7b: response-time deltas grow superlinearly with load, from
  tens of milliseconds at 100 sessions to ~700 ms at 800 sessions;
- Fig. 7c: adaptation delays range from ~10 s (light migration) to
  ~70 s (MySQL replica addition with state sync);
- §V-B: host start ~90 s at ~80 W, shutdown ~30 s at ~20 W.

The controller never reads these curves; it sees them only through the
offline cost-measurement campaign (:mod:`repro.costmodel.measurement`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

import numpy as np

from repro.apps.rubis import rate_to_sessions
from repro.core.actions import (
    AdaptationAction,
    AddReplica,
    DecreaseCpu,
    IncreaseCpu,
    MigrateVm,
    NullAction,
    PowerOffHost,
    PowerOnHost,
    RemoveReplica,
)
from repro.core.config import Configuration, VmCatalog


@dataclass(frozen=True)
class TransientSpec:
    """Sampled transient footprint of one action execution."""

    duration: float
    rt_delta: Mapping[str, float] = field(default_factory=dict)
    power_delta: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError("duration must be >= 0")
        object.__setattr__(self, "rt_delta", dict(self.rt_delta))
        object.__setattr__(self, "power_delta", dict(self.power_delta))

    def total_power_delta(self) -> float:
        """Sum of per-host power deltas in watts."""
        return sum(self.power_delta.values())


@dataclass(frozen=True)
class TransientModelParameters:
    """Shape parameters of the true transient-cost curves."""

    #: VM memory transfer seconds per MB at the testbed's 100 Mbps.
    transfer_seconds_per_mb: float = 0.08
    #: Pre-copy dirty-page inflation per unit of normalized workload.
    dirty_page_factor: float = 1.2
    #: Response-time delta (seconds) of a migration at zero load.
    migration_rt_base: float = 0.05
    #: RT-delta growth with normalized load (Fig. 7b ~0.7 s at peak);
    #: the exponent keeps the *relative* impact growing with load too
    #: (Fig. 1b), since baseline response times grow as well.
    migration_rt_peak: float = 0.65
    migration_rt_exponent: float = 3.0
    #: Fraction of the primary RT delta felt by co-located applications.
    colocated_rt_fraction: float = 0.4
    #: Power delta fraction at zero / full normalized load (Fig. 7a).
    power_delta_base: float = 0.08
    power_delta_peak: float = 0.17
    #: Reference host draw used to convert fractional power deltas.
    reference_host_watts: float = 80.0
    #: MySQL replica-state sync: base seconds + per-normalized-load.
    db_sync_base: float = 15.0
    db_sync_per_load: float = 25.0
    #: Application-server warm-up on replica addition.
    app_sync_base: float = 5.0
    app_sync_per_load: float = 5.0
    #: CPU cap retune: one hypercall round trip.
    cap_change_seconds: float = 1.0
    #: Workload normalization ceiling (the paper's 100 req/s range).
    workload_scale: float = 100.0
    #: Relative noise (log-normal sigma) on sampled values.
    noise: float = 0.08
    #: Tier-specific factors on migration RT impact and dirty rate.
    tier_rt_factor: Mapping[str, float] = field(
        default_factory=lambda: {"web": 0.8, "app": 1.0, "db": 1.2}
    )
    tier_dirty_factor: Mapping[str, float] = field(
        default_factory=lambda: {"web": 0.8, "app": 1.0, "db": 1.3}
    )

    def __post_init__(self) -> None:
        object.__setattr__(self, "tier_rt_factor", dict(self.tier_rt_factor))
        object.__setattr__(
            self, "tier_dirty_factor", dict(self.tier_dirty_factor)
        )


class TransientModel:
    """Samples the true transient footprint of adaptation actions."""

    def __init__(
        self,
        catalog: VmCatalog,
        parameters: Optional[TransientModelParameters] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self._catalog = catalog
        self._params = parameters or TransientModelParameters()
        self._rng = rng

    @property
    def parameters(self) -> TransientModelParameters:
        """The hidden true curve parameters."""
        return self._params

    def sample(
        self,
        action: AdaptationAction,
        configuration: Configuration,
        workloads: Mapping[str, float],
        host_specs: Mapping[str, "object"] = (),
    ) -> TransientSpec:
        """Sample one execution's transient footprint.

        ``configuration`` is the state *before* the action; workloads
        are the current per-application request rates.
        """
        spec = self._expected(action, configuration, workloads)
        if self._rng is None or self._params.noise <= 0:
            return spec
        return TransientSpec(
            duration=spec.duration * self._noise_factor(),
            rt_delta={
                app: delta * self._noise_factor()
                for app, delta in spec.rt_delta.items()
            },
            power_delta={
                host: delta * self._noise_factor()
                for host, delta in spec.power_delta.items()
            },
        )

    def expected(
        self,
        action: AdaptationAction,
        configuration: Configuration,
        workloads: Mapping[str, float],
    ) -> TransientSpec:
        """Noise-free footprint (used by tests and analytics)."""
        return self._expected(action, configuration, workloads)

    # -- internals -----------------------------------------------------

    def _noise_factor(self) -> float:
        sigma = float(np.sqrt(np.log(1.0 + self._params.noise**2)))
        return float(np.exp(self._rng.normal(-0.5 * sigma**2, sigma)))

    def _normalized_load(self, workloads: Mapping[str, float], app: str) -> float:
        rate = workloads.get(app, 0.0)
        return min(max(rate / self._params.workload_scale, 0.0), 1.5)

    def _migration_footprint(
        self,
        vm_id: str,
        configuration: Configuration,
        workloads: Mapping[str, float],
        hosts: frozenset[str],
        rt_scale: float = 1.0,
        duration_scale: float = 1.0,
    ) -> TransientSpec:
        params = self._params
        descriptor = self._catalog.get(vm_id)
        load = self._normalized_load(workloads, descriptor.app_name)
        dirty = params.tier_dirty_factor.get(descriptor.tier_name, 1.0)
        duration = duration_scale * (
            descriptor.memory_mb
            * params.transfer_seconds_per_mb
            * (1.0 + params.dirty_page_factor * dirty * load)
        )

        rt_factor = params.tier_rt_factor.get(descriptor.tier_name, 1.0)
        primary_delta = rt_scale * rt_factor * (
            params.migration_rt_base
            + params.migration_rt_peak * load**params.migration_rt_exponent
        )
        rt_delta = {descriptor.app_name: primary_delta}
        for host_id in hosts:
            for other_vm in configuration.vms_on_host(host_id):
                other_app = self._catalog.get(other_vm).app_name
                if other_app != descriptor.app_name:
                    rt_delta.setdefault(
                        other_app,
                        params.colocated_rt_fraction * primary_delta,
                    )

        power_fraction = params.power_delta_base + (
            params.power_delta_peak - params.power_delta_base
        ) * min(load, 1.0)
        power_delta = {
            host_id: power_fraction * params.reference_host_watts
            for host_id in hosts
        }
        return TransientSpec(duration, rt_delta, power_delta)

    def _expected(
        self,
        action: AdaptationAction,
        configuration: Configuration,
        workloads: Mapping[str, float],
    ) -> TransientSpec:
        params = self._params

        if isinstance(action, NullAction):
            return TransientSpec(0.0)

        if isinstance(action, (IncreaseCpu, DecreaseCpu)):
            return TransientSpec(params.cap_change_seconds * action.count)

        if isinstance(action, MigrateVm):
            return self._migration_footprint(
                action.vm_id,
                configuration,
                workloads,
                action.affected_hosts(configuration),
            )

        if isinstance(action, AddReplica):
            vm_id = action._dormant_vm(configuration, self._catalog)
            base = self._migration_footprint(
                vm_id,
                configuration,
                workloads,
                frozenset({action.target_host}),
            )
            load = self._normalized_load(workloads, action.app_name)
            if action.tier_name == "db":
                sync = params.db_sync_base + params.db_sync_per_load * load
            elif action.tier_name == "app":
                sync = params.app_sync_base + params.app_sync_per_load * load
            else:
                sync = 0.0
            return TransientSpec(
                base.duration + sync, base.rt_delta, base.power_delta
            )

        if isinstance(action, RemoveReplica):
            return self._migration_footprint(
                action.vm_id,
                configuration,
                workloads,
                action.affected_hosts(configuration),
                rt_scale=0.6,
                duration_scale=0.9,
            )

        if isinstance(action, PowerOnHost):
            return TransientSpec(90.0, {}, {action.host_id: 80.0})

        if isinstance(action, PowerOffHost):
            return TransientSpec(30.0, {}, {action.host_id: 20.0})

        raise TypeError(f"unknown action type {type(action).__name__}")
