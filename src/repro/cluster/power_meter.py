"""Watt-meter readings over the simulated cluster.

The paper hooks every machine except the client emulators to a power
meter.  The meter here reads the true system draw: steady per-host
power from the hidden true power curves at the current (true) host
utilizations, plus in-flight transient deltas, plus optional fixed
infrastructure draw (storage / dormant-pool hosts), with additive
meter noise.
"""

from __future__ import annotations

from typing import Mapping, Optional

import numpy as np

from repro.cluster.cluster import Cluster


class PowerMeter:
    """Reads total watts from the cluster's hidden truth."""

    def __init__(
        self,
        cluster: Cluster,
        infrastructure_watts: float = 0.0,
        noise_watts: float = 1.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if infrastructure_watts < 0:
            raise ValueError("infrastructure_watts must be >= 0")
        if noise_watts < 0:
            raise ValueError("noise_watts must be >= 0")
        self._cluster = cluster
        self._infrastructure_watts = infrastructure_watts
        self._noise_watts = noise_watts
        self._rng = rng

    def steady_watts(self, host_utilizations: Mapping[str, float]) -> float:
        """Steady draw of the powered hosts at the given utilizations."""
        configuration = self._cluster.configuration
        return self._cluster.power_models.total_watts(
            configuration.powered_hosts, host_utilizations
        )

    def read(self, host_utilizations: Mapping[str, float]) -> float:
        """One meter sample: steady + transient + infrastructure + noise."""
        watts = (
            self.steady_watts(host_utilizations)
            + self._cluster.transient_power_delta()
            + self._infrastructure_watts
        )
        if self._rng is not None and self._noise_watts > 0:
            watts += float(self._rng.normal(0.0, self._noise_watts))
        return max(0.0, watts)

    def read_windowed(
        self,
        host_utilizations: Mapping[str, float],
        start: float,
        end: float,
    ) -> float:
        """Mean draw over a window: transient deltas are time-averaged
        (the paper prices energy per watt-monitoring-interval)."""
        watts = (
            self.steady_watts(host_utilizations)
            + self._cluster.transient_power_delta_mean(start, end)
            + self._infrastructure_watts
        )
        if self._rng is not None and self._noise_watts > 0:
            watts += float(self._rng.normal(0.0, self._noise_watts))
        return max(0.0, watts)
