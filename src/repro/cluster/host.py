"""Physical hosts and their power state machine."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.power.model import HostPowerModel


class PowerState(enum.Enum):
    """Lifecycle of a physical machine."""

    OFF = "off"
    BOOTING = "booting"
    ON = "on"
    SHUTTING_DOWN = "shutting_down"


@dataclass(frozen=True)
class HostSpec:
    """Static description of one physical machine.

    Defaults follow the paper's testbed: commodity Pentium-4 1.8 GHz
    with 1 GB RAM on 100 Mbps Ethernet; boot takes ~90 s drawing ~80 W,
    shutdown ~30 s drawing ~20 W.
    """

    host_id: str
    cpu_capacity: float = 1.0
    memory_mb: int = 1024
    network_mbps: float = 100.0
    boot_seconds: float = 90.0
    boot_watts: float = 80.0
    shutdown_seconds: float = 30.0
    shutdown_watts: float = 20.0

    def __post_init__(self) -> None:
        if self.cpu_capacity <= 0:
            raise ValueError(f"{self.host_id}: cpu_capacity must be positive")
        if self.memory_mb <= 0:
            raise ValueError(f"{self.host_id}: memory_mb must be positive")


class PhysicalHost:
    """Runtime state of one physical machine."""

    def __init__(
        self,
        spec: HostSpec,
        power_model: HostPowerModel,
        initial_state: PowerState = PowerState.ON,
    ) -> None:
        self.spec = spec
        self.power_model = power_model
        self._state = initial_state

    @property
    def host_id(self) -> str:
        """Identifier of the host."""
        return self.spec.host_id

    @property
    def state(self) -> PowerState:
        """Current power state."""
        return self._state

    def is_available(self) -> bool:
        """Whether VMs can run here right now."""
        return self._state is PowerState.ON

    def begin_boot(self) -> None:
        """OFF -> BOOTING."""
        if self._state is not PowerState.OFF:
            raise RuntimeError(
                f"host {self.host_id}: cannot boot from {self._state.value}"
            )
        self._state = PowerState.BOOTING

    def complete_boot(self) -> None:
        """BOOTING -> ON."""
        if self._state is not PowerState.BOOTING:
            raise RuntimeError(
                f"host {self.host_id}: complete_boot from {self._state.value}"
            )
        self._state = PowerState.ON

    def begin_shutdown(self) -> None:
        """ON -> SHUTTING_DOWN."""
        if self._state is not PowerState.ON:
            raise RuntimeError(
                f"host {self.host_id}: cannot shut down from {self._state.value}"
            )
        self._state = PowerState.SHUTTING_DOWN

    def complete_shutdown(self) -> None:
        """SHUTTING_DOWN -> OFF."""
        if self._state is not PowerState.SHUTTING_DOWN:
            raise RuntimeError(
                f"host {self.host_id}: complete_shutdown from {self._state.value}"
            )
        self._state = PowerState.OFF

    def abort_boot(self) -> None:
        """BOOTING -> OFF (the boot stalled out and was abandoned)."""
        if self._state is not PowerState.BOOTING:
            raise RuntimeError(
                f"host {self.host_id}: abort_boot from {self._state.value}"
            )
        self._state = PowerState.OFF

    def abort_shutdown(self) -> None:
        """SHUTTING_DOWN -> ON (the shutdown was abandoned)."""
        if self._state is not PowerState.SHUTTING_DOWN:
            raise RuntimeError(
                f"host {self.host_id}: abort_shutdown from {self._state.value}"
            )
        self._state = PowerState.ON

    def crash(self) -> None:
        """Any state -> OFF, immediately (fault injection)."""
        self._state = PowerState.OFF

    def steady_watts(self, utilization: float) -> float:
        """Power draw in the current state at the given CPU utilization.

        Transition surges (boot/shutdown extra draw) are handled as
        transient effects by the cluster, not here.
        """
        if self._state is PowerState.OFF:
            return 0.0
        if self._state is PowerState.BOOTING:
            return self.spec.boot_watts
        if self._state is PowerState.SHUTTING_DOWN:
            return self.spec.shutdown_watts
        return self.power_model.watts(utilization)
