"""Cluster runtime: deployed configuration + action execution timeline.

The cluster owns the *deployed* configuration and executes adaptation
plans sequentially on the simulation engine.  Each action samples its
true transient footprint (duration, RT deltas, power deltas) from the
:class:`~repro.cluster.transients.TransientModel` at start time; the
configuration change lands when the action completes (live migration
cuts over at the end of pre-copy), except host shutdown whose steady
draw disappears at start while the shutdown surge applies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence

from repro.cluster.host import HostSpec, PhysicalHost, PowerState
from repro.cluster.transients import TransientModel, TransientSpec
from repro.cluster.vm import VirtualMachine, VmState
from repro.core.actions import (
    ActionError,
    AdaptationAction,
    MigrateVm,
    NullAction,
    PowerOffHost,
    PowerOnHost,
    invert_action,
)
from repro.core.config import Configuration, ConstraintLimits, VmCatalog
from repro.faults import FaultInjector, RecoveryPolicy
from repro.power.model import SystemPowerModel
from repro.sim.engine import SimulationEngine
from repro.telemetry import runtime as _telemetry


@dataclass
class _Effect:
    """One in-flight transient effect window."""

    start: float
    end: float
    spec: TransientSpec


@dataclass
class ExecutedAction:
    """Record of one executed (or in-flight) action attempt."""

    action: AdaptationAction
    start: float
    end: float
    spec: TransientSpec
    #: ``ok`` | ``stalled`` (completed late) | ``failed`` | ``timeout``
    #: | ``aborted`` (cut short by a host crash).
    outcome: str = "ok"
    #: ``plan`` for the forward plan, ``rollback`` for undo actions.
    phase: str = "plan"
    #: 1-based attempt number of this action within the plan.
    attempt: int = 1

    def succeeded(self) -> bool:
        """Whether this attempt landed its configuration change."""
        return self.outcome in ("ok", "stalled")


@dataclass
class ActionExecution:
    """Handle over one adaptation plan's execution."""

    actions: Sequence[AdaptationAction]
    started_at: float
    records: list[ExecutedAction] = field(default_factory=list)
    completed: bool = False
    aborted: Optional[str] = None
    #: Failed/timed-out attempts across the plan (fault injection).
    failures: int = 0
    #: Retries scheduled after failed attempts.
    retries: int = 0
    #: Whether the applied prefix was rolled back after an abort.
    rolled_back: bool = False

    def total_duration(self) -> float:
        """Seconds spent executing so far (sum of action durations)."""
        return sum(record.spec.duration for record in self.records)


class ClusterBusyError(RuntimeError):
    """Raised when a plan is submitted while another is executing."""


class Cluster:
    """The simulated resource pool the controllers manage."""

    def __init__(
        self,
        host_specs: Sequence[HostSpec],
        catalog: VmCatalog,
        limits: ConstraintLimits,
        engine: SimulationEngine,
        transient_model: TransientModel,
        power_models: SystemPowerModel,
        workload_provider: Callable[[], Mapping[str, float]],
    ) -> None:
        if not host_specs:
            raise ValueError("cluster needs at least one host")
        self.engine = engine
        self.catalog = catalog
        self.limits = limits
        self.power_models = power_models
        self._transients = transient_model
        self._workloads = workload_provider
        self.hosts: dict[str, PhysicalHost] = {
            spec.host_id: PhysicalHost(
                spec,
                power_models.host_model(spec.host_id),
                initial_state=PowerState.OFF,
            )
            for spec in host_specs
        }
        self.vms: dict[str, VirtualMachine] = {
            descriptor.vm_id: VirtualMachine(descriptor)
            for descriptor in catalog
        }
        self._configuration: Optional[Configuration] = None
        self._effects: list[_Effect] = []
        self._current_plan: Optional[ActionExecution] = None
        self._plan_abort_hook: Optional[Callable[[str], None]] = None
        self.history: list[ExecutedAction] = []

    # -- state ----------------------------------------------------------

    @property
    def configuration(self) -> Configuration:
        """The currently deployed configuration."""
        if self._configuration is None:
            raise RuntimeError("cluster has no deployed configuration yet")
        return self._configuration

    def is_adapting(self) -> bool:
        """Whether an adaptation plan is currently executing."""
        return self._current_plan is not None

    def deploy(self, configuration: Configuration) -> None:
        """Instantly install an initial configuration (experiment setup)."""
        violations = configuration.violations(self.catalog, self.limits)
        if violations:
            raise ValueError(
                "initial configuration is infeasible: " + "; ".join(violations)
            )
        unknown = configuration.powered_hosts - set(self.hosts)
        if unknown:
            raise ValueError(f"unknown hosts {sorted(unknown)}")
        self._configuration = configuration
        for host in self.hosts.values():
            wanted = host.host_id in configuration.powered_hosts
            if wanted and host.state is PowerState.OFF:
                host.begin_boot()
                host.complete_boot()
            elif not wanted and host.state is PowerState.ON:
                host.begin_shutdown()
                host.complete_shutdown()
        for vm in self.vms.values():
            placement = configuration.placement_of(vm.vm_id)
            if placement is not None:
                vm.activate(placement.host_id, placement.cpu_cap)

    # -- transient queries ------------------------------------------------

    def _prune_effects(self, keep_horizon: float = 900.0) -> None:
        """Drop effects that ended more than ``keep_horizon`` seconds
        ago (recent ones are still needed for windowed averages)."""
        cutoff = self.engine.now - keep_horizon
        self._effects = [
            effect for effect in self._effects if effect.end > cutoff
        ]

    def transient_rt_delta(self, app_name: str) -> float:
        """Extra response time (s) the app suffers from in-flight actions."""
        now = self.engine.now
        self._prune_effects()
        return sum(
            effect.spec.rt_delta.get(app_name, 0.0)
            for effect in self._effects
            if effect.start <= now < effect.end
        )

    def transient_power_delta(self) -> float:
        """Extra watts drawn by in-flight actions right now."""
        now = self.engine.now
        self._prune_effects()
        return sum(
            effect.spec.total_power_delta()
            for effect in self._effects
            if effect.start <= now < effect.end
        )

    def transient_rt_delta_mean(
        self, app_name: str, start: float, end: float
    ) -> float:
        """Time-averaged RT delta over a window (Eq. 1 uses the *mean*
        response time over the monitoring window, so a 30 s migration
        inside a 120 s window contributes a quarter of its delta)."""
        if end <= start:
            return 0.0
        total = 0.0
        for effect in self._effects:
            overlap = min(end, effect.end) - max(start, effect.start)
            if overlap > 0:
                total += overlap * effect.spec.rt_delta.get(app_name, 0.0)
        return total / (end - start)

    def transient_power_delta_mean(self, start: float, end: float) -> float:
        """Time-averaged transient watts over a window."""
        if end <= start:
            return 0.0
        total = 0.0
        for effect in self._effects:
            overlap = min(end, effect.end) - max(start, effect.start)
            if overlap > 0:
                total += overlap * effect.spec.total_power_delta()
        return total / (end - start)

    # -- plan execution ---------------------------------------------------

    def execute_plan(
        self,
        actions: Sequence[AdaptationAction],
        start_delay: float = 0.0,
        on_complete: Optional[Callable[[ActionExecution], None]] = None,
        *,
        fault_injector: Optional[FaultInjector] = None,
        recovery: Optional[RecoveryPolicy] = None,
        on_fault: Optional[Callable[[str, str], None]] = None,
    ) -> ActionExecution:
        """Execute a sequence of actions, one after another.

        ``start_delay`` models the controller's decision delay: the
        first action begins that many seconds from now.  Returns a
        handle that fills in per-action records as execution proceeds.

        With a ``fault_injector`` and/or ``recovery`` policy the plan
        runs resiliently: each attempt may be failed or stalled by the
        injector, stalled attempts that blow the policy's timeout are
        abandoned, failed attempts retry after bounded exponential
        backoff, and a plan that aborts (retries exhausted, or a host
        crash) rolls back its applied prefix so the cluster is never
        left in a partial configuration (DESIGN.md §10).  ``on_fault``
        is called with ``(kind, detail)`` for every injected fault so
        the controller's degradation ladder can react.  Without these
        arguments the execution path is byte-for-byte the pre-resilience
        one.
        """
        if self._current_plan is not None:
            raise ClusterBusyError("an adaptation plan is already executing")
        plan_actions = [
            action for action in actions if not isinstance(action, NullAction)
        ]
        execution = ActionExecution(
            actions=tuple(plan_actions),
            started_at=self.engine.now + start_delay,
        )
        if not plan_actions:
            execution.completed = True
            if on_complete is not None:
                on_complete(execution)
            return execution
        if fault_injector is None and recovery is None:
            return self._execute_simple(
                execution, plan_actions, start_delay, on_complete
            )
        return self._execute_resilient(
            execution,
            plan_actions,
            start_delay,
            on_complete,
            fault_injector,
            recovery if recovery is not None else RecoveryPolicy(),
            on_fault,
        )

    def _execute_simple(
        self,
        execution: ActionExecution,
        plan_actions: list[AdaptationAction],
        start_delay: float,
        on_complete: Optional[Callable[[ActionExecution], None]],
    ) -> ActionExecution:
        """The fault-free execution path (identical to pre-resilience)."""
        self._current_plan = execution
        remaining = list(plan_actions)

        def start_next() -> None:
            action = remaining.pop(0)
            try:
                new_config = action.apply(
                    self.configuration, self.catalog, self.limits
                )
            except Exception as error:  # noqa: BLE001 - surfaced to handle
                execution.aborted = f"{action}: {error}"
                self._current_plan = None
                if on_complete is not None:
                    on_complete(execution)
                return
            spec = self._transients.sample(
                action, self.configuration, self._workloads()
            )
            start = self.engine.now
            end = start + spec.duration
            record = ExecutedAction(action, start, end, spec)
            execution.records.append(record)
            self.history.append(record)
            self._effects.append(_Effect(start, end, spec))
            self._begin_action(action)
            self.engine.schedule_at(
                end, lambda: finish(action, record), label=f"finish:{action}"
            )

        def finish(action: AdaptationAction, record: ExecutedAction) -> None:
            self._complete_action(action)
            if remaining:
                start_next()
            else:
                execution.completed = True
                self._current_plan = None
                if on_complete is not None:
                    on_complete(execution)

        self.engine.schedule_after(start_delay, start_next, label="plan:start")
        return execution

    def _execute_resilient(
        self,
        execution: ActionExecution,
        plan_actions: list[AdaptationAction],
        start_delay: float,
        on_complete: Optional[Callable[[ActionExecution], None]],
        injector: Optional[FaultInjector],
        recovery: RecoveryPolicy,
        on_fault: Optional[Callable[[str, str], None]],
    ) -> ActionExecution:
        """Plan execution under fault injection + recovery policy."""
        self._current_plan = execution
        remaining = list(plan_actions)
        #: Successfully landed actions with their pre-action configs,
        #: in execution order — the rollback source of truth.
        applied: list[tuple[AdaptationAction, Configuration]] = []
        state: dict = {"pending": None, "inflight": None, "done": False}

        def notify_fault(kind: str, detail: str) -> None:
            if on_fault is not None:
                on_fault(kind, detail)

        def finish_plan() -> None:
            if state["done"]:
                return
            state["done"] = True
            self._current_plan = None
            self._plan_abort_hook = None
            if on_complete is not None:
                on_complete(execution)

        def attempt(action: AdaptationAction, attempt_no: int) -> None:
            state["pending"] = None
            before = self.configuration
            try:
                action.apply(before, self.catalog, self.limits)
            except Exception as error:  # noqa: BLE001 - surfaced to handle
                # Structurally impossible now (e.g. the cluster changed
                # under a crash); retrying cannot help.
                abort_plan(f"{action}: {error}")
                return
            fault = (
                injector.action_fault(action) if injector is not None else None
            )
            spec = self._transients.sample(action, before, self._workloads())
            duration = spec.duration
            outcome = "ok"
            if fault is not None and fault.mode == "stall":
                duration *= fault.stall_factor
                outcome = "stalled"
            failed = fault is not None and fault.mode == "fail"
            if failed:
                fraction = injector.config.fail_fraction if injector else 0.5
                duration *= fraction
                outcome = "failed"
            elif duration > recovery.timeout_seconds(spec.duration):
                failed = True
                duration = recovery.timeout_seconds(spec.duration)
                outcome = "timeout"
            if outcome != "ok" and _telemetry.enabled:
                counter = (
                    "faults.action_stalls"
                    if outcome == "stalled"
                    else "faults.action_failures"
                )
                _telemetry.registry.counter(counter).inc()
                _telemetry.tracer.event(
                    "fault.action",
                    action=str(action),
                    mode=outcome,
                    attempt=attempt_no,
                    t_sim=self.engine.now,
                )
            start = self.engine.now
            end = start + duration
            record = ExecutedAction(
                action, start, end, spec, outcome=outcome, attempt=attempt_no
            )
            execution.records.append(record)
            self.history.append(record)
            effect = _Effect(start, end, spec)
            self._effects.append(effect)
            self._begin_action(action)
            state["inflight"] = (action, before, record, effect)
            if failed:
                state["pending"] = self.engine.schedule_at(
                    end,
                    lambda: resolve_failure(action, before, record, attempt_no),
                    label=f"fail:{action}",
                )
            else:
                state["pending"] = self.engine.schedule_at(
                    end,
                    lambda: resolve_success(action, before),
                    label=f"finish:{action}",
                )

        def resolve_success(
            action: AdaptationAction, before: Configuration
        ) -> None:
            state["pending"] = None
            state["inflight"] = None
            self._complete_action(action)
            applied.append((action, before))
            if remaining:
                attempt(remaining.pop(0), 1)
            else:
                execution.completed = True
                finish_plan()

        def resolve_failure(
            action: AdaptationAction,
            before: Configuration,
            record: ExecutedAction,
            attempt_no: int,
        ) -> None:
            state["pending"] = None
            state["inflight"] = None
            self._abort_action_state(action)
            execution.failures += 1
            notify_fault("action_failure", str(action))
            if attempt_no < recovery.max_attempts:
                execution.retries += 1
                backoff = recovery.backoff_seconds(attempt_no)
                if _telemetry.enabled:
                    _telemetry.registry.counter("recovery.retries").inc()
                    _telemetry.tracer.event(
                        "recovery.retry",
                        action=str(action),
                        attempt=attempt_no,
                        backoff_seconds=backoff,
                        t_sim=self.engine.now,
                    )
                state["pending"] = self.engine.schedule_after(
                    backoff,
                    lambda: attempt(action, attempt_no + 1),
                    label=f"retry:{action}",
                )
            else:
                abort_plan(
                    f"{action}: failed after {recovery.max_attempts} attempts"
                )

        def abort_plan(reason: str) -> None:
            execution.aborted = reason
            if _telemetry.enabled:
                _telemetry.registry.counter("recovery.plans_aborted").inc()
                _telemetry.tracer.event(
                    "recovery.plan_aborted",
                    reason=reason,
                    applied=len(applied),
                    t_sim=self.engine.now,
                )
            if recovery.rollback and applied:
                begin_rollback()
            else:
                finish_plan()

        def begin_rollback() -> None:
            inverses: list[AdaptationAction] = []
            for action, before in reversed(applied):
                try:
                    inverses.append(invert_action(action, before, self.catalog))
                except ActionError:
                    pass  # nothing to undo for this one
            applied.clear()
            if _telemetry.enabled:
                _telemetry.registry.counter("recovery.rollbacks").inc()
                _telemetry.tracer.event(
                    "recovery.rollback",
                    actions=len(inverses),
                    t_sim=self.engine.now,
                )
            next_inverse(inverses)

        def next_inverse(inverses: list[AdaptationAction]) -> None:
            state["pending"] = None
            while inverses:
                inverse = inverses.pop(0)
                if not inverse.is_applicable(
                    self.configuration, self.catalog, self.limits
                ):
                    # A crash can invalidate an inverse (e.g. migrating
                    # a VM back to a dead host); skip it — the
                    # controller re-plans from the stranded state.
                    if _telemetry.enabled:
                        _telemetry.registry.counter(
                            "recovery.rollback_skips"
                        ).inc()
                        _telemetry.tracer.event(
                            "recovery.rollback_skipped",
                            action=str(inverse),
                            t_sim=self.engine.now,
                        )
                    continue
                before = self.configuration
                spec = self._transients.sample(
                    inverse, before, self._workloads()
                )
                start = self.engine.now
                end = start + spec.duration
                record = ExecutedAction(
                    inverse, start, end, spec, phase="rollback"
                )
                execution.records.append(record)
                self.history.append(record)
                effect = _Effect(start, end, spec)
                self._effects.append(effect)
                self._begin_action(inverse)
                state["inflight"] = (inverse, before, record, effect)
                state["pending"] = self.engine.schedule_at(
                    end,
                    lambda inv=inverse: finish_inverse(inv, inverses),
                    label=f"rollback:{inverse}",
                )
                return
            execution.rolled_back = True
            finish_plan()

        def finish_inverse(
            inverse: AdaptationAction, inverses: list[AdaptationAction]
        ) -> None:
            state["pending"] = None
            state["inflight"] = None
            self._complete_action(inverse)
            if _telemetry.enabled:
                _telemetry.registry.counter("recovery.rollback_actions").inc()
            next_inverse(inverses)

        def abort_hook(reason: str) -> None:
            """Invoked by :meth:`crash_host` to kill the plan mid-flight."""
            if state["done"]:
                return
            pending = state["pending"]
            if pending is not None:
                pending.cancel()
                state["pending"] = None
            inflight = state["inflight"]
            if inflight is not None:
                action, _before, record, effect = inflight
                record.outcome = "aborted"
                record.end = self.engine.now
                effect.end = self.engine.now
                self._abort_action_state(action)
                state["inflight"] = None
            if execution.aborted is None:
                execution.aborted = reason
                if _telemetry.enabled:
                    _telemetry.registry.counter(
                        "recovery.plans_aborted"
                    ).inc()
                    _telemetry.tracer.event(
                        "recovery.plan_aborted",
                        reason=reason,
                        applied=len(applied),
                        t_sim=self.engine.now,
                    )
                if recovery.rollback and applied:
                    begin_rollback()
                    return
            finish_plan()

        self._plan_abort_hook = abort_hook
        self.engine.schedule_after(
            start_delay,
            lambda: attempt(remaining.pop(0), 1),
            label="plan:start",
        )
        return execution

    # -- fault surfaces ----------------------------------------------------

    def crash_host(
        self,
        host_id: str,
        fault_injector: Optional[FaultInjector] = None,
    ) -> list[str]:
        """Immediately kill one host (fault injection).

        Strands and deactivates every VM the host is serving (including
        VMs it is still serving mid-migration), removes them from the
        deployed configuration, powers the host off, and aborts any
        in-flight resilient plan (which rolls back its applied prefix
        against the post-crash configuration).  Returns the stranded VM
        ids.
        """
        host = self.hosts[host_id]
        config = self.configuration
        stranded = [
            vm.vm_id for vm in self.vms.values() if vm.host_id == host_id
        ]
        for vm_id in stranded:
            self.vms[vm_id].deactivate()
            if config.is_placed(vm_id):
                config = config.remove(vm_id)
        if host_id in config.powered_hosts:
            config = config.power_off(host_id)
        host.crash()
        self._configuration = config
        if fault_injector is not None:
            fault_injector.note_host_crash()
        if _telemetry.enabled:
            _telemetry.registry.counter("faults.host_crashes").inc()
            _telemetry.tracer.event(
                "fault.host_crash",
                host=host_id,
                stranded=stranded,
                t_sim=self.engine.now,
            )
        self._abort_current_plan(f"host crash: {host_id}")
        return stranded

    def _abort_current_plan(self, reason: str) -> None:
        if self._current_plan is None:
            return
        if self._plan_abort_hook is None:
            raise RuntimeError(
                "cannot abort a plan executed without a recovery policy"
            )
        self._plan_abort_hook(reason)

    # -- action state transitions -----------------------------------------

    def _begin_action(self, action: AdaptationAction) -> None:
        if isinstance(action, PowerOffHost):
            # Steady draw disappears immediately; the shutdown surge is
            # the transient effect.
            self._configuration = action.apply(
                self.configuration, self.catalog, self.limits
            )
            self.hosts[action.host_id].begin_shutdown()
        elif isinstance(action, PowerOnHost):
            self.hosts[action.host_id].begin_boot()
        elif isinstance(action, MigrateVm):
            self.vms[action.vm_id].begin_migration()

    def _abort_action_state(self, action: AdaptationAction) -> None:
        """Undo the begin-time transitions of an abandoned action.

        Defensive against host crashes: every transition is guarded on
        the current state, because a crash may already have moved the
        host/VM past the state the abort would otherwise expect.
        """
        if isinstance(action, PowerOffHost):
            host = self.hosts[action.host_id]
            if host.state is PowerState.SHUTTING_DOWN:
                host.abort_shutdown()
                # The steady draw resumed; restore the host into the
                # deployed configuration (removed at begin).
                if action.host_id not in self.configuration.powered_hosts:
                    self._configuration = self.configuration.power_on(
                        action.host_id
                    )
        elif isinstance(action, PowerOnHost):
            host = self.hosts[action.host_id]
            if host.state is PowerState.BOOTING:
                host.abort_boot()
        elif isinstance(action, MigrateVm):
            vm = self.vms[action.vm_id]
            if vm.state is VmState.MIGRATING:
                vm.abort_migration()

    def _complete_action(self, action: AdaptationAction) -> None:
        if isinstance(action, PowerOffHost):
            self.hosts[action.host_id].complete_shutdown()
            return
        new_config = action.apply(self.configuration, self.catalog, self.limits)
        if isinstance(action, PowerOnHost):
            self.hosts[action.host_id].complete_boot()
        elif isinstance(action, MigrateVm):
            placement = new_config.placement_of(action.vm_id)
            assert placement is not None
            self.vms[action.vm_id].complete_migration(placement.host_id)
        else:
            self._sync_vm_states(new_config)
        self._configuration = new_config

    def _sync_vm_states(self, new_config: Configuration) -> None:
        """Reconcile VM runtime objects after cap/replica changes."""
        for vm in self.vms.values():
            old = self.configuration.placement_of(vm.vm_id)
            new = new_config.placement_of(vm.vm_id)
            if old is None and new is not None:
                vm.activate(new.host_id, new.cpu_cap)
            elif old is not None and new is None:
                vm.deactivate()
            elif new is not None and old is not None and old != new:
                vm.set_cap(new.cpu_cap)
