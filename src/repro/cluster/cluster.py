"""Cluster runtime: deployed configuration + action execution timeline.

The cluster owns the *deployed* configuration and executes adaptation
plans sequentially on the simulation engine.  Each action samples its
true transient footprint (duration, RT deltas, power deltas) from the
:class:`~repro.cluster.transients.TransientModel` at start time; the
configuration change lands when the action completes (live migration
cuts over at the end of pre-copy), except host shutdown whose steady
draw disappears at start while the shutdown surge applies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence

from repro.cluster.host import HostSpec, PhysicalHost, PowerState
from repro.cluster.transients import TransientModel, TransientSpec
from repro.cluster.vm import VirtualMachine
from repro.core.actions import (
    AdaptationAction,
    MigrateVm,
    NullAction,
    PowerOffHost,
    PowerOnHost,
)
from repro.core.config import Configuration, ConstraintLimits, VmCatalog
from repro.power.model import SystemPowerModel
from repro.sim.engine import SimulationEngine


@dataclass
class _Effect:
    """One in-flight transient effect window."""

    start: float
    end: float
    spec: TransientSpec


@dataclass
class ExecutedAction:
    """Record of one executed (or in-flight) action."""

    action: AdaptationAction
    start: float
    end: float
    spec: TransientSpec


@dataclass
class ActionExecution:
    """Handle over one adaptation plan's execution."""

    actions: Sequence[AdaptationAction]
    started_at: float
    records: list[ExecutedAction] = field(default_factory=list)
    completed: bool = False
    aborted: Optional[str] = None

    def total_duration(self) -> float:
        """Seconds spent executing so far (sum of action durations)."""
        return sum(record.spec.duration for record in self.records)


class ClusterBusyError(RuntimeError):
    """Raised when a plan is submitted while another is executing."""


class Cluster:
    """The simulated resource pool the controllers manage."""

    def __init__(
        self,
        host_specs: Sequence[HostSpec],
        catalog: VmCatalog,
        limits: ConstraintLimits,
        engine: SimulationEngine,
        transient_model: TransientModel,
        power_models: SystemPowerModel,
        workload_provider: Callable[[], Mapping[str, float]],
    ) -> None:
        if not host_specs:
            raise ValueError("cluster needs at least one host")
        self.engine = engine
        self.catalog = catalog
        self.limits = limits
        self.power_models = power_models
        self._transients = transient_model
        self._workloads = workload_provider
        self.hosts: dict[str, PhysicalHost] = {
            spec.host_id: PhysicalHost(
                spec,
                power_models.host_model(spec.host_id),
                initial_state=PowerState.OFF,
            )
            for spec in host_specs
        }
        self.vms: dict[str, VirtualMachine] = {
            descriptor.vm_id: VirtualMachine(descriptor)
            for descriptor in catalog
        }
        self._configuration: Optional[Configuration] = None
        self._effects: list[_Effect] = []
        self._current_plan: Optional[ActionExecution] = None
        self.history: list[ExecutedAction] = []

    # -- state ----------------------------------------------------------

    @property
    def configuration(self) -> Configuration:
        """The currently deployed configuration."""
        if self._configuration is None:
            raise RuntimeError("cluster has no deployed configuration yet")
        return self._configuration

    def is_adapting(self) -> bool:
        """Whether an adaptation plan is currently executing."""
        return self._current_plan is not None

    def deploy(self, configuration: Configuration) -> None:
        """Instantly install an initial configuration (experiment setup)."""
        violations = configuration.violations(self.catalog, self.limits)
        if violations:
            raise ValueError(
                "initial configuration is infeasible: " + "; ".join(violations)
            )
        unknown = configuration.powered_hosts - set(self.hosts)
        if unknown:
            raise ValueError(f"unknown hosts {sorted(unknown)}")
        self._configuration = configuration
        for host in self.hosts.values():
            wanted = host.host_id in configuration.powered_hosts
            if wanted and host.state is PowerState.OFF:
                host.begin_boot()
                host.complete_boot()
            elif not wanted and host.state is PowerState.ON:
                host.begin_shutdown()
                host.complete_shutdown()
        for vm in self.vms.values():
            placement = configuration.placement_of(vm.vm_id)
            if placement is not None:
                vm.activate(placement.host_id, placement.cpu_cap)

    # -- transient queries ------------------------------------------------

    def _prune_effects(self, keep_horizon: float = 900.0) -> None:
        """Drop effects that ended more than ``keep_horizon`` seconds
        ago (recent ones are still needed for windowed averages)."""
        cutoff = self.engine.now - keep_horizon
        self._effects = [
            effect for effect in self._effects if effect.end > cutoff
        ]

    def transient_rt_delta(self, app_name: str) -> float:
        """Extra response time (s) the app suffers from in-flight actions."""
        now = self.engine.now
        self._prune_effects()
        return sum(
            effect.spec.rt_delta.get(app_name, 0.0)
            for effect in self._effects
            if effect.start <= now < effect.end
        )

    def transient_power_delta(self) -> float:
        """Extra watts drawn by in-flight actions right now."""
        now = self.engine.now
        self._prune_effects()
        return sum(
            effect.spec.total_power_delta()
            for effect in self._effects
            if effect.start <= now < effect.end
        )

    def transient_rt_delta_mean(
        self, app_name: str, start: float, end: float
    ) -> float:
        """Time-averaged RT delta over a window (Eq. 1 uses the *mean*
        response time over the monitoring window, so a 30 s migration
        inside a 120 s window contributes a quarter of its delta)."""
        if end <= start:
            return 0.0
        total = 0.0
        for effect in self._effects:
            overlap = min(end, effect.end) - max(start, effect.start)
            if overlap > 0:
                total += overlap * effect.spec.rt_delta.get(app_name, 0.0)
        return total / (end - start)

    def transient_power_delta_mean(self, start: float, end: float) -> float:
        """Time-averaged transient watts over a window."""
        if end <= start:
            return 0.0
        total = 0.0
        for effect in self._effects:
            overlap = min(end, effect.end) - max(start, effect.start)
            if overlap > 0:
                total += overlap * effect.spec.total_power_delta()
        return total / (end - start)

    # -- plan execution ---------------------------------------------------

    def execute_plan(
        self,
        actions: Sequence[AdaptationAction],
        start_delay: float = 0.0,
        on_complete: Optional[Callable[[ActionExecution], None]] = None,
    ) -> ActionExecution:
        """Execute a sequence of actions, one after another.

        ``start_delay`` models the controller's decision delay: the
        first action begins that many seconds from now.  Returns a
        handle that fills in per-action records as execution proceeds.
        """
        if self._current_plan is not None:
            raise ClusterBusyError("an adaptation plan is already executing")
        plan_actions = [
            action for action in actions if not isinstance(action, NullAction)
        ]
        execution = ActionExecution(
            actions=tuple(plan_actions),
            started_at=self.engine.now + start_delay,
        )
        if not plan_actions:
            execution.completed = True
            if on_complete is not None:
                on_complete(execution)
            return execution

        self._current_plan = execution
        remaining = list(plan_actions)

        def start_next() -> None:
            action = remaining.pop(0)
            try:
                new_config = action.apply(
                    self.configuration, self.catalog, self.limits
                )
            except Exception as error:  # noqa: BLE001 - surfaced to handle
                execution.aborted = f"{action}: {error}"
                self._current_plan = None
                if on_complete is not None:
                    on_complete(execution)
                return
            spec = self._transients.sample(
                action, self.configuration, self._workloads()
            )
            start = self.engine.now
            end = start + spec.duration
            record = ExecutedAction(action, start, end, spec)
            execution.records.append(record)
            self.history.append(record)
            self._effects.append(_Effect(start, end, spec))
            self._begin_action(action)
            self.engine.schedule_at(
                end, lambda: finish(action, record), label=f"finish:{action}"
            )

        def finish(action: AdaptationAction, record: ExecutedAction) -> None:
            self._complete_action(action)
            if remaining:
                start_next()
            else:
                execution.completed = True
                self._current_plan = None
                if on_complete is not None:
                    on_complete(execution)

        self.engine.schedule_after(start_delay, start_next, label="plan:start")
        return execution

    # -- action state transitions -----------------------------------------

    def _begin_action(self, action: AdaptationAction) -> None:
        if isinstance(action, PowerOffHost):
            # Steady draw disappears immediately; the shutdown surge is
            # the transient effect.
            self._configuration = action.apply(
                self.configuration, self.catalog, self.limits
            )
            self.hosts[action.host_id].begin_shutdown()
        elif isinstance(action, PowerOnHost):
            self.hosts[action.host_id].begin_boot()
        elif isinstance(action, MigrateVm):
            self.vms[action.vm_id].begin_migration()

    def _complete_action(self, action: AdaptationAction) -> None:
        if isinstance(action, PowerOffHost):
            self.hosts[action.host_id].complete_shutdown()
            return
        new_config = action.apply(self.configuration, self.catalog, self.limits)
        if isinstance(action, PowerOnHost):
            self.hosts[action.host_id].complete_boot()
        elif isinstance(action, MigrateVm):
            placement = new_config.placement_of(action.vm_id)
            assert placement is not None
            self.vms[action.vm_id].complete_migration(placement.host_id)
        else:
            self._sync_vm_states(new_config)
        self._configuration = new_config

    def _sync_vm_states(self, new_config: Configuration) -> None:
        """Reconcile VM runtime objects after cap/replica changes."""
        for vm in self.vms.values():
            old = self.configuration.placement_of(vm.vm_id)
            new = new_config.placement_of(vm.vm_id)
            if old is None and new is not None:
                vm.activate(new.host_id, new.cpu_cap)
            elif old is not None and new is None:
                vm.deactivate()
            elif new is not None and old is not None and old != new:
                vm.set_cap(new.cpu_cap)
