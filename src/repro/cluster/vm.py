"""Virtual machine runtime objects."""

from __future__ import annotations

import enum
from typing import Optional

from repro.core.config import VmDescriptor


class VmState(enum.Enum):
    """Lifecycle of a VM replica."""

    DORMANT = "dormant"
    ACTIVE = "active"
    MIGRATING = "migrating"


class VirtualMachine:
    """Runtime state of one VM replica.

    Dormant VMs live in the cold pool (on the pool host) with no CPU
    allocation; active VMs run on a cluster host with a credit-scheduler
    cap.  During a live migration the VM keeps serving from its source
    host until cutover, which is how Xen's pre-copy migration behaves
    and why the configuration change lands at action completion.
    """

    def __init__(self, descriptor: VmDescriptor) -> None:
        self.descriptor = descriptor
        self._state = VmState.DORMANT
        self._host_id: Optional[str] = None
        self._cpu_cap: float = 0.0

    @property
    def vm_id(self) -> str:
        """Identifier of the VM."""
        return self.descriptor.vm_id

    @property
    def state(self) -> VmState:
        """Current lifecycle state."""
        return self._state

    @property
    def host_id(self) -> Optional[str]:
        """Host currently serving the VM (None while dormant)."""
        return self._host_id

    @property
    def cpu_cap(self) -> float:
        """Current credit-scheduler cap (0 while dormant)."""
        return self._cpu_cap

    def activate(self, host_id: str, cpu_cap: float) -> None:
        """Bring a dormant VM onto a host with the given cap."""
        if self._state is not VmState.DORMANT:
            raise RuntimeError(f"VM {self.vm_id}: activate from {self._state.value}")
        if cpu_cap <= 0:
            raise ValueError(f"VM {self.vm_id}: cap must be positive")
        self._state = VmState.ACTIVE
        self._host_id = host_id
        self._cpu_cap = cpu_cap

    def deactivate(self) -> None:
        """Return the VM to the cold pool."""
        if self._state is VmState.DORMANT:
            raise RuntimeError(f"VM {self.vm_id}: already dormant")
        self._state = VmState.DORMANT
        self._host_id = None
        self._cpu_cap = 0.0

    def set_cap(self, cpu_cap: float) -> None:
        """Adjust the credit-scheduler cap of an active VM."""
        if self._state is VmState.DORMANT:
            raise RuntimeError(f"VM {self.vm_id}: cannot cap a dormant VM")
        if cpu_cap <= 0:
            raise ValueError(f"VM {self.vm_id}: cap must be positive")
        self._cpu_cap = cpu_cap

    def begin_migration(self) -> None:
        """Mark the VM as migrating (still served from the source)."""
        if self._state is not VmState.ACTIVE:
            raise RuntimeError(
                f"VM {self.vm_id}: migrate from {self._state.value}"
            )
        self._state = VmState.MIGRATING

    def complete_migration(self, host_id: str) -> None:
        """Cut over to the destination host."""
        if self._state is not VmState.MIGRATING:
            raise RuntimeError(
                f"VM {self.vm_id}: complete_migration from {self._state.value}"
            )
        self._state = VmState.ACTIVE
        self._host_id = host_id

    def abort_migration(self) -> None:
        """Abandon a migration; the VM stays on its source host."""
        if self._state is not VmState.MIGRATING:
            raise RuntimeError(
                f"VM {self.vm_id}: abort_migration from {self._state.value}"
            )
        self._state = VmState.ACTIVE
