"""Seeded random-number streams.

Every stochastic component of the simulator (service-time noise, power
meter noise, placement randomization, ...) draws from its own named
stream so that adding a new consumer never perturbs the draws seen by
existing ones.  Streams are derived deterministically from a root seed
and the stream name.
"""

from __future__ import annotations

import zlib

import numpy as np


class RandomStreams:
    """A family of independent, reproducible ``numpy`` generators."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """Root seed all streams are derived from."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the generator for ``name``."""
        generator = self._streams.get(name)
        if generator is None:
            derived = np.random.SeedSequence(
                [self._seed, zlib.crc32(name.encode("utf-8"))]
            )
            generator = np.random.default_rng(derived)
            self._streams[name] = generator
        return generator

    def fork(self, name: str) -> "RandomStreams":
        """A child family whose root seed mixes in ``name``.

        Used to give each experiment repetition its own universe of
        streams without coordinating integer seeds by hand.
        """
        return RandomStreams(
            seed=(self._seed * 1_000_003 + zlib.crc32(name.encode("utf-8")))
            % (2**63)
        )
