"""Discrete-event simulation kernel.

The kernel is deliberately small: a virtual clock, a binary-heap event
queue, and seeded random-number streams.  Everything else in the
reproduction (hosts, migrations, controllers) is built as events and
periodic processes on top of :class:`SimulationEngine`.
"""

from repro.sim.engine import Event, SimulationEngine, SimulationError
from repro.sim.rng import RandomStreams

__all__ = ["Event", "SimulationEngine", "SimulationError", "RandomStreams"]
