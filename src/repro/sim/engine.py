"""Event-driven simulation engine with a virtual clock.

Time is a float number of seconds since the start of the experiment.
Events are ordered by ``(time, priority, sequence)`` so that ties are
deterministic: lower priority values run first, and events scheduled
earlier run before events scheduled later at the same instant.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.telemetry import runtime as _telemetry


class SimulationError(RuntimeError):
    """Raised on kernel misuse (scheduling in the past, running twice...)."""


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by schedule order; the callback itself does not
    participate in the ordering.
    """

    time: float
    priority: int
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self.cancelled = True


class SimulationEngine:
    """Minimal discrete-event kernel.

    Example
    -------
    >>> engine = SimulationEngine()
    >>> fired = []
    >>> _ = engine.schedule_at(5.0, lambda: fired.append(engine.now))
    >>> engine.run_until(10.0)
    >>> fired
    [5.0]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: list[Event] = []
        self._sequence = itertools.count()
        self._running = False

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` at absolute virtual ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time:.3f}s before now={self._now:.3f}s"
            )
        event = Event(
            time=float(time),
            priority=priority,
            sequence=next(self._sequence),
            callback=callback,
            label=label,
        )
        heapq.heappush(self._queue, event)
        return event

    def schedule_after(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` after a relative ``delay`` (>= 0) seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule_at(
            self._now + delay, callback, priority=priority, label=label
        )

    def schedule_periodic(
        self,
        period: float,
        callback: Callable[[], None],
        *,
        start: Optional[float] = None,
        priority: int = 0,
        label: str = "",
    ) -> Callable[[], None]:
        """Run ``callback`` every ``period`` seconds, starting at ``start``.

        Returns a function that cancels the periodic process.  The first
        invocation happens at ``start`` (default: now + period).
        """
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period!r}")
        state = {"event": None, "stopped": False}

        def fire() -> None:
            if state["stopped"]:
                return
            callback()
            if not state["stopped"]:
                state["event"] = self.schedule_after(
                    period, fire, priority=priority, label=label
                )

        first = self._now + period if start is None else start
        state["event"] = self.schedule_at(first, fire, priority=priority, label=label)

        def stop() -> None:
            state["stopped"] = True
            event = state["event"]
            if event is not None:
                event.cancel()

        return stop

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the queue is empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Run the next event.  Returns ``False`` when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                if _telemetry.enabled:
                    _telemetry.registry.counter("sim.events.cancelled").inc()
                continue
            self._now = event.time
            if _telemetry.enabled:
                _telemetry.registry.counter("sim.events").inc()
                if event.label:
                    # Labels like "finish:increase_cpu(...)" carry the
                    # action instance; group the counter by the prefix
                    # to keep metric cardinality bounded, and put the
                    # full label on the trace event.
                    kind = event.label.split(":", 1)[0]
                    _telemetry.registry.counter(f"sim.events.{kind}").inc()
                    _telemetry.tracer.event(
                        "sim.tick", label=event.label, t_sim=event.time
                    )
            event.callback()
            return True
        return False

    def run_until(self, end_time: float) -> None:
        """Run all events scheduled strictly up to and including ``end_time``.

        The clock is left at ``end_time`` even if the queue drains early.
        """
        if end_time < self._now:
            raise SimulationError(
                f"end_time {end_time:.3f}s is before now={self._now:.3f}s"
            )
        if self._running:
            raise SimulationError("engine is already running")
        self._running = True
        try:
            while True:
                next_time = self.peek_time()
                if next_time is None or next_time > end_time:
                    break
                self.step()
            self._now = float(end_time)
        finally:
            self._running = False

    def run(self) -> None:
        """Run until the event queue is exhausted."""
        if self._running:
            raise SimulationError("engine is already running")
        self._running = True
        try:
            while self.step():
                pass
        finally:
            self._running = False

    def pending_count(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for event in self._queue if not event.cancelled)
