"""Mistral's core: configurations, utility, optimizers, and controllers.

This package holds the paper's primary contribution:

- :mod:`repro.core.config` — immutable system configurations (VM
  placement + CPU caps + powered hosts) and their feasibility rules.
- :mod:`repro.core.actions` — the six adaptation actions.
- :mod:`repro.core.utility` — the utility model of Eqs. 1-3 and the
  Fig. 3 reward/penalty functions.
- :mod:`repro.core.perf_pwr` — the Perf-Pwr optimizer (bin packing +
  gradient search) whose output is both a baseline and the admissible
  A* heuristic ("ideal utility").
- :mod:`repro.core.search` — the Naive and Self-Aware A* optimizers
  (Algorithm 1).
- :mod:`repro.core.controller` — the Mistral controller proper.
- :mod:`repro.core.hierarchy` — the multi-level controller hierarchy.

Attributes are resolved lazily (PEP 562) so that substrate packages can
import :mod:`repro.core.config` without dragging in the controller
stack — which itself depends on those substrates.
"""

from __future__ import annotations

_EXPORTS = {
    "AdaptationAction": "repro.core.actions",
    "AddReplica": "repro.core.actions",
    "DecreaseCpu": "repro.core.actions",
    "IncreaseCpu": "repro.core.actions",
    "MigrateVm": "repro.core.actions",
    "NullAction": "repro.core.actions",
    "PowerOffHost": "repro.core.actions",
    "PowerOnHost": "repro.core.actions",
    "RemoveReplica": "repro.core.actions",
    "ConstraintLimits": "repro.core.config",
    "Configuration": "repro.core.config",
    "Placement": "repro.core.config",
    "VmCatalog": "repro.core.config",
    "VmDescriptor": "repro.core.config",
    "MistralController": "repro.core.controller",
    "ControllerHierarchy": "repro.core.hierarchy",
    "ControllerScope": "repro.core.hierarchy",
    "PerfPwrOptimizer": "repro.core.perf_pwr",
    "PerfPwrResult": "repro.core.perf_pwr",
    "AdaptationSearch": "repro.core.search",
    "SearchOutcome": "repro.core.search",
    "SearchSettings": "repro.core.search",
    "UtilityModel": "repro.core.utility",
    "UtilityParameters": "repro.core.utility",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    return getattr(module, name)


def __dir__():
    return __all__
