"""A small bounded mapping with least-recently-used eviction.

The optimizers memoize heavily — steady-state estimates, gradient plan
qualities, per-workload ideal configurations — and used to evict by
wholesale ``dict.clear()`` when a cache filled up, throwing away the
entire working set mid-search and causing periodic latency cliffs.
:class:`LruDict` replaces those with real LRU semantics: a hit moves
the entry to the back of the order, an insert beyond capacity evicts
the least recently touched entry only.

Built on the insertion-order guarantee of the plain ``dict``: moving to
the back is a pop + reinsert, the eviction victim is the first key.

The hit/miss/eviction counters are plain unconditional integer
increments (they predate the telemetry subsystem and cost nothing
measurable).  Passing a ``name`` additionally registers the cache with
``repro.telemetry`` so metric snapshots surface those counters
aggregated per cache name — e.g. ``estimator.steady`` across every
estimator instance in the process.
"""

from __future__ import annotations

from typing import Generic, Iterator, Optional, TypeVar

from repro.telemetry import runtime as _telemetry

K = TypeVar("K")
V = TypeVar("V")

_MISSING = object()


class LruDict(Generic[K, V]):
    """Bounded key-value store evicting the least recently used entry."""

    __slots__ = (
        "_data",
        "_capacity",
        "hits",
        "misses",
        "evictions",
        "name",
        "__weakref__",
    )

    def __init__(self, capacity: int, name: Optional[str] = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self._data: dict[K, V] = {}
        self._capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.name = name
        if name is not None:
            _telemetry.register_cache(name, self)

    @property
    def capacity(self) -> int:
        """Maximum number of entries held."""
        return self._capacity

    def get(self, key: K, default: Optional[V] = None) -> Optional[V]:
        """Value for ``key`` (refreshing its recency), else ``default``."""
        value = self._data.pop(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self._data[key] = value  # move to the most-recent end
        self.hits += 1
        return value

    def put(self, key: K, value: V) -> None:
        """Insert or refresh ``key``, evicting the oldest entry if full."""
        if key in self._data:
            del self._data[key]
        elif len(self._data) >= self._capacity:
            del self._data[next(iter(self._data))]
            self.evictions += 1
        self._data[key] = value

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: K) -> bool:
        return key in self._data

    def __iter__(self) -> Iterator[K]:
        """Keys from least to most recently used."""
        return iter(self._data)

    def clear(self) -> None:
        """Drop every entry (the counters keep their totals)."""
        self._data.clear()
