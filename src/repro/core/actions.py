"""The adaptation actions (paper §III-C).

Six action types: increase/decrease a VM's CPU cap by a fixed step,
add/remove a replica (implemented as migration from/to the dormant
pool), live-migrate a VM between hosts, and power hosts down/up.  A
``NullAction`` ("do nothing") marks candidate vertices as terminal in
the A* search (Algorithm 1).

Applying an action produces a new :class:`Configuration`; the result
may be *intermediate* (constraint-violating) — the search is explicitly
allowed to pass through such states (e.g. over-committing CPU before a
follow-up migration restores feasibility).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.core.config import (
    Configuration,
    ConstraintLimits,
    Placement,
    VmCatalog,
)


class ActionError(ValueError):
    """Raised when an action cannot be applied to a configuration."""


class AdaptationAction(ABC):
    """Base class of all adaptation actions."""

    #: Cost-table action family, e.g. ``"migrate"``.
    kind: str = "abstract"

    @abstractmethod
    def apply(
        self,
        configuration: Configuration,
        catalog: VmCatalog,
        limits: ConstraintLimits,
    ) -> Configuration:
        """New configuration after the action; raises :class:`ActionError`
        if the action is structurally impossible (unknown VM, powering
        off a loaded host, ...)."""

    @abstractmethod
    def affected_apps(
        self, configuration: Configuration, catalog: VmCatalog
    ) -> frozenset[str]:
        """Applications whose response time the action perturbs."""

    @abstractmethod
    def affected_hosts(self, configuration: Configuration) -> frozenset[str]:
        """Hosts whose power draw the action perturbs."""

    def cost_key(self, catalog: VmCatalog) -> tuple[str, str]:
        """Cost-table index: ``(action family, tier name or '-')``."""
        return (self.kind, "-")

    def changed_vm_ids(
        self, configuration: Configuration, catalog: VmCatalog
    ) -> frozenset[str]:
        """VMs whose placement or cap this action changes.

        ``configuration`` is the state the action applies *to* (the
        parent); the default covers actions touching no VM (null, host
        power).  This is the delta contract the incremental evaluators
        rely on: the LQN solver re-solves only the tiers owning these
        VMs, the search updates only their distance/cost-to-go terms.
        Only meaningful when :meth:`apply` would succeed.
        """
        return frozenset()

    def placement_delta(
        self,
        configuration: Configuration,
        catalog: VmCatalog,
        limits: ConstraintLimits,
    ) -> tuple[tuple[str, "Placement | None"], ...]:
        """The placement edits :meth:`apply` would make, without
        building the child configuration.

        Returns ``(vm_id, new_placement)`` pairs (``None`` placement =
        the VM goes dormant) and raises :class:`ActionError` exactly
        when :meth:`apply` would.  Host power actions move no VM and
        return an empty tuple.  The search's pruned expansions rank
        children by this delta alone and only materialize the few they
        keep.
        """
        # Safe default for subclasses that don't specialize: apply for
        # real and read the edits off the child.
        child = self.apply(configuration, catalog, limits)
        return tuple(
            (vm_id, child.placement_of(vm_id))
            for vm_id in sorted(self.changed_vm_ids(configuration, catalog))
        )

    def is_applicable(
        self,
        configuration: Configuration,
        catalog: VmCatalog,
        limits: ConstraintLimits,
    ) -> bool:
        """Whether :meth:`apply` would succeed."""
        try:
            self.apply(configuration, catalog, limits)
        except ActionError:
            return False
        return True


@dataclass(frozen=True)
class NullAction(AdaptationAction):
    """Terminal "do nothing" edge (Algorithm 1's ``"null"``)."""

    kind = "null"

    def apply(
        self,
        configuration: Configuration,
        catalog: VmCatalog,
        limits: ConstraintLimits,
    ) -> Configuration:
        return configuration

    def affected_apps(
        self, configuration: Configuration, catalog: VmCatalog
    ) -> frozenset[str]:
        return frozenset()

    def affected_hosts(self, configuration: Configuration) -> frozenset[str]:
        return frozenset()

    def placement_delta(
        self,
        configuration: Configuration,
        catalog: VmCatalog,
        limits: ConstraintLimits,
    ) -> tuple[tuple[str, "Placement | None"], ...]:
        return ()

    def __str__(self) -> str:
        return "null"


@dataclass(frozen=True)
class _CpuCapChange(AdaptationAction):
    """Shared mechanics of the two CPU-cap tuning actions.

    ``count`` applies the fixed step that many times in one shot — a
    macro over the paper's unit action whose duration and cost scale
    linearly with the number of steps.
    """

    vm_id: str
    step: float = 0.1
    count: int = 1

    def __post_init__(self) -> None:
        if self.step <= 0:
            raise ValueError(f"cap step must be positive, got {self.step!r}")
        if self.count < 1:
            raise ValueError(f"step count must be >= 1, got {self.count!r}")

    def _signed_step(self) -> float:
        raise NotImplementedError

    def placement_delta(
        self,
        configuration: Configuration,
        catalog: VmCatalog,
        limits: ConstraintLimits,
    ) -> tuple[tuple[str, "Placement | None"], ...]:
        placement = configuration.placement_of(self.vm_id)
        if placement is None:
            raise ActionError(f"VM {self.vm_id!r} is not placed")
        new_cap = round(placement.cpu_cap + self._signed_step() * self.count, 10)
        if new_cap < limits.min_vm_cpu_cap - 1e-9:
            raise ActionError(
                f"cap {new_cap:.2f} would fall below the "
                f"{limits.min_vm_cpu_cap:.2f} minimum"
            )
        if new_cap > limits.max_total_cpu_cap + 1e-9:
            raise ActionError(
                f"cap {new_cap:.2f} would exceed the per-host guest share "
                f"{limits.max_total_cpu_cap:.2f}"
            )
        return ((self.vm_id, placement.with_cap(new_cap)),)

    def apply(
        self,
        configuration: Configuration,
        catalog: VmCatalog,
        limits: ConstraintLimits,
    ) -> Configuration:
        ((vm_id, placement),) = self.placement_delta(
            configuration, catalog, limits
        )
        return configuration.replace(vm_id, placement)

    def affected_apps(
        self, configuration: Configuration, catalog: VmCatalog
    ) -> frozenset[str]:
        return frozenset({catalog.get(self.vm_id).app_name})

    def affected_hosts(self, configuration: Configuration) -> frozenset[str]:
        placement = configuration.placement_of(self.vm_id)
        return frozenset() if placement is None else frozenset({placement.host_id})

    def cost_key(self, catalog: VmCatalog) -> tuple[str, str]:
        return (self.kind, catalog.get(self.vm_id).tier_name)

    def changed_vm_ids(
        self, configuration: Configuration, catalog: VmCatalog
    ) -> frozenset[str]:
        return frozenset({self.vm_id})


@dataclass(frozen=True)
class IncreaseCpu(_CpuCapChange):
    """Raise one VM's CPU cap by ``step`` (may over-commit the host)."""

    kind = "increase_cpu"

    def _signed_step(self) -> float:
        return self.step

    def __str__(self) -> str:
        return f"increase_cpu({self.vm_id}, +{self.step * self.count:.0%})"


@dataclass(frozen=True)
class DecreaseCpu(_CpuCapChange):
    """Lower one VM's CPU cap by ``step`` (never below the minimum)."""

    kind = "decrease_cpu"

    def _signed_step(self) -> float:
        return -self.step

    def __str__(self) -> str:
        return f"decrease_cpu({self.vm_id}, -{self.step * self.count:.0%})"


@dataclass(frozen=True)
class MigrateVm(AdaptationAction):
    """Live-migrate a VM to another powered host, keeping its cap."""

    kind = "migrate"
    vm_id: str
    target_host: str

    def placement_delta(
        self,
        configuration: Configuration,
        catalog: VmCatalog,
        limits: ConstraintLimits,
    ) -> tuple[tuple[str, "Placement | None"], ...]:
        placement = configuration.placement_of(self.vm_id)
        if placement is None:
            raise ActionError(f"VM {self.vm_id!r} is not placed")
        if placement.host_id == self.target_host:
            raise ActionError(f"VM {self.vm_id!r} is already on {self.target_host!r}")
        if self.target_host not in configuration.powered_hosts:
            raise ActionError(f"target host {self.target_host!r} is not powered")
        return ((self.vm_id, placement.with_host(self.target_host)),)

    def apply(
        self,
        configuration: Configuration,
        catalog: VmCatalog,
        limits: ConstraintLimits,
    ) -> Configuration:
        ((vm_id, placement),) = self.placement_delta(
            configuration, catalog, limits
        )
        return configuration.replace(vm_id, placement)

    def affected_apps(
        self, configuration: Configuration, catalog: VmCatalog
    ) -> frozenset[str]:
        """The migrated app plus apps co-located on source or target."""
        placement = configuration.placement_of(self.vm_id)
        affected = {catalog.get(self.vm_id).app_name}
        hosts = {self.target_host}
        if placement is not None:
            hosts.add(placement.host_id)
        for host_id in hosts:
            for other_vm in configuration.vms_on_host(host_id):
                affected.add(catalog.get(other_vm).app_name)
        return frozenset(affected)

    def affected_hosts(self, configuration: Configuration) -> frozenset[str]:
        placement = configuration.placement_of(self.vm_id)
        hosts = {self.target_host}
        if placement is not None:
            hosts.add(placement.host_id)
        return frozenset(hosts)

    def cost_key(self, catalog: VmCatalog) -> tuple[str, str]:
        return (self.kind, catalog.get(self.vm_id).tier_name)

    def changed_vm_ids(
        self, configuration: Configuration, catalog: VmCatalog
    ) -> frozenset[str]:
        return frozenset({self.vm_id})

    def __str__(self) -> str:
        return f"migrate({self.vm_id} -> {self.target_host})"


@dataclass(frozen=True)
class AddReplica(AdaptationAction):
    """Activate a dormant replica of one tier onto a host.

    Implemented (as in the paper) by migrating a dormant VM from the
    cold pool to the target host and allocating it CPU capacity; for
    database tiers this includes state synchronization, which the cost
    tables reflect.
    """

    kind = "add_replica"
    app_name: str
    tier_name: str
    target_host: str
    cpu_cap: float = 0.2
    #: Specific dormant VM to activate; None picks the first dormant
    #: replica of the tier in catalog order.
    vm_id: "str | None" = None

    def _dormant_vm(
        self, configuration: Configuration, catalog: VmCatalog
    ) -> str:
        if self.vm_id is not None:
            if self.vm_id not in catalog:
                raise ActionError(f"unknown VM {self.vm_id!r}")
            descriptor = catalog.get(self.vm_id)
            if (
                descriptor.app_name != self.app_name
                or descriptor.tier_name != self.tier_name
            ):
                raise ActionError(
                    f"VM {self.vm_id!r} is not a replica of "
                    f"{self.app_name}/{self.tier_name}"
                )
            if configuration.is_placed(self.vm_id):
                raise ActionError(f"VM {self.vm_id!r} is already active")
            return self.vm_id
        for descriptor in catalog.for_tier(self.app_name, self.tier_name):
            if not configuration.is_placed(descriptor.vm_id):
                return descriptor.vm_id
        raise ActionError(
            f"no dormant replica of {self.app_name}/{self.tier_name} available"
        )

    def placement_delta(
        self,
        configuration: Configuration,
        catalog: VmCatalog,
        limits: ConstraintLimits,
    ) -> tuple[tuple[str, "Placement | None"], ...]:
        if self.target_host not in configuration.powered_hosts:
            raise ActionError(f"target host {self.target_host!r} is not powered")
        if self.cpu_cap < limits.min_vm_cpu_cap - 1e-9:
            raise ActionError(
                f"replica cap {self.cpu_cap:.2f} below minimum "
                f"{limits.min_vm_cpu_cap:.2f}"
            )
        vm_id = self._dormant_vm(configuration, catalog)
        return ((vm_id, Placement(self.target_host, self.cpu_cap)),)

    def apply(
        self,
        configuration: Configuration,
        catalog: VmCatalog,
        limits: ConstraintLimits,
    ) -> Configuration:
        ((vm_id, placement),) = self.placement_delta(
            configuration, catalog, limits
        )
        return configuration.replace(vm_id, placement)

    def affected_apps(
        self, configuration: Configuration, catalog: VmCatalog
    ) -> frozenset[str]:
        affected = {self.app_name}
        for other_vm in configuration.vms_on_host(self.target_host):
            affected.add(catalog.get(other_vm).app_name)
        return frozenset(affected)

    def affected_hosts(self, configuration: Configuration) -> frozenset[str]:
        return frozenset({self.target_host})

    def cost_key(self, catalog: VmCatalog) -> tuple[str, str]:
        return (self.kind, self.tier_name)

    def changed_vm_ids(
        self, configuration: Configuration, catalog: VmCatalog
    ) -> frozenset[str]:
        return frozenset({self._dormant_vm(configuration, catalog)})

    def __str__(self) -> str:
        return (
            f"add_replica({self.app_name}/{self.tier_name} -> "
            f"{self.target_host}:{self.cpu_cap:.0%})"
        )


@dataclass(frozen=True)
class RemoveReplica(AdaptationAction):
    """Deactivate one replica, migrating it back to the cold pool."""

    kind = "remove_replica"
    vm_id: str

    def placement_delta(
        self,
        configuration: Configuration,
        catalog: VmCatalog,
        limits: ConstraintLimits,
    ) -> tuple[tuple[str, "Placement | None"], ...]:
        if not configuration.is_placed(self.vm_id):
            raise ActionError(f"VM {self.vm_id!r} is not placed")
        descriptor = catalog.get(self.vm_id)
        replicas = configuration.replica_count(
            catalog, descriptor.app_name, descriptor.tier_name
        )
        if replicas <= 1:
            raise ActionError(
                f"cannot remove the last replica of "
                f"{descriptor.app_name}/{descriptor.tier_name}"
            )
        return ((self.vm_id, None),)

    def apply(
        self,
        configuration: Configuration,
        catalog: VmCatalog,
        limits: ConstraintLimits,
    ) -> Configuration:
        self.placement_delta(configuration, catalog, limits)
        return configuration.remove(self.vm_id)

    def affected_apps(
        self, configuration: Configuration, catalog: VmCatalog
    ) -> frozenset[str]:
        placement = configuration.placement_of(self.vm_id)
        affected = {catalog.get(self.vm_id).app_name}
        if placement is not None:
            for other_vm in configuration.vms_on_host(placement.host_id):
                affected.add(catalog.get(other_vm).app_name)
        return frozenset(affected)

    def affected_hosts(self, configuration: Configuration) -> frozenset[str]:
        placement = configuration.placement_of(self.vm_id)
        return frozenset() if placement is None else frozenset({placement.host_id})

    def cost_key(self, catalog: VmCatalog) -> tuple[str, str]:
        return (self.kind, catalog.get(self.vm_id).tier_name)

    def changed_vm_ids(
        self, configuration: Configuration, catalog: VmCatalog
    ) -> frozenset[str]:
        return frozenset({self.vm_id})

    def __str__(self) -> str:
        return f"remove_replica({self.vm_id})"


@dataclass(frozen=True)
class PowerOnHost(AdaptationAction):
    """Boot a powered-off host (paper: ~90 s, ~80 W surge)."""

    kind = "power_on"
    host_id: str

    def placement_delta(
        self,
        configuration: Configuration,
        catalog: VmCatalog,
        limits: ConstraintLimits,
    ) -> tuple[tuple[str, "Placement | None"], ...]:
        if self.host_id in configuration.powered_hosts:
            raise ActionError(f"host {self.host_id!r} is already powered on")
        return ()

    def apply(
        self,
        configuration: Configuration,
        catalog: VmCatalog,
        limits: ConstraintLimits,
    ) -> Configuration:
        self.placement_delta(configuration, catalog, limits)
        return configuration.power_on(self.host_id)

    def affected_apps(
        self, configuration: Configuration, catalog: VmCatalog
    ) -> frozenset[str]:
        return frozenset()

    def affected_hosts(self, configuration: Configuration) -> frozenset[str]:
        return frozenset({self.host_id})

    def __str__(self) -> str:
        return f"power_on({self.host_id})"


@dataclass(frozen=True)
class PowerOffHost(AdaptationAction):
    """Shut down an empty powered host (paper: ~30 s, ~20 W surge)."""

    kind = "power_off"
    host_id: str

    def placement_delta(
        self,
        configuration: Configuration,
        catalog: VmCatalog,
        limits: ConstraintLimits,
    ) -> tuple[tuple[str, "Placement | None"], ...]:
        if self.host_id not in configuration.powered_hosts:
            raise ActionError(f"host {self.host_id!r} is not powered on")
        if configuration.vms_on_host(self.host_id):
            raise ActionError(f"host {self.host_id!r} still hosts VMs")
        return ()

    def apply(
        self,
        configuration: Configuration,
        catalog: VmCatalog,
        limits: ConstraintLimits,
    ) -> Configuration:
        self.placement_delta(configuration, catalog, limits)
        return configuration.power_off(self.host_id)

    def affected_apps(
        self, configuration: Configuration, catalog: VmCatalog
    ) -> frozenset[str]:
        return frozenset()

    def affected_hosts(self, configuration: Configuration) -> frozenset[str]:
        return frozenset({self.host_id})

    def __str__(self) -> str:
        return f"power_off({self.host_id})"


def invert_action(
    action: AdaptationAction,
    before: Configuration,
    catalog: VmCatalog,
) -> AdaptationAction:
    """The action undoing ``action``, given the configuration ``before``
    it was applied.

    Rollback (DESIGN.md §10) applies these inverses in reverse order
    over the applied prefix of an aborted plan; because each inverse
    restores exactly the placement/power edit of its action, the
    composition restores the exact pre-plan :class:`Configuration`.
    ``before`` must be the configuration the action applied *to* —
    inverses of placement actions read the old host/cap off it.
    """
    if isinstance(action, NullAction):
        return action
    if isinstance(action, IncreaseCpu):
        return DecreaseCpu(action.vm_id, step=action.step, count=action.count)
    if isinstance(action, DecreaseCpu):
        return IncreaseCpu(action.vm_id, step=action.step, count=action.count)
    if isinstance(action, MigrateVm):
        placement = before.placement_of(action.vm_id)
        if placement is None:
            raise ActionError(
                f"cannot invert {action}: VM was not placed before it"
            )
        return MigrateVm(action.vm_id, placement.host_id)
    if isinstance(action, AddReplica):
        (vm_id,) = action.changed_vm_ids(before, catalog)
        return RemoveReplica(vm_id)
    if isinstance(action, RemoveReplica):
        placement = before.placement_of(action.vm_id)
        if placement is None:
            raise ActionError(
                f"cannot invert {action}: VM was not placed before it"
            )
        descriptor = catalog.get(action.vm_id)
        return AddReplica(
            descriptor.app_name,
            descriptor.tier_name,
            placement.host_id,
            cpu_cap=placement.cpu_cap,
            vm_id=action.vm_id,
        )
    if isinstance(action, PowerOnHost):
        return PowerOffHost(action.host_id)
    if isinstance(action, PowerOffHost):
        return PowerOnHost(action.host_id)
    raise ActionError(f"no inverse defined for {action!r}")


_UNRESOLVED = object()


class RoundDeltaResolver:
    """Placement deltas for many actions against one configuration.

    An expansion round of the adaptation search asks ``placement_delta``
    of every enumerated action against the *same* configuration, and the
    per-action calls redo lookups whose answers are constant within the
    round — most expensively the dormant-replica scan that every
    :class:`AddReplica` of a tier repeats for each target host, and the
    replica count every :class:`RemoveReplica` re-derives with a full
    placement pass.  This resolver computes each once per round.

    :meth:`delta` is semantically ``action.placement_delta(configuration,
    catalog, limits)``: the same actions are accepted and rejected, and
    accepted ones yield bit-identical delta tuples (placements are built
    from the same expressions over the same operands).
    """

    __slots__ = ("_configuration", "_catalog", "_limits", "_dormant", "_replicas")

    def __init__(
        self,
        configuration: Configuration,
        catalog: VmCatalog,
        limits: ConstraintLimits,
    ) -> None:
        self._configuration = configuration
        self._catalog = catalog
        self._limits = limits
        self._dormant: dict[tuple[str, str], "str | None"] = {}
        self._replicas: "dict[tuple[str, str], int] | None" = None

    def _dormant_vm(self, app_name: str, tier_name: str) -> "str | None":
        key = (app_name, tier_name)
        vm_id = self._dormant.get(key, _UNRESOLVED)
        if vm_id is _UNRESOLVED:
            vm_id = None
            is_placed = self._configuration.is_placed
            for descriptor in self._catalog.for_tier(app_name, tier_name):
                if not is_placed(descriptor.vm_id):
                    vm_id = descriptor.vm_id
                    break
            self._dormant[key] = vm_id
        return vm_id

    def _replica_count(self, app_name: str, tier_name: str) -> int:
        counts = self._replicas
        if counts is None:
            counts = {}
            get = self._catalog.get
            for vm_id, _ in self._configuration.placement_items():
                descriptor = get(vm_id)
                tier_key = (descriptor.app_name, descriptor.tier_name)
                counts[tier_key] = counts.get(tier_key, 0) + 1
            self._replicas = counts
        return counts.get((app_name, tier_name), 0)

    def scatter(
        self, action: AdaptationAction
    ) -> tuple[tuple[str, float, "str | None"], ...]:
        """The ``(vm_id, new_cap, new_host)`` facts of the action's delta,
        without building :class:`Placement` objects.

        Raises :class:`ActionError` exactly when :meth:`delta` would,
        and for accepted actions reports the same VM, the same cap
        float (computed by the same expression over the same operands),
        and the same host — a removed VM reports ``(vm, 0.0, None)``.
        Distance ranking needs nothing more, so a pruned search round
        can rank every reachable action from its scatter and pay delta
        construction only for the survivors.
        """
        kind = type(action)
        configuration = self._configuration
        if kind is MigrateVm:
            placement = configuration.placement_of(action.vm_id)
            if (
                placement is None
                or placement.host_id == action.target_host
                or action.target_host not in configuration.powered_hosts
            ):
                raise ActionError(f"{action} is not applicable")
            return ((action.vm_id, placement.cpu_cap, action.target_host),)
        if kind is IncreaseCpu or kind is DecreaseCpu:
            placement = configuration.placement_of(action.vm_id)
            if placement is None:
                raise ActionError(f"{action} is not applicable")
            limits = self._limits
            new_cap = round(
                placement.cpu_cap + action._signed_step() * action.count, 10
            )
            if (
                new_cap < limits.min_vm_cpu_cap - 1e-9
                or new_cap > limits.max_total_cpu_cap + 1e-9
            ):
                raise ActionError(f"{action} is not applicable")
            return ((action.vm_id, new_cap, placement.host_id),)
        if kind is AddReplica and action.vm_id is None:
            if (
                action.target_host not in configuration.powered_hosts
                or action.cpu_cap < self._limits.min_vm_cpu_cap - 1e-9
            ):
                raise ActionError(f"{action} is not applicable")
            vm_id = self._dormant_vm(action.app_name, action.tier_name)
            if vm_id is None:
                raise ActionError(f"{action} has no dormant replica")
            return ((vm_id, action.cpu_cap, action.target_host),)
        if kind is RemoveReplica:
            if not configuration.is_placed(action.vm_id):
                raise ActionError(f"{action} is not applicable")
            descriptor = self._catalog.get(action.vm_id)
            if (
                self._replica_count(descriptor.app_name, descriptor.tier_name)
                <= 1
            ):
                raise ActionError(f"{action} would remove the last replica")
            return ((action.vm_id, 0.0, None),)
        return tuple(
            (
                vm_id,
                placement.cpu_cap if placement is not None else 0.0,
                placement.host_id if placement is not None else None,
            )
            for vm_id, placement in action.placement_delta(
                configuration, self._catalog, self._limits
            )
        )

    def delta(
        self, action: AdaptationAction
    ) -> tuple[tuple[str, "Placement | None"], ...]:
        """``action.placement_delta`` with the round's caches applied."""
        kind = type(action)
        configuration = self._configuration
        if kind is MigrateVm:
            placement = configuration.placement_of(action.vm_id)
            if (
                placement is None
                or placement.host_id == action.target_host
                or action.target_host not in configuration.powered_hosts
            ):
                raise ActionError(f"{action} is not applicable")
            return ((action.vm_id, placement.with_host(action.target_host)),)
        if kind is IncreaseCpu or kind is DecreaseCpu:
            placement = configuration.placement_of(action.vm_id)
            if placement is None:
                raise ActionError(f"{action} is not applicable")
            limits = self._limits
            new_cap = round(
                placement.cpu_cap + action._signed_step() * action.count, 10
            )
            if (
                new_cap < limits.min_vm_cpu_cap - 1e-9
                or new_cap > limits.max_total_cpu_cap + 1e-9
            ):
                raise ActionError(f"{action} is not applicable")
            return ((action.vm_id, placement.with_cap(new_cap)),)
        if kind is AddReplica and action.vm_id is None:
            if (
                action.target_host not in configuration.powered_hosts
                or action.cpu_cap < self._limits.min_vm_cpu_cap - 1e-9
            ):
                raise ActionError(f"{action} is not applicable")
            vm_id = self._dormant_vm(action.app_name, action.tier_name)
            if vm_id is None:
                raise ActionError(f"{action} has no dormant replica")
            return ((vm_id, Placement(action.target_host, action.cpu_cap)),)
        if kind is RemoveReplica:
            if not configuration.is_placed(action.vm_id):
                raise ActionError(f"{action} is not applicable")
            descriptor = self._catalog.get(action.vm_id)
            if (
                self._replica_count(descriptor.app_name, descriptor.tier_name)
                <= 1
            ):
                raise ActionError(f"{action} would remove the last replica")
            return ((action.vm_id, None),)
        return action.placement_delta(configuration, self._catalog, self._limits)
