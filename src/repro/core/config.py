"""System configurations.

A *configuration* (paper §II-A) is the set of VMs in the system, the
physical machine each one is hosted on, the CPU fraction allocated to
it, and the set of powered-on hosts.  Configurations are immutable and
hashable so the A* optimizer can deduplicate search vertices.

A configuration is a *candidate* when it satisfies the allocation
constraints (paper §IV-B): per host, the VM CPU caps must fit within
the host share reserved for guests, memory must fit, and the VM count
must not exceed the per-host limit.  Configurations that violate these
rules are *intermediate*: legal as search vertices, illegal to deploy.
"""

from __future__ import annotations

import os
from bisect import bisect_left
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Optional, Sequence

import numpy as np


def array_core_enabled(default: bool = True) -> bool:
    """Whether the array-native expansion core is enabled.

    Consults ``MISTRAL_ARRAY_CORE``: unset keeps the default (on);
    ``0``/``false``/``off``/``no`` disable it, anything else enables.
    The array core is bit-identical to the scalar path by contract
    (DESIGN.md §13), so the switch trades speed only — it exists for
    A/B verification and as an operational escape hatch.
    """
    value = os.environ.get("MISTRAL_ARRAY_CORE")
    if value is None:
        return default
    return value.strip().lower() not in ("0", "false", "off", "no", "")


@dataclass(frozen=True)
class VmDescriptor:
    """Static identity of a VM: which application tier replica it runs.

    The descriptor never changes at runtime; placement and CPU cap live
    in :class:`Configuration`.
    """

    vm_id: str
    app_name: str
    tier_name: str
    memory_mb: int = 200

    def __post_init__(self) -> None:
        if self.memory_mb <= 0:
            raise ValueError(f"VM {self.vm_id}: memory must be positive")


class VmCatalog:
    """Immutable registry of every VM (active or dormant) in a scenario."""

    def __init__(self, descriptors: Iterable[VmDescriptor]) -> None:
        self._by_id: dict[str, VmDescriptor] = {}
        by_tier: dict[tuple[str, str], list[VmDescriptor]] = {}
        for descriptor in descriptors:
            if descriptor.vm_id in self._by_id:
                raise ValueError(f"duplicate VM id {descriptor.vm_id!r}")
            self._by_id[descriptor.vm_id] = descriptor
            by_tier.setdefault(
                (descriptor.app_name, descriptor.tier_name), []
            ).append(descriptor)
        self._by_tier: dict[tuple[str, str], tuple[VmDescriptor, ...]] = {
            key: tuple(members) for key, members in by_tier.items()
        }

    def __contains__(self, vm_id: str) -> bool:
        return vm_id in self._by_id

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self) -> Iterator[VmDescriptor]:
        return iter(self._by_id.values())

    def get(self, vm_id: str) -> VmDescriptor:
        """Descriptor for ``vm_id``; raises ``KeyError`` if unknown."""
        return self._by_id[vm_id]

    def vm_ids(self) -> tuple[str, ...]:
        """All VM ids, in insertion order."""
        return tuple(self._by_id)

    def for_tier(self, app_name: str, tier_name: str) -> tuple[VmDescriptor, ...]:
        """All VMs (placed or dormant) belonging to one application tier."""
        return self._by_tier.get((app_name, tier_name), ())

    def apps(self) -> tuple[str, ...]:
        """Application names present in the catalog, deduplicated in order."""
        seen: dict[str, None] = {}
        for descriptor in self._by_id.values():
            seen.setdefault(descriptor.app_name, None)
        return tuple(seen)


@dataclass(frozen=True)
class Placement:
    """Where a VM runs and how much CPU it may use.

    ``cpu_cap`` is a fraction of one host CPU enforced by the (simulated)
    Xen credit scheduler, e.g. ``0.4`` for a 40% cap.
    """

    host_id: str
    cpu_cap: float

    def __post_init__(self) -> None:
        if not 0.0 < self.cpu_cap <= 1.0:
            raise ValueError(f"cpu_cap must be in (0, 1], got {self.cpu_cap!r}")

    def __hash__(self) -> int:
        # Placements are hashed millions of times per search, but most
        # of the search's candidate children are ranked and discarded
        # without ever being hashed — compute lazily, cache forever.
        try:
            return self._hash
        except AttributeError:
            value = hash((self.host_id, self.cpu_cap))
            object.__setattr__(self, "_hash", value)
            return value

    def with_cap(self, cpu_cap: float) -> "Placement":
        """Same host, different cap."""
        return Placement(self.host_id, cpu_cap)

    def with_host(self, host_id: str) -> "Placement":
        """Same cap, different host."""
        return Placement(host_id, self.cpu_cap)


@dataclass(frozen=True)
class ConstraintLimits:
    """Per-host allocation constraints (paper §V-A testbed settings)."""

    host_memory_mb: int = 1024
    dom0_memory_mb: int = 200
    max_vms_per_host: int = 4
    max_total_cpu_cap: float = 0.8
    min_vm_cpu_cap: float = 0.2
    cpu_cap_step: float = 0.1

    @property
    def guest_memory_mb(self) -> int:
        """Memory available to guests after the Dom-0 reservation."""
        return self.host_memory_mb - self.dom0_memory_mb

    def round_cap(self, cap: float) -> float:
        """Snap a cap onto the step grid within [min cap, max total]."""
        steps = round(cap / self.cpu_cap_step)
        snapped = steps * self.cpu_cap_step
        snapped = max(self.min_vm_cpu_cap, min(self.max_total_cpu_cap, snapped))
        return round(snapped, 10)


class Configuration:
    """Immutable assignment of VMs to hosts plus the powered-host set.

    VMs absent from ``placements`` are dormant (parked in the cold pool
    on the storage side) and consume no managed resources.
    """

    __slots__ = (
        "_placements",
        "_powered",
        "_items",
        "_hash",
        "_keys",
        "_by_host",
        "_used",
    )

    def __init__(
        self,
        placements: Mapping[str, Placement],
        powered_hosts: Iterable[str],
    ) -> None:
        items = tuple(sorted(placements.items()))
        powered = frozenset(powered_hosts)
        for vm_id, placement in items:
            if placement.host_id not in powered:
                raise ValueError(
                    f"VM {vm_id!r} placed on unpowered host {placement.host_id!r}"
                )
        object.__setattr__(self, "_placements", dict(items))
        object.__setattr__(self, "_powered", powered)
        object.__setattr__(self, "_items", items)
        object.__setattr__(self, "_hash", None)
        object.__setattr__(self, "_keys", None)
        object.__setattr__(self, "_by_host", None)
        object.__setattr__(self, "_used", None)

    def _mapping(self) -> dict[str, Placement]:
        """The vm_id -> placement dict, built lazily.

        Configurations created via the fast functional updates defer
        the dict: most children the search generates are ranked by
        distance and discarded after one or two lookups.
        """
        mapping = self._placements
        if mapping is None:
            mapping = dict(self._items)
            object.__setattr__(self, "_placements", mapping)
        return mapping

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Configuration is immutable")

    def __getstate__(self) -> tuple:
        """Pickle only the defining state (placement items + powered
        set); derived caches rebuild lazily on the other side.  Needed
        because slots + the immutability guard break the default
        protocol, and configurations cross the process-pool boundary of
        the parallel evaluation stage."""
        return (self._items, self._powered)

    def __setstate__(self, state: tuple) -> None:
        items, powered = state
        object.__setattr__(self, "_placements", None)
        object.__setattr__(self, "_powered", powered)
        object.__setattr__(self, "_items", items)
        object.__setattr__(self, "_hash", None)
        object.__setattr__(self, "_keys", None)
        object.__setattr__(self, "_by_host", None)
        object.__setattr__(self, "_used", None)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        return self._items == other._items and self._powered == other._powered

    def __hash__(self) -> int:
        # Lazy: the search builds and ranks far more child
        # configurations than it keeps, and only kept ones reach a
        # cache or the open set where hashing happens.
        value = self._hash
        if value is None:
            value = hash((self._items, self._powered))
            object.__setattr__(self, "_hash", value)
        return value

    def __repr__(self) -> str:
        body = ", ".join(
            f"{vm_id}@{placement.host_id}:{placement.cpu_cap:.0%}"
            for vm_id, placement in self._items
        )
        hosts = ",".join(sorted(self._powered))
        return f"Configuration([{body}] powered={{{hosts}}})"

    # -- accessors ---------------------------------------------------------

    @property
    def placements(self) -> Mapping[str, Placement]:
        """Read-only mapping of vm_id to placement."""
        return dict(self._mapping())

    def placement_items(self) -> tuple[tuple[str, Placement], ...]:
        """All (vm_id, placement) pairs, sorted by vm_id.

        Allocation-free accessor for hot loops (the ``placements``
        property copies a dict per call).
        """
        return self._items

    @property
    def powered_hosts(self) -> frozenset[str]:
        """Hosts that are (or should be) powered on."""
        return self._powered

    def placement_of(self, vm_id: str) -> Optional[Placement]:
        """Placement of ``vm_id``, or ``None`` if the VM is dormant."""
        mapping = self._placements  # hottest accessor: lazy-init inline
        if mapping is None:
            mapping = dict(self._items)
            object.__setattr__(self, "_placements", mapping)
        return mapping.get(vm_id)

    def is_placed(self, vm_id: str) -> bool:
        """Whether the VM is active (placed on some host)."""
        mapping = self._placements
        if mapping is None:
            mapping = dict(self._items)
            object.__setattr__(self, "_placements", mapping)
        return vm_id in mapping

    def placed_vm_ids(self) -> tuple[str, ...]:
        """Ids of all active VMs, sorted."""
        keys = self._keys
        if keys is None:
            keys = tuple(vm_id for vm_id, _ in self._items)
            object.__setattr__(self, "_keys", keys)
        return keys

    def vms_on_host(self, host_id: str) -> tuple[str, ...]:
        """Ids of VMs placed on ``host_id``, sorted."""
        by_host = self._by_host
        if by_host is None:
            # One pass builds the whole index; an expansion's parent
            # configuration answers ~one vms_on_host query per child.
            by_host = {}
            for vm_id, placement in self._items:
                by_host.setdefault(placement.host_id, []).append(vm_id)
            by_host = {
                host: tuple(vm_ids) for host, vm_ids in by_host.items()
            }
            object.__setattr__(self, "_by_host", by_host)
        return by_host.get(host_id, ())

    def used_hosts(self) -> frozenset[str]:
        """Hosts that actually carry at least one VM."""
        used = self._used
        if used is None:
            used = frozenset(
                placement.host_id for _, placement in self._items
            )
            object.__setattr__(self, "_used", used)
        return used

    def idle_hosts(self) -> frozenset[str]:
        """Powered hosts carrying no VM (candidates for shutdown)."""
        return self._powered - self.used_hosts()

    def replica_count(self, catalog: VmCatalog, app_name: str, tier_name: str) -> int:
        """Number of active replicas of one application tier."""
        mapping = self._mapping()
        return sum(
            1
            for descriptor in catalog.for_tier(app_name, tier_name)
            if descriptor.vm_id in mapping
        )

    def host_cpu_load(self, host_id: str) -> float:
        """Sum of VM CPU caps on a host."""
        return round(
            sum(
                placement.cpu_cap
                for _, placement in self._items
                if placement.host_id == host_id
            ),
            10,
        )

    def host_memory_load(self, catalog: VmCatalog, host_id: str) -> int:
        """Sum of VM memory on a host, in MB (excluding Dom-0)."""
        return sum(
            catalog.get(vm_id).memory_mb
            for vm_id, placement in self._items
            if placement.host_id == host_id
        )

    # -- feasibility -------------------------------------------------------

    def violations(
        self, catalog: VmCatalog, limits: ConstraintLimits
    ) -> list[str]:
        """Human-readable list of constraint violations (empty = candidate)."""
        problems: list[str] = []
        for host_id in self.used_hosts():
            cpu = self.host_cpu_load(host_id)
            if cpu > limits.max_total_cpu_cap + 1e-9:
                problems.append(
                    f"host {host_id}: CPU caps sum to {cpu:.2f} > "
                    f"{limits.max_total_cpu_cap:.2f}"
                )
            memory = self.host_memory_load(catalog, host_id)
            if memory > limits.guest_memory_mb:
                problems.append(
                    f"host {host_id}: guest memory {memory} MB > "
                    f"{limits.guest_memory_mb} MB"
                )
            vm_count = len(self.vms_on_host(host_id))
            if vm_count > limits.max_vms_per_host:
                problems.append(
                    f"host {host_id}: {vm_count} VMs > {limits.max_vms_per_host}"
                )
        for vm_id, placement in self._items:
            if placement.cpu_cap < limits.min_vm_cpu_cap - 1e-9:
                problems.append(
                    f"VM {vm_id}: cap {placement.cpu_cap:.2f} < "
                    f"{limits.min_vm_cpu_cap:.2f}"
                )
        return problems

    def is_candidate(self, catalog: VmCatalog, limits: ConstraintLimits) -> bool:
        """Whether the configuration can actually be deployed."""
        return not self.violations(catalog, limits)

    # -- functional updates -------------------------------------------------
    #
    # The single-change updates below are the A* search's configuration
    # factory (every generated child goes through one of them), so they
    # bypass the constructor's re-sort and invariant re-check: ``_items``
    # is already sorted, a one-entry edit preserves the order, and the
    # parent's invariant plus the one checked placement imply the
    # child's.

    @classmethod
    def _from_sorted(
        cls,
        items: tuple,
        powered: frozenset,
        keys: Optional[tuple] = None,
    ) -> "Configuration":
        """Internal: build from pre-sorted, pre-validated items."""
        self = object.__new__(cls)
        object.__setattr__(self, "_placements", None)  # built lazily
        object.__setattr__(self, "_powered", powered)
        object.__setattr__(self, "_items", items)
        object.__setattr__(self, "_hash", None)  # hashed lazily
        object.__setattr__(self, "_keys", keys)
        object.__setattr__(self, "_by_host", None)
        object.__setattr__(self, "_used", None)
        return self

    def replace(self, vm_id: str, placement: Placement) -> "Configuration":
        """New configuration with one VM's placement changed or added."""
        if placement.host_id in self._powered:
            keys = self.placed_vm_ids()
            pos = bisect_left(keys, vm_id)
            entry = ((vm_id, placement),)
            if pos < len(keys) and keys[pos] == vm_id:
                items = self._items[:pos] + entry + self._items[pos + 1 :]
                new_keys = keys
            else:
                items = self._items[:pos] + entry + self._items[pos:]
                new_keys = keys[:pos] + (vm_id,) + keys[pos:]
            return Configuration._from_sorted(items, self._powered, new_keys)
        placements = dict(self._mapping())
        placements[vm_id] = placement
        powered = self._powered | {placement.host_id}
        return Configuration(placements, powered)

    def remove(self, vm_id: str) -> "Configuration":
        """New configuration with one VM sent back to the dormant pool."""
        keys = self.placed_vm_ids()
        pos = bisect_left(keys, vm_id)
        if pos >= len(keys) or keys[pos] != vm_id:
            raise KeyError(f"VM {vm_id!r} is not placed")
        return Configuration._from_sorted(
            self._items[:pos] + self._items[pos + 1 :],
            self._powered,
            keys[:pos] + keys[pos + 1 :],
        )

    def power_on(self, host_id: str) -> "Configuration":
        """New configuration with one more powered host."""
        return Configuration._from_sorted(
            self._items, self._powered | {host_id}, self._keys
        )

    def power_off(self, host_id: str) -> "Configuration":
        """New configuration with ``host_id`` powered down (must be empty)."""
        if host_id in self.used_hosts():
            raise ValueError(f"host {host_id!r} still has VMs")
        return Configuration._from_sorted(
            self._items, self._powered - {host_id}, self._keys
        )


# ----------------------------------------------------------------------
# numeric configuration codec (DESIGN.md §13)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ConfigArray:
    """A :class:`Configuration` as three flat numpy arrays.

    Indexed over a fixed (vm universe, host universe) pinned by the
    :class:`ConfigCodec` that produced it:

    ``host_index``
        ``int16[n_vms]`` — index into the codec's host universe, or
        ``-1`` for a dormant VM.
    ``cpu_caps``
        ``float64[n_vms]`` — the exact cap float of each placed VM
        (``0.0`` for dormant ones).  Caps are always positive, so the
        dormant sentinel is unambiguous and the raw bytes of the two
        rows identify the configuration injectively.
    ``powered``
        ``uint8[n_hosts]`` — 1 where the host is powered on.
    """

    host_index: np.ndarray
    cpu_caps: np.ndarray
    powered: np.ndarray

    def key(self) -> bytes:
        """Injective byte key (see :meth:`ConfigCodec.encode_key`)."""
        return (
            self.host_index.tobytes()
            + self.cpu_caps.tobytes()
            + self.powered.tobytes()
        )


class ConfigCodec:
    """Bit-exact two-way map between ``Configuration`` and ``ConfigArray``.

    The codec pins a VM universe (catalog order) and a host universe
    (testbed order); every encode/decode is relative to those.  Decoding
    an encoded configuration returns an object that compares, hashes and
    pickles identically to the original — caps are carried as the very
    same float64 bits, never re-derived — which is what lets the array
    expansion core and the shared-memory process channel substitute
    arrays for objects without perturbing a single search decision.

    ``encode`` raises ``KeyError`` when the configuration mentions a VM
    or host outside the pinned universes; callers use that as the signal
    to fall back to the object path.
    """

    __slots__ = ("vm_ids", "host_ids", "vm_index", "host_index")

    def __init__(
        self, vm_ids: Sequence[str], host_ids: Sequence[str]
    ) -> None:
        self.vm_ids = tuple(vm_ids)
        self.host_ids = tuple(host_ids)
        if len(self.vm_ids) >= 2**15:
            raise ValueError("int16 host_index row caps the VM universe at 32767")
        self.vm_index = {vm_id: i for i, vm_id in enumerate(self.vm_ids)}
        self.host_index = {host: i for i, host in enumerate(self.host_ids)}
        if len(self.vm_index) != len(self.vm_ids):
            raise ValueError("duplicate VM ids in codec universe")
        if len(self.host_index) != len(self.host_ids):
            raise ValueError("duplicate host ids in codec universe")

    def encode(self, configuration: Configuration) -> ConfigArray:
        """Numeric image of ``configuration`` (KeyError if out of universe)."""
        host_row = np.full(len(self.vm_ids), -1, dtype=np.int16)
        caps_row = np.zeros(len(self.vm_ids), dtype=np.float64)
        powered_row = np.zeros(len(self.host_ids), dtype=np.uint8)
        vm_index = self.vm_index
        host_index = self.host_index
        for vm_id, placement in configuration.placement_items():
            slot = vm_index[vm_id]
            host_row[slot] = host_index[placement.host_id]
            caps_row[slot] = placement.cpu_cap
        for host in configuration.powered_hosts:
            powered_row[host_index[host]] = 1
        return ConfigArray(host_row, caps_row, powered_row)

    def decode(self, arrays: ConfigArray) -> Configuration:
        """Rebuild the ``Configuration`` an encode came from, bit-exactly."""
        host_ids = self.host_ids
        placements = {}
        host_row = arrays.host_index
        caps_row = arrays.cpu_caps
        for slot in np.flatnonzero(host_row >= 0):
            placements[self.vm_ids[slot]] = Placement(
                host_ids[host_row[slot]], float(caps_row[slot])
            )
        powered = frozenset(
            host_ids[slot] for slot in np.flatnonzero(arrays.powered)
        )
        return Configuration(placements, powered)

    def encode_key(self, configuration: Configuration) -> bytes:
        """Injective byte key for deduplication.

        Concatenates the raw bytes of the three rows.  Injectivity on
        valid configurations: the host row fixes the placement pattern,
        caps are positive floats (no ``-0.0``/NaN ambiguity), and the
        powered row is 0/1 — distinct configurations within the codec's
        universes always produce distinct keys.
        """
        return self.encode(configuration).key()
