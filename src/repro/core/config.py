"""System configurations.

A *configuration* (paper §II-A) is the set of VMs in the system, the
physical machine each one is hosted on, the CPU fraction allocated to
it, and the set of powered-on hosts.  Configurations are immutable and
hashable so the A* optimizer can deduplicate search vertices.

A configuration is a *candidate* when it satisfies the allocation
constraints (paper §IV-B): per host, the VM CPU caps must fit within
the host share reserved for guests, memory must fit, and the VM count
must not exceed the per-host limit.  Configurations that violate these
rules are *intermediate*: legal as search vertices, illegal to deploy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Optional


@dataclass(frozen=True)
class VmDescriptor:
    """Static identity of a VM: which application tier replica it runs.

    The descriptor never changes at runtime; placement and CPU cap live
    in :class:`Configuration`.
    """

    vm_id: str
    app_name: str
    tier_name: str
    memory_mb: int = 200

    def __post_init__(self) -> None:
        if self.memory_mb <= 0:
            raise ValueError(f"VM {self.vm_id}: memory must be positive")


class VmCatalog:
    """Immutable registry of every VM (active or dormant) in a scenario."""

    def __init__(self, descriptors: Iterable[VmDescriptor]) -> None:
        self._by_id: dict[str, VmDescriptor] = {}
        for descriptor in descriptors:
            if descriptor.vm_id in self._by_id:
                raise ValueError(f"duplicate VM id {descriptor.vm_id!r}")
            self._by_id[descriptor.vm_id] = descriptor

    def __contains__(self, vm_id: str) -> bool:
        return vm_id in self._by_id

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self) -> Iterator[VmDescriptor]:
        return iter(self._by_id.values())

    def get(self, vm_id: str) -> VmDescriptor:
        """Descriptor for ``vm_id``; raises ``KeyError`` if unknown."""
        return self._by_id[vm_id]

    def vm_ids(self) -> tuple[str, ...]:
        """All VM ids, in insertion order."""
        return tuple(self._by_id)

    def for_tier(self, app_name: str, tier_name: str) -> tuple[VmDescriptor, ...]:
        """All VMs (placed or dormant) belonging to one application tier."""
        return tuple(
            descriptor
            for descriptor in self._by_id.values()
            if descriptor.app_name == app_name
            and descriptor.tier_name == tier_name
        )

    def apps(self) -> tuple[str, ...]:
        """Application names present in the catalog, deduplicated in order."""
        seen: dict[str, None] = {}
        for descriptor in self._by_id.values():
            seen.setdefault(descriptor.app_name, None)
        return tuple(seen)


@dataclass(frozen=True)
class Placement:
    """Where a VM runs and how much CPU it may use.

    ``cpu_cap`` is a fraction of one host CPU enforced by the (simulated)
    Xen credit scheduler, e.g. ``0.4`` for a 40% cap.
    """

    host_id: str
    cpu_cap: float

    def __post_init__(self) -> None:
        if not 0.0 < self.cpu_cap <= 1.0:
            raise ValueError(f"cpu_cap must be in (0, 1], got {self.cpu_cap!r}")

    def with_cap(self, cpu_cap: float) -> "Placement":
        """Same host, different cap."""
        return Placement(self.host_id, cpu_cap)

    def with_host(self, host_id: str) -> "Placement":
        """Same cap, different host."""
        return Placement(host_id, self.cpu_cap)


@dataclass(frozen=True)
class ConstraintLimits:
    """Per-host allocation constraints (paper §V-A testbed settings)."""

    host_memory_mb: int = 1024
    dom0_memory_mb: int = 200
    max_vms_per_host: int = 4
    max_total_cpu_cap: float = 0.8
    min_vm_cpu_cap: float = 0.2
    cpu_cap_step: float = 0.1

    @property
    def guest_memory_mb(self) -> int:
        """Memory available to guests after the Dom-0 reservation."""
        return self.host_memory_mb - self.dom0_memory_mb

    def round_cap(self, cap: float) -> float:
        """Snap a cap onto the step grid within [min cap, max total]."""
        steps = round(cap / self.cpu_cap_step)
        snapped = steps * self.cpu_cap_step
        snapped = max(self.min_vm_cpu_cap, min(self.max_total_cpu_cap, snapped))
        return round(snapped, 10)


class Configuration:
    """Immutable assignment of VMs to hosts plus the powered-host set.

    VMs absent from ``placements`` are dormant (parked in the cold pool
    on the storage side) and consume no managed resources.
    """

    __slots__ = ("_placements", "_powered", "_items", "_hash")

    def __init__(
        self,
        placements: Mapping[str, Placement],
        powered_hosts: Iterable[str],
    ) -> None:
        items = tuple(sorted(placements.items()))
        powered = frozenset(powered_hosts)
        for vm_id, placement in items:
            if placement.host_id not in powered:
                raise ValueError(
                    f"VM {vm_id!r} placed on unpowered host {placement.host_id!r}"
                )
        object.__setattr__(self, "_placements", dict(items))
        object.__setattr__(self, "_powered", powered)
        object.__setattr__(self, "_items", items)
        object.__setattr__(self, "_hash", hash((items, powered)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Configuration is immutable")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        return self._items == other._items and self._powered == other._powered

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        body = ", ".join(
            f"{vm_id}@{placement.host_id}:{placement.cpu_cap:.0%}"
            for vm_id, placement in self._items
        )
        hosts = ",".join(sorted(self._powered))
        return f"Configuration([{body}] powered={{{hosts}}})"

    # -- accessors ---------------------------------------------------------

    @property
    def placements(self) -> Mapping[str, Placement]:
        """Read-only mapping of vm_id to placement."""
        return dict(self._placements)

    @property
    def powered_hosts(self) -> frozenset[str]:
        """Hosts that are (or should be) powered on."""
        return self._powered

    def placement_of(self, vm_id: str) -> Optional[Placement]:
        """Placement of ``vm_id``, or ``None`` if the VM is dormant."""
        return self._placements.get(vm_id)

    def is_placed(self, vm_id: str) -> bool:
        """Whether the VM is active (placed on some host)."""
        return vm_id in self._placements

    def placed_vm_ids(self) -> tuple[str, ...]:
        """Ids of all active VMs, sorted."""
        return tuple(vm_id for vm_id, _ in self._items)

    def vms_on_host(self, host_id: str) -> tuple[str, ...]:
        """Ids of VMs placed on ``host_id``, sorted."""
        return tuple(
            vm_id
            for vm_id, placement in self._items
            if placement.host_id == host_id
        )

    def used_hosts(self) -> frozenset[str]:
        """Hosts that actually carry at least one VM."""
        return frozenset(placement.host_id for _, placement in self._items)

    def idle_hosts(self) -> frozenset[str]:
        """Powered hosts carrying no VM (candidates for shutdown)."""
        return self._powered - self.used_hosts()

    def replica_count(self, catalog: VmCatalog, app_name: str, tier_name: str) -> int:
        """Number of active replicas of one application tier."""
        return sum(
            1
            for vm_id in self._placements
            if catalog.get(vm_id).app_name == app_name
            and catalog.get(vm_id).tier_name == tier_name
        )

    def host_cpu_load(self, host_id: str) -> float:
        """Sum of VM CPU caps on a host."""
        return round(
            sum(
                placement.cpu_cap
                for _, placement in self._items
                if placement.host_id == host_id
            ),
            10,
        )

    def host_memory_load(self, catalog: VmCatalog, host_id: str) -> int:
        """Sum of VM memory on a host, in MB (excluding Dom-0)."""
        return sum(
            catalog.get(vm_id).memory_mb
            for vm_id, placement in self._items
            if placement.host_id == host_id
        )

    # -- feasibility -------------------------------------------------------

    def violations(
        self, catalog: VmCatalog, limits: ConstraintLimits
    ) -> list[str]:
        """Human-readable list of constraint violations (empty = candidate)."""
        problems: list[str] = []
        for host_id in self.used_hosts():
            cpu = self.host_cpu_load(host_id)
            if cpu > limits.max_total_cpu_cap + 1e-9:
                problems.append(
                    f"host {host_id}: CPU caps sum to {cpu:.2f} > "
                    f"{limits.max_total_cpu_cap:.2f}"
                )
            memory = self.host_memory_load(catalog, host_id)
            if memory > limits.guest_memory_mb:
                problems.append(
                    f"host {host_id}: guest memory {memory} MB > "
                    f"{limits.guest_memory_mb} MB"
                )
            vm_count = len(self.vms_on_host(host_id))
            if vm_count > limits.max_vms_per_host:
                problems.append(
                    f"host {host_id}: {vm_count} VMs > {limits.max_vms_per_host}"
                )
        for vm_id, placement in self._items:
            if placement.cpu_cap < limits.min_vm_cpu_cap - 1e-9:
                problems.append(
                    f"VM {vm_id}: cap {placement.cpu_cap:.2f} < "
                    f"{limits.min_vm_cpu_cap:.2f}"
                )
        return problems

    def is_candidate(self, catalog: VmCatalog, limits: ConstraintLimits) -> bool:
        """Whether the configuration can actually be deployed."""
        return not self.violations(catalog, limits)

    # -- functional updates -------------------------------------------------

    def replace(self, vm_id: str, placement: Placement) -> "Configuration":
        """New configuration with one VM's placement changed or added."""
        placements = dict(self._placements)
        placements[vm_id] = placement
        powered = self._powered | {placement.host_id}
        return Configuration(placements, powered)

    def remove(self, vm_id: str) -> "Configuration":
        """New configuration with one VM sent back to the dormant pool."""
        if vm_id not in self._placements:
            raise KeyError(f"VM {vm_id!r} is not placed")
        placements = dict(self._placements)
        del placements[vm_id]
        return Configuration(placements, self._powered)

    def power_on(self, host_id: str) -> "Configuration":
        """New configuration with one more powered host."""
        return Configuration(dict(self._placements), self._powered | {host_id})

    def power_off(self, host_id: str) -> "Configuration":
        """New configuration with ``host_id`` powered down (must be empty)."""
        if host_id in self.used_hosts():
            raise ValueError(f"host {host_id!r} still has VMs")
        return Configuration(dict(self._placements), self._powered - {host_id})
