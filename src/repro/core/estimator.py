"""Shared utility estimation for the optimizers (Fig. 2's predictors).

Bundles the Performance Manager (LQN solver), the Power Consolidation
Manager (power model), and the utility model into one cached evaluator:
given a configuration and workload it returns the steady-state utility
accrual rates the optimizers compare.  Results are memoized per
(configuration, workload) because the A* search revisits
configurations heavily.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.core.config import Configuration, VmCatalog
from repro.core.utility import UtilityModel
from repro.perfmodel.solver import LqnSolver
from repro.power.model import SystemPowerModel


@dataclass(frozen=True)
class SteadyEstimate:
    """Predicted steady-state behaviour of one configuration."""

    response_times: Mapping[str, float]
    watts: float
    perf_rate: float
    power_rate: float
    app_perf_rates: Mapping[str, float]
    #: Total CPU actually burned by VMs (utilization x cap, summed).
    busy_cpu: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "response_times", dict(self.response_times))
        object.__setattr__(self, "app_perf_rates", dict(self.app_perf_rates))

    @property
    def total_rate(self) -> float:
        """Net utility accrual rate (performance plus negative power)."""
        return self.perf_rate + self.power_rate


class UtilityEstimator:
    """Cached (configuration, workload) -> utility-rate evaluation."""

    def __init__(
        self,
        solver: LqnSolver,
        power_models: SystemPowerModel,
        utility: UtilityModel,
        catalog: VmCatalog,
        cache_size: int = 200_000,
    ) -> None:
        self.solver = solver
        self.power_models = power_models
        self.utility = utility
        self.catalog = catalog
        self._cache: dict[tuple, SteadyEstimate] = {}
        self._cache_size = cache_size
        self.evaluations = 0

    def _key(
        self, configuration: Configuration, workloads: Mapping[str, float]
    ) -> tuple:
        return (configuration, tuple(sorted(workloads.items())))

    def estimate(
        self, configuration: Configuration, workloads: Mapping[str, float]
    ) -> SteadyEstimate:
        """Steady-state utility rates of a configuration under a workload."""
        key = self._key(configuration, workloads)
        cached = self._cache.get(key)
        if cached is not None:
            return cached

        self.evaluations += 1
        performance = self.solver.solve(configuration, workloads)
        watts = self.power_models.total_watts(
            configuration.powered_hosts, performance.host_utilizations
        )
        app_rates = {
            app: self.utility.perf_utility_rate(
                app, rate, performance.response_times[app]
            )
            for app, rate in workloads.items()
        }
        busy_cpu = 0.0
        for vm_id, rho in performance.vm_utilizations.items():
            placement = configuration.placement_of(vm_id)
            if placement is not None:
                busy_cpu += min(rho, 1.0) * placement.cpu_cap
        estimate = SteadyEstimate(
            response_times=performance.response_times,
            watts=watts,
            perf_rate=sum(app_rates.values()),
            power_rate=self.utility.power_utility_rate(watts),
            app_perf_rates=app_rates,
            busy_cpu=busy_cpu,
        )
        if len(self._cache) >= self._cache_size:
            self._cache.clear()
        self._cache[key] = estimate
        return estimate

    def transient_rates(
        self,
        base: SteadyEstimate,
        workloads: Mapping[str, float],
        rt_delta: Mapping[str, float],
        power_delta_watts: float,
    ) -> tuple[float, float]:
        """Utility rates while an action with the given deltas executes.

        ``base`` is the steady estimate of the configuration the action
        starts from; the deltas come from the Cost Manager.
        """
        perf_rate = 0.0
        for app, rate in workloads.items():
            response_time = base.response_times[app] + rt_delta.get(app, 0.0)
            perf_rate += self.utility.perf_utility_rate(
                app, rate, response_time
            )
        power_rate = self.utility.power_utility_rate(
            base.watts + power_delta_watts
        )
        return perf_rate, power_rate

    def clear_cache(self) -> None:
        """Drop all memoized evaluations."""
        self._cache.clear()


class FeedbackUtilityEstimator(UtilityEstimator):
    """Estimator whose utility consults a :class:`ModelFeedback`.

    The feedback's version is part of the memoization key so cached
    estimates are invalidated whenever the bias estimates move.
    """

    def __init__(self, feedback, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.feedback = feedback

    def _key(self, configuration, workloads) -> tuple:
        return (
            configuration,
            tuple(sorted(workloads.items())),
            self.feedback.version,
        )


def estimator_for(
    catalog: VmCatalog,
    solver: LqnSolver,
    power_models: SystemPowerModel,
    utility: Optional[UtilityModel] = None,
) -> UtilityEstimator:
    """Convenience constructor with a default utility model."""
    return UtilityEstimator(
        solver, power_models, utility or UtilityModel(), catalog
    )
