"""Shared utility estimation for the optimizers (Fig. 2's predictors).

Bundles the Performance Manager (LQN solver), the Power Consolidation
Manager (power model), and the utility model into one cached evaluator:
given a configuration and workload it returns the steady-state utility
accrual rates the optimizers compare.  Results are memoized per
(configuration, workload) with LRU eviction because the A* search
revisits configurations heavily.

Two evaluation paths produce bit-identical estimates:

- :meth:`UtilityEstimator.estimate` solves the configuration from
  scratch;
- :meth:`UtilityEstimator.estimate_child` reuses the parent
  configuration's :class:`~repro.perfmodel.solver.SolveState` and
  re-solves only the tiers owning the VMs one adaptation action
  touched.  The search primes the root with
  :meth:`UtilityEstimator.prime` and then every vertex along a search
  path is evaluated at delta cost.

Callers evaluating many configurations under one workload vector should
compute :meth:`UtilityEstimator.workload_key` once and pass it to every
call, skipping the per-lookup ``tuple(sorted(...))``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional

from repro.core.config import Configuration, VmCatalog
from repro.core.lru import LruDict
from repro.core.utility import UtilityModel
from repro.telemetry import runtime as _telemetry
from repro.perfmodel.lqn import PerformanceEstimate
from repro.perfmodel.solver import LqnSolver
from repro.power.model import SystemPowerModel


@dataclass(frozen=True)
class SteadyEstimate:
    """Predicted steady-state behaviour of one configuration."""

    response_times: Mapping[str, float]
    watts: float
    perf_rate: float
    power_rate: float
    app_perf_rates: Mapping[str, float]
    #: Total CPU actually burned by VMs (utilization x cap, summed).
    busy_cpu: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "response_times", dict(self.response_times))
        object.__setattr__(self, "app_perf_rates", dict(self.app_perf_rates))

    @property
    def total_rate(self) -> float:
        """Net utility accrual rate (performance plus negative power)."""
        return self.perf_rate + self.power_rate


class UtilityEstimator:
    """Cached (configuration, workload) -> utility-rate evaluation."""

    def __init__(
        self,
        solver: LqnSolver,
        power_models: SystemPowerModel,
        utility: UtilityModel,
        catalog: VmCatalog,
        cache_size: int = 200_000,
        state_cache_size: int = 8_192,
    ) -> None:
        self.solver = solver
        self.power_models = power_models
        self.utility = utility
        self.catalog = catalog
        self._cache: LruDict[tuple, SteadyEstimate] = LruDict(
            cache_size, name="estimator.steady"
        )
        self._states: LruDict[tuple, object] = LruDict(
            state_cache_size, name="estimator.states"
        )
        self.evaluations = 0
        #: How many of the evaluations went through the delta path.
        self.incremental_evaluations = 0

    # -- keys ------------------------------------------------------------------

    def workload_key(self, workloads: Mapping[str, float]) -> tuple:
        """Canonical hashable key for one workload vector.

        Compute it once per search/optimize pass and hand it to
        :meth:`estimate`/:meth:`estimate_child` to avoid re-sorting the
        workload mapping on every cache probe.
        """
        return tuple(sorted(workloads.items()))

    # -- evaluation ------------------------------------------------------------

    def estimate(
        self,
        configuration: Configuration,
        workloads: Mapping[str, float],
        key: Optional[tuple] = None,
    ) -> SteadyEstimate:
        """Steady-state utility rates of a configuration under a workload."""
        if key is None:
            key = self.workload_key(workloads)
        cache_key = (configuration, key)
        cached = self._cache.get(cache_key)
        if cached is not None:
            if _telemetry.enabled:
                _telemetry.registry.counter("estimator.memo_hits").inc()
            return cached

        self.evaluations += 1
        if _telemetry.enabled:
            _telemetry.registry.counter("estimator.evaluations").inc()
        performance = self.solver.solve(configuration, workloads)
        estimate = self._finish(configuration, workloads, performance)
        self._cache.put(cache_key, estimate)
        return estimate

    def has_state(
        self,
        configuration: Configuration,
        workloads: Optional[Mapping[str, float]] = None,
        key: Optional[tuple] = None,
    ) -> bool:
        """Whether a solver state for ``configuration`` is installed.

        When it is, children of ``configuration`` resume the incremental
        delta path — strictly cheaper than a fresh (even batched) solve
        — so callers holding a batch of that parent's children can skip
        pre-solving them.
        """
        if key is None:
            key = self.workload_key(workloads or {})
        return (configuration, key) in self._states

    def prime(
        self,
        configuration: Configuration,
        workloads: Mapping[str, float],
        key: Optional[tuple] = None,
    ) -> None:
        """Install a solver state for ``configuration`` (the delta root).

        Children evaluated via :meth:`estimate_child` chain their states
        off this one; without a primed root the first generation falls
        back to full solves.
        """
        if key is None:
            key = self.workload_key(workloads)
        cache_key = (configuration, key)
        if cache_key in self._states:
            return
        state = self.solver.solve_state(configuration, workloads)
        self._states.put(cache_key, state)
        if cache_key not in self._cache:
            self.evaluations += 1
            if _telemetry.enabled:
                _telemetry.registry.counter("estimator.evaluations").inc()
            self._cache.put(
                cache_key,
                self._finish(configuration, workloads, state.estimate),
            )

    def estimate_batch(
        self,
        configurations: "Sequence[Configuration]",
        workloads: Mapping[str, float],
        key: Optional[tuple] = None,
    ) -> list[SteadyEstimate]:
        """Estimate many configurations under one workload vector.

        Cache hits are served as usual; the misses are solved together
        through :meth:`LqnSolver.solve_batch` (one numpy-vectorized
        pass) and their solver states installed, so descendants of any
        batch member resume the incremental path.  Every returned
        estimate is bit-identical to :meth:`estimate` of the same
        configuration — the batch is a throughput lever, not a model
        change.
        """
        if key is None:
            key = self.workload_key(workloads)
        results: list[Optional[SteadyEstimate]] = [None] * len(configurations)
        misses: list[tuple[int, Configuration]] = []
        seen: dict[Configuration, int] = {}
        for index, configuration in enumerate(configurations):
            cached = self._cache.get((configuration, key))
            if cached is not None:
                if _telemetry.enabled:
                    _telemetry.registry.counter("estimator.memo_hits").inc()
                results[index] = cached
            elif configuration in seen:
                # Duplicate miss within the batch: solved once below.
                misses.append((index, configuration))
            else:
                seen[configuration] = index
                misses.append((index, configuration))
        unique = list(seen)
        if unique:
            states = self.solver.solve_batch(unique, workloads)
            if _telemetry.enabled:
                registry = _telemetry.registry
                registry.counter("estimator.evaluations").inc(len(unique))
                registry.counter("estimator.batch_evaluations").inc(
                    len(unique)
                )
            self.evaluations += len(unique)
            solved: dict[Configuration, SteadyEstimate] = {}
            for configuration, state in zip(unique, states):
                estimate = self._finish(
                    configuration, workloads, state.estimate
                )
                cache_key = (configuration, key)
                self._states.put(cache_key, state)
                self._cache.put(cache_key, estimate)
                solved[configuration] = estimate
            for index, configuration in misses:
                results[index] = solved[configuration]
        return results  # type: ignore[return-value]

    def estimate_child(
        self,
        parent: Configuration,
        configuration: Configuration,
        changed_vms: Iterable[str],
        workloads: Mapping[str, float],
        key: Optional[tuple] = None,
    ) -> SteadyEstimate:
        """Estimate a configuration one action away from ``parent``.

        ``changed_vms`` are the VMs whose placement or cap the action
        altered (see ``AdaptationAction.changed_vm_ids``); host power
        changes need no declaration.  When the parent's solver state is
        available the affected tiers alone are re-solved; the result is
        bit-identical to :meth:`estimate` either way.
        """
        if key is None:
            key = self.workload_key(workloads)
        cache_key = (configuration, key)
        cached = self._cache.get(cache_key)
        if cached is not None:
            if _telemetry.enabled:
                _telemetry.registry.counter("estimator.memo_hits").inc()
            return cached

        self.evaluations += 1
        parent_state = self._states.get((parent, key))
        if parent_state is None:
            # Lineage broken (state evicted or root never primed):
            # solve fully, planting a state so descendants resume the
            # delta path.
            state = self.solver.solve_state(configuration, workloads)
            if _telemetry.enabled:
                _telemetry.registry.counter("estimator.evaluations").inc()
        else:
            state = self.solver.update_state(
                parent_state, configuration, workloads, changed_vms
            )
            self.incremental_evaluations += 1
            if _telemetry.enabled:
                registry = _telemetry.registry
                registry.counter("estimator.evaluations").inc()
                registry.counter("estimator.incremental_evaluations").inc()
        estimate = self._finish(configuration, workloads, state.estimate)
        self._states.put(cache_key, state)
        self._cache.put(cache_key, estimate)
        return estimate

    def _finish(
        self,
        configuration: Configuration,
        workloads: Mapping[str, float],
        performance: PerformanceEstimate,
    ) -> SteadyEstimate:
        """Fold a performance estimate into utility rates and power."""
        watts = self.power_models.total_watts(
            configuration.powered_hosts, performance.host_utilizations
        )
        app_rates = {
            app: self.utility.perf_utility_rate(
                app, rate, performance.response_times[app]
            )
            for app, rate in workloads.items()
        }
        busy_cpu = 0.0
        for vm_id, rho in performance.vm_utilizations.items():
            placement = configuration.placement_of(vm_id)
            if placement is not None:
                busy_cpu += min(rho, 1.0) * placement.cpu_cap
        return SteadyEstimate(
            response_times=performance.response_times,
            watts=watts,
            perf_rate=sum(app_rates.values()),
            power_rate=self.utility.power_utility_rate(watts),
            app_perf_rates=app_rates,
            busy_cpu=busy_cpu,
        )

    def transient_rates(
        self,
        base: SteadyEstimate,
        workloads: Mapping[str, float],
        rt_delta: Mapping[str, float],
        power_delta_watts: float,
        memo: Optional[dict] = None,
    ) -> tuple[float, float]:
        """Utility rates while an action with the given deltas executes.

        ``base`` is the steady estimate of the configuration the action
        starts from, estimated under the same ``workloads``; the deltas
        come from the Cost Manager.  ``memo``, when given, caches the
        point utility-rate lookups by their *input values* — valid for
        exactly one (workload vector, utility model) pair, so callers
        must scope it to one search pass.  A hit returns the identical
        float the direct call would, keeping memoized and unmemoized
        paths bit-identical.
        """
        # Apps the action does not touch keep the parent's rate: the
        # delta is 0.0 and ``rt + 0.0 == rt``, so recomputing would
        # reproduce ``base.app_perf_rates[app]`` bit for bit — reuse it.
        app_rates = base.app_perf_rates
        perf_rate = 0.0
        for app, rate in workloads.items():
            delta = rt_delta.get(app, 0.0)
            if delta == 0.0:
                perf_rate += app_rates[app]
            else:
                rt_after = base.response_times[app] + delta
                if memo is None:
                    perf_rate += self.utility.perf_utility_rate(
                        app, rate, rt_after
                    )
                else:
                    mkey = (app, rt_after)
                    value = memo.get(mkey)
                    if value is None:
                        value = self.utility.perf_utility_rate(
                            app, rate, rt_after
                        )
                        memo[mkey] = value
                    perf_rate += value
        if power_delta_watts == 0.0:
            power_rate = base.power_rate
        else:
            watts_after = base.watts + power_delta_watts
            if memo is None:
                power_rate = self.utility.power_utility_rate(watts_after)
            else:
                # Empty-string app slot keeps power keys disjoint from
                # the per-app performance keys above.
                pkey = ("", watts_after)
                power_rate = memo.get(pkey)
                if power_rate is None:
                    power_rate = self.utility.power_utility_rate(watts_after)
                    memo[pkey] = power_rate
        return perf_rate, power_rate

    def clear_cache(self) -> None:
        """Drop all memoized evaluations and solver states."""
        self._cache.clear()
        self._states.clear()


class FeedbackUtilityEstimator(UtilityEstimator):
    """Estimator whose utility consults a :class:`ModelFeedback`.

    The feedback's version is part of the memoization key so cached
    estimates (and solver states) are invalidated whenever the bias
    estimates move.
    """

    def __init__(self, feedback, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.feedback = feedback

    def workload_key(self, workloads: Mapping[str, float]) -> tuple:
        return (tuple(sorted(workloads.items())), self.feedback.version)


def estimator_for(
    catalog: VmCatalog,
    solver: LqnSolver,
    power_models: SystemPowerModel,
    utility: Optional[UtilityModel] = None,
) -> UtilityEstimator:
    """Convenience constructor with a default utility model."""
    return UtilityEstimator(
        solver, power_models, utility or UtilityModel(), catalog
    )
