"""Pluggable search strategies over the configuration graph (DESIGN.md §14).

The adaptation search is a maximization of Eq. 3 over action sequences;
:class:`~repro.core.search.AdaptationSearch.search` dispatches it to one
of three interchangeable backends:

- ``"astar"`` — the paper's exact Naive / Self-Aware A* (Algorithm 1),
  run unchanged by :class:`AStarStrategy`.  Deterministic, proves
  optimality on terminal pops, but its frontier grows combinatorially
  with system size.
- ``"mcts"`` — :class:`MctsStrategy`, a seeded UCB1-guided Monte-Carlo
  tree search.  Each simulation selects a tree path by upper confidence
  bound, expands one child, runs a short guided rollout, and backs the
  normalized Eq. 3 reward up the path.  Rollout candidates are steady-
  state-evaluated through ``UtilityEstimator.estimate_batch`` (the
  vectorized ``LqnSolver.solve_batch`` kernel) and the incremental
  delta path, so evaluation reuses the PR 1/PR 4 machinery wholesale.
- ``"annealing"`` — :class:`AnnealingStrategy`, a seeded simulated-
  annealing walk: propose a near-ideal action, accept improvements
  always and regressions with probability ``exp(Δ/T)`` under a
  geometric cooling schedule, teleporting back to the best incumbent
  after a run of rejections.

The stochastic backends share one contract (test-enforced by
``tests/test_strategies.py``):

- **Deterministic under a fixed seed** — all randomness flows from one
  private ``random.Random(settings.strategy_seed)``; the wall clock is
  consulted only by the deadline watchdog.
- **Anytime** — a feasible incumbent (at worst the explicit null plan)
  exists from the first instant, so aborting at any point — budget
  exhaustion, the PR 5 deadline watchdog, controller degradation —
  returns a valid, executable plan.
- **Watchdog-composed** — ``settings.deadline_seconds`` is checked
  cooperatively once per iteration/rollout step, so the wall-time
  overshoot is bounded by a single step; deadline-aborted outcomes set
  ``deadline_aborted`` and thereby feed the controller's degradation
  ladder exactly like an aborted A* (PR 3/PR 5).

Both walkers navigate the same action-enumeration space as the A*
(``AdaptationSearch._enumerate_actions`` with ideal-cap highways, scope
filtering included) and price actions with the same Cost Manager
transient model, so their plans are executable by the same Cluster and
comparable utility-for-utility with the exact search.
"""

from __future__ import annotations

import math
import os
import random
import time
from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.core.actions import ActionError, AdaptationAction, NullAction
from repro.core.config import Configuration
from repro.core.planner import plan_transition
from repro.faults.injector import InjectedSolverFault
from repro.core.search import (
    STRATEGY_KINDS,
    SearchOutcome,
    SearchSettings,
    _SearchBasis,
    _VertexState,
)
from repro.telemetry import phases as _phases
from repro.telemetry import runtime as _telemetry
from repro.telemetry.provenance import ProvenanceCollector, plan_breakdown

#: MCTS rollout policy: score this many head entries of the distance-
#: ranked proposal list per step, follow the best with this
#: probability (else a uniform sibling).  Constants, not settings —
#: they shape rollout quality, not the strategy contract.
_ROLLOUT_WIDTH = 4
_ROLLOUT_GREED = 0.75

__all__ = [
    "SearchStrategy",
    "AStarStrategy",
    "MctsStrategy",
    "AnnealingStrategy",
    "resolve_strategy",
    "resolve_strategy_name",
]


def resolve_strategy_name(value: Optional[str]) -> str:
    """The effective strategy name for a settings value.

    ``None`` consults the ``MISTRAL_SEARCH_STRATEGY`` environment
    variable (unset/empty → ``"astar"``).  Unknown names raise — a
    typo'd operator override must fail loudly, not silently fall back
    to a different search.
    """
    if value is None:
        raw = os.environ.get("MISTRAL_SEARCH_STRATEGY", "")
        value = raw.strip().lower()
        if not value:
            return "astar"
    if value not in STRATEGY_KINDS:
        raise ValueError(
            f"unknown search strategy {value!r}: expected one of "
            f"{STRATEGY_KINDS} (check MISTRAL_SEARCH_STRATEGY or "
            "SearchSettings.strategy)"
        )
    return value


class SearchStrategy:
    """Interface of a search backend (DESIGN.md §14).

    A strategy is a stateless singleton: all per-run state lives in the
    ``run`` invocation, so one instance serves concurrent searches
    (the hierarchy's L1 thread pool included).  ``run`` must honour the
    :class:`~repro.core.search.SearchOutcome` contract — a feasible
    plan or the explicit null plan, ``deadline_aborted`` when the
    watchdog cut it short — and must consume the wall clock only for
    watchdog checks so fixed-seed runs stay deterministic.
    """

    #: Registry key; also stamped on ``SearchOutcome.strategy``.
    name: str = "abstract"

    def run(
        self,
        search,
        current: Configuration,
        workloads: Mapping[str, float],
        control_window: float,
        *,
        expected_utility: Optional[float] = None,
        expected_rate: Optional[float] = None,
        settings_override: Optional[SearchSettings] = None,
    ) -> SearchOutcome:
        raise NotImplementedError


class AStarStrategy(SearchStrategy):
    """The exact A* loop, unchanged (bit-identical outcomes)."""

    name = "astar"

    def run(
        self,
        search,
        current,
        workloads,
        control_window,
        *,
        expected_utility=None,
        expected_rate=None,
        settings_override=None,
    ) -> SearchOutcome:
        return search._astar_search(
            current,
            workloads,
            control_window,
            expected_utility,
            expected_rate,
            settings_override,
        )


@dataclass(slots=True)
class _WalkNode:
    """One position of a stochastic walker: a configuration plus the
    Eq. 3 accrual of the action chain that reached it (the same
    quantities an A* vertex carries, minus the frontier bookkeeping)."""

    configuration: Configuration
    state: _VertexState
    actions: tuple[AdaptationAction, ...]
    accrued: float
    elapsed: float
    parent_configuration: Optional[Configuration] = None
    changed_vms: frozenset = frozenset()
    is_candidate: bool = False
    #: Memoized steady estimate (one estimator call per node).
    steady_cache: Optional[object] = None


class _WalkContext:
    """Shared per-run state of the stochastic walkers.

    Builds the same evaluation scaffolding the A* preamble does — the
    Perf-Pwr ideal (scope-projected for 1st-level controllers), the
    distance basis, the incremental :class:`_SearchBasis`, the primed
    estimator — and exposes child construction, Eq. 3 valuation,
    incumbent tracking and outcome assembly on top of it.  Decision
    time uses the same virtual accounting as the A* (per-step and
    per-child charges), so durations are deterministic and platform-
    independent.
    """

    def __init__(
        self,
        search,
        current: Configuration,
        workloads: Mapping[str, float],
        control_window: float,
        settings: SearchSettings,
    ) -> None:
        self.wall_start = time.perf_counter()
        self.search = search
        self.settings = settings
        self.workloads = workloads
        self.wkey = search.estimator.workload_key(workloads)
        ideal = search.perf_pwr.optimize(workloads)
        if search.scope_hosts is not None:
            ideal = search._project_ideal(current, ideal, workloads)
        self.ideal = ideal
        self.ideal_rate = ideal.ideal_rate
        self.window = max(control_window, 0.0)
        self.current = current
        self.current_estimate = search.estimator.estimate(
            current, workloads, key=self.wkey
        )
        self.current_rate = self.current_estimate.total_rate
        self.deadline = settings.deadline_seconds
        self.deadline_hit = False
        #: Chaos-mode fault injector (``search.fault_injector``):
        #: solver-exception and strategy-stall injection points.
        self.injector = getattr(search, "fault_injector", None)
        self.rng = random.Random(settings.strategy_seed)
        self.iterations = 0
        self.evaluations = 0
        self.candidate_offers = 0
        self.virtual_seconds = 0.0
        self.collector = (
            ProvenanceCollector()
            if _telemetry.enabled and _telemetry.provenance
            else None
        )
        self.profile = _phases.PhaseProfile() if _telemetry.enabled else None
        if self.profile is not None:
            _phases.set_profile(self.profile)
        # The walkers always evaluate incrementally — the delta path is
        # bit-compatible with the full path (PR 1), so this is a
        # throughput choice, not a semantic one.
        ideal_weights, ideal_caps = search._ideal_distance_basis(ideal)
        self.ideal_caps = ideal_caps
        durations = search._togo_durations(workloads)
        search.estimator.prime(current, workloads, key=self.wkey)
        self.basis = _SearchBasis(
            search.catalog,
            search.limits,
            ideal.configuration,
            ideal_weights,
            ideal_caps,
            durations,
        )
        self.rate_gap = settings.togo_discount * max(
            self.ideal_rate - self.current_rate,
            0.1 * abs(self.ideal_rate),
            1e-9,
        )
        root_state = self.basis.full_state(current)
        self.root = _WalkNode(
            configuration=current,
            state=root_state,
            actions=(),
            accrued=0.0,
            elapsed=0.0,
            is_candidate=self.basis.is_candidate(root_state),
        )
        self.root.steady_cache = self.current_estimate
        #: Incumbent: starts at the explicit null plan, so any abort
        #: returns a valid decision (the anytime guarantee).
        self.null_value = self.window * self.current_rate
        self.best_value = self.null_value
        self.best_actions: tuple = ()
        self.best_configuration = current
        #: Reward normalization: one unit is the ideal-vs-null utility
        #: gap over the window (floored so flat landscapes still grade).
        self.scale = max(
            self.window * self.ideal_rate - self.null_value,
            0.05 * abs(self.window * self.ideal_rate),
            1e-9,
        )
        #: Ranked-action proposals per visited configuration (ranking
        #: is deterministic, so caching cannot change decisions).
        self._ranked: dict[Configuration, list] = {}
        #: Seed chains recorded by :meth:`seed_plans` (polish starts).
        self.seed_chains: list[list[_WalkNode]] = []
        #: Useful plans are at most a few actions longer than the
        #: planner's direct route to the ideal: past the window's end
        #: accrual freezes, so deeper wandering only pads the plan.
        #: ``seed_plans`` tightens this to the longest seed plan + 3.
        self.depth_limit = min(settings.max_plan_actions, 12)

    # -- clock ---------------------------------------------------------

    def out_of_time(self) -> bool:
        """Cooperative watchdog check (one clock read; no deadline →
        no reads at all, keeping fixed-seed runs deterministic)."""
        if self.deadline is None or self.deadline_hit:
            return self.deadline_hit
        if time.perf_counter() - self.wall_start >= self.deadline:
            self.deadline_hit = True
        return self.deadline_hit

    def maybe_stall(self) -> None:
        """Chaos injection: sleep one injected stall before this
        iteration.  Placed right before the watchdog check so a stall
        long enough to blow the deadline aborts the walker on the very
        next ``out_of_time`` — the incumbent survives, the outcome is
        stamped ``deadline_aborted``, and the ladder steps down."""
        injector = self.injector
        if injector is None:
            return
        seconds = injector.strategy_stall()
        if seconds > 0.0:
            if _telemetry.enabled:
                _telemetry.tracer.event(
                    "fault.strategy.stall", seconds=seconds
                )
            time.sleep(seconds)

    # -- evaluation ----------------------------------------------------

    def steady(self, node: _WalkNode):
        """Steady estimate of a node, via the incremental delta path
        when lineage allows (memoized per node).

        Chaos mode may raise :class:`InjectedSolverFault` here — the
        walkers let it propagate, and the search's dispatcher answers
        with the exact-A* fallback (walker failure degradation).
        """
        estimate = node.steady_cache
        if estimate is None:
            injector = self.injector
            if injector is not None and injector.solver_exception():
                if _telemetry.enabled:
                    _telemetry.tracer.event("fault.solver.exception")
                raise InjectedSolverFault(
                    "injected LQN solver failure mid-evaluation"
                )
            if node.parent_configuration is not None:
                estimate = self.search.estimator.estimate_child(
                    node.parent_configuration,
                    node.configuration,
                    node.changed_vms,
                    self.workloads,
                    key=self.wkey,
                )
            else:
                estimate = self.search.estimator.estimate(
                    node.configuration, self.workloads, key=self.wkey
                )
            node.steady_cache = estimate
        return estimate

    def bound(self, node: _WalkNode) -> float:
        """Admissible Eq. 3 bound (ideal rate over the remainder)."""
        remaining = max(0.0, self.window - node.elapsed)
        return remaining * self.ideal_rate + node.accrued

    def candidate_value(self, node: _WalkNode) -> float:
        """True Eq. 3 value of committing to this candidate."""
        remaining = max(0.0, self.window - node.elapsed)
        return remaining * self.steady(node).total_rate + node.accrued

    def walk_score(self, node: _WalkNode) -> float:
        """Local navigation score: the *true* Eq. 3 value of stopping
        here (steady-solved, not the admissible bound — the bound
        rewards any distance-reducing edit no matter how bad its real
        rate, which sends a local walker straight downhill), deflated
        for infeasible intermediates by the A*'s guidance potential
        (they still owe adaptation work before they can be committed).
        Estimates ride the incremental delta/cache path; batch-prewarm
        sibling sets with :meth:`prewarm` before scoring them."""
        value = self.candidate_value(node)
        if node.is_candidate:
            return value
        seconds = self.basis.togo_seconds(node.state, node.configuration)
        return value - (
            self.settings.guidance_weight * seconds * self.rate_gap
        )

    def offer(self, node: _WalkNode) -> float:
        """Evaluate a candidate node and raise the incumbent if it
        wins.  Every offer is also a provenance candidate note, so
        ``decision.provenance`` records the rejected rivals."""
        value = self.candidate_value(node)
        self.candidate_offers += 1
        if self.collector is not None:
            self.collector.note_candidate(value, node.actions)
        if value > self.best_value:
            self.best_value = value
            self.best_actions = node.actions
            self.best_configuration = node.configuration
        return value

    def prewarm(self, nodes: list) -> None:
        """Batch-solve the steady estimates of multiple candidate nodes
        through ``LqnSolver.solve_batch`` before they are read one by
        one (identical values — the batch kernel is bit-identical to
        the scalar solver)."""
        pending = [
            node.configuration for node in nodes if node.steady_cache is None
        ]
        if len(pending) < 2:
            return
        batch = self.settings.batch_size
        with _phases.phase("solve"):
            for start in range(0, len(pending), batch):
                self.search.estimator.estimate_batch(
                    pending[start : start + batch],
                    self.workloads,
                    key=self.wkey,
                )

    # -- moves ---------------------------------------------------------

    def ranked_actions(
        self, node: _WalkNode, limit: Optional[int] = 0
    ) -> list:
        """The applicable actions from a node, closest-to-ideal first,
        truncated to ``limit`` placement entries (``0`` → the
        ``walker_branch_limit`` setting, ``None`` → untruncated) — the
        same enumeration and distance ranking the self-aware prune
        uses, so the walkers inherit scope filtering and ideal-cap
        highways for free.  Entries are ``(action, delta)`` tuples;
        host power toggles rank after the placement head regardless of
        ``limit`` (their child distance ties with the parent's, yet
        they are exactly the moves that finish a consolidation)."""
        cached = self._ranked.get(node.configuration)
        if cached is None:
            search = self.search
            with _phases.phase("enumerate"):
                possible = search._enumerate_actions(
                    node.configuration, self.ideal_caps
                )
            entries = []
            toggles = []
            for order, action in enumerate(possible):
                if isinstance(action, NullAction):
                    continue  # walkers offer candidates directly
                try:
                    delta = action.placement_delta(
                        node.configuration, search.catalog, search.limits
                    )
                except ActionError:
                    continue
                if not delta:
                    toggles.append((action, delta))
                    continue
                entries.append(
                    (
                        self.basis.child_distance(node.state, delta),
                        order,
                        action,
                        delta,
                    )
                )
            entries.sort(key=lambda entry: (entry[0], entry[1]))
            self.virtual_seconds += (len(entries) + len(toggles)) * (
                self.settings.per_child_apply_seconds
            )
            cached = (
                [(action, delta) for _, _, action, delta in entries],
                toggles,
            )
            self._ranked[node.configuration] = cached
        placements, toggles = cached
        if limit == 0:
            limit = self.settings.walker_branch_limit
        if limit is not None:
            placements = placements[:limit]
        return placements + toggles

    def make_child(
        self, node: _WalkNode, action: AdaptationAction, delta: tuple
    ) -> Optional[_WalkNode]:
        """Apply one action: the same child arithmetic as the A*'s
        ``build_child`` (delta-derived configuration and state, Cost
        Manager transients, window-truncated rate-capped accrual)."""
        search = self.search
        if len(delta) == 1:
            ((vm_id, placement),) = delta
            configuration = (
                node.configuration.remove(vm_id)
                if placement is None
                else node.configuration.replace(vm_id, placement)
            )
        else:
            try:
                configuration = action.apply(
                    node.configuration, search.catalog, search.limits
                )
            except ActionError:
                return None
        state = self.basis.child_state(node.configuration, node.state, delta)
        predicted = search.cost_manager.predict(
            action, node.configuration, self.workloads
        )
        perf_rate, power_rate = search.estimator.transient_rates(
            self.steady(node),
            self.workloads,
            predicted.rt_delta,
            predicted.power_delta_watts,
        )
        effective = min(
            predicted.duration, max(0.0, self.window - node.elapsed)
        )
        transient_rate = min(perf_rate + power_rate, self.ideal_rate)
        child = _WalkNode(
            configuration=configuration,
            state=state,
            actions=node.actions + (action,),
            accrued=node.accrued + effective * transient_rate,
            elapsed=node.elapsed + predicted.duration,
            parent_configuration=node.configuration,
            changed_vms=frozenset(vm_id for vm_id, _ in delta),
            is_candidate=self.basis.is_candidate(state),
        )
        self.evaluations += 1
        self.virtual_seconds += self.settings.per_child_eval_seconds
        return child

    def seed_plans(self) -> list:
        """Install the direct transition plans to the ideal (and its
        Perf-Pwr alternatives) as starting incumbents — the same
        seeding the A* uses, so a stochastic walker starts from the
        planner's best direct plan and can only improve on it.

        Returns the seed chains (one ``[_WalkNode, ...]`` per target,
        root excluded) so a strategy can plant them in its own
        structures — the MCTS tree skeleton, an annealing anchor."""
        chains: list[list[_WalkNode]] = []
        if not self.settings.seed_with_plan:
            return chains
        search = self.search
        targets = [self.ideal.configuration] + [
            alternative.configuration
            for alternative in self.ideal.alternatives
            if alternative.configuration != self.ideal.configuration
        ]
        longest = 0
        with _phases.phase("score"):
            for target in targets:
                node = self.root
                chain: list[_WalkNode] = []
                for action in plan_transition(
                    self.current, target, search.catalog, search.limits
                ):
                    if action.kind not in self.settings.allowed_kinds:
                        break  # keep the valid prefix only
                    try:
                        delta = action.placement_delta(
                            node.configuration, search.catalog, search.limits
                        )
                    except ActionError:
                        break
                    node = self.make_child(node, action, delta)
                    if node is None:
                        break
                    chain.append(node)
                    if node.is_candidate:
                        self.offer(node)
                longest = max(longest, len(node.actions))
                if chain:
                    chains.append(chain)
        self.depth_limit = min(
            self.settings.max_plan_actions, max(self.depth_limit, longest + 3)
        )
        self.seed_chains = chains
        return chains

    def replay(self, actions) -> Optional[_WalkNode]:
        """Re-walk an action sequence from the root, offering every
        candidate prefix met on the way; ``None`` if any step fails."""
        node = self.root
        search = self.search
        for action in actions:
            try:
                delta = action.placement_delta(
                    node.configuration, search.catalog, search.limits
                )
            except ActionError:
                return None
            node = self.make_child(node, action, delta)
            if node is None:
                return None
            if node.is_candidate:
                self.offer(node)
        return node

    def sweep(self, max_len: int = 3, beam: int = 6) -> int:
        """Deterministic short-plan sweep over the seed chains' action
        pool: replay every single action, then extend the ``beam`` best
        plans with every pool action, up to ``max_len`` steps.

        The exact search's winners are frequently *short* reorderings
        of the planner's direct chain (run the one high-gain action
        first, drop the rest) — plans a hill-climb from the full chain
        cannot reach monotonically.  Every replayed candidate feeds the
        incumbent through :meth:`offer`.  Returns the replay count."""
        pool: list[AdaptationAction] = []
        seen: set[AdaptationAction] = set()
        for chain in self.seed_chains:
            for node in chain:
                action = node.actions[-1]
                if action not in seen:
                    seen.add(action)
                    pool.append(action)
        if not pool:
            return 0
        replays = 0
        tier: list[tuple[float, tuple]] = [(0.0, ())]
        with _phases.phase("score"):
            for _ in range(max_len):
                scored: list[tuple[float, tuple]] = []
                for _, prefix in tier:
                    for action in pool:
                        if self.out_of_time():
                            return replays
                        if action in prefix:
                            continue
                        plan = prefix + (action,)
                        node = self.replay(plan)
                        replays += 1
                        if node is None:
                            continue
                        scored.append((self.walk_score(node), plan))
                if not scored:
                    break
                scored.sort(key=lambda pair: (-pair[0], repr(pair[1][-1])))
                tier = scored[:beam]
        return replays

    def beam(self, width: int = 8) -> int:
        """Deterministic dual-criterion beam over the full action
        enumeration: each depth tier keeps the union of the ``width``
        best children by :meth:`walk_score` (true steady-solved value —
        exploits known-good basins) and the ``width`` best by
        :meth:`bound` (the A*'s optimistic Eq. 3 priority — keeps
        transiently-expensive prefixes alive that true value would
        evict before they pay off).  Either signal alone fails: true
        value is pessimistic about deep plans' early actions, the bound
        rewards distance-reducing edits regardless of achieved rate.
        Every candidate met feeds the incumbent.  Returns the number of
        tiers expanded."""
        tier = [self.root]
        depths = 0
        stale = 0
        tier_mark = -math.inf
        with _phases.phase("score"):
            for _ in range(self.depth_limit):
                mark = self.best_value
                children: list[_WalkNode] = []
                for node in tier:
                    if self.out_of_time():
                        return depths
                    for action, delta in self.ranked_actions(node, None):
                        child = self.make_child(node, action, delta)
                        if child is not None:
                            children.append(child)
                if not children:
                    break
                # Transpositions of the same edits meet again in the
                # same configuration; keep only the best-accrued route
                # to each (the same frontier dedup the A* does).
                best_route: dict = {}
                for child in children:
                    rival = best_route.get(child.configuration)
                    if rival is None or self.bound(child) > self.bound(rival):
                        best_route[child.configuration] = child
                children = [
                    child
                    for child in children
                    if best_route[child.configuration] is child
                ]
                self.prewarm(children)
                for child in children:
                    if child.is_candidate:
                        self.offer(child)
                by_value = sorted(
                    range(len(children)),
                    key=lambda i: (-self.walk_score(children[i]), i),
                )
                by_bound = sorted(
                    range(len(children)),
                    key=lambda i: (-self.bound(children[i]), i),
                )
                keep: list[int] = []
                for index in by_value[:width] + by_bound[:width]:
                    if index not in keep:
                        keep.append(index)
                tier = [children[index] for index in keep]
                depths += 1
                # Tier depth past the best plan's length is pure cost:
                # stop once three consecutive tiers neither raised the
                # incumbent nor pushed the frontier's best true score
                # higher (a pre-seeded incumbent would otherwise make
                # every shallow tier look stale and cut the beam off
                # before deep plans can pay their transients back).
                tier_best = max(
                    self.walk_score(child) for child in tier
                )
                progressed = (
                    self.best_value > mark or tier_best > tier_mark
                )
                tier_mark = max(tier_mark, tier_best)
                stale = 0 if progressed else stale + 1
                if stale >= 3:
                    break
        return depths

    def _climb(self, base: tuple) -> None:
        """Hill-climb one plan over adjacent transpositions and single
        deletions, replayed with the exact accrual arithmetic.  Tracks
        its *own* local best (every replayed candidate still feeds the
        global incumbent through :meth:`offer`), so climbing a worse
        start cannot be derailed by the incumbent's distant basin."""
        best = base
        best_value = -math.inf
        node = self.replay(base)
        if node is not None and node.is_candidate:
            best_value = self.candidate_value(node)
        for _ in range(6):
            if self.out_of_time() or not best:
                return
            variants = [
                best[:i] + (best[i + 1], best[i]) + best[i + 2 :]
                for i in range(len(best) - 1)
            ] + [best[:i] + best[i + 1 :] for i in range(len(best))]
            improved = False
            for variant in variants:
                if self.out_of_time():
                    return
                node = self.replay(variant)
                if node is None or not node.is_candidate:
                    continue
                value = self.candidate_value(node)
                if value > best_value:
                    best, best_value, improved = variant, value, True
            if not improved:
                return

    def polish(self) -> int:
        """Deterministic local refinement: hill-climb the incumbent
        plan *and* each seed chain's full plan.

        Transient cost depends on action *order* (Eq. 3 accrues each
        action's rate over its duration), so the planner's direct chain
        is usually improvable by running cheap high-gain actions first
        and dropping steps whose rate never pays back — exactly the
        reorderings the A* finds by search.  Candidate prefixes are
        offered during every replay, which subsumes plan truncation.
        Returns the number of starts climbed."""
        starts = []
        for chain in self.seed_chains:
            actions = chain[-1].actions
            if actions and actions not in starts:
                starts.append(actions)
        if self.best_actions and self.best_actions not in starts:
            starts.append(self.best_actions)
        self.beam()
        self.sweep()
        if self.best_actions and self.best_actions not in starts:
            starts.append(self.best_actions)
        with _phases.phase("score"):
            for base in starts:
                if self.out_of_time():
                    break
                self._climb(base)
            # Climbs can improve the *global* incumbent through offered
            # prefixes without their local best following it; re-climb
            # the incumbent until it stops moving so gains compound
            # across starts.
            for _ in range(4):
                if self.out_of_time():
                    break
                incumbent = self.best_actions
                if not incumbent:
                    break
                self._climb(incumbent)
                if self.best_actions == incumbent:
                    break
        return len(starts)

    # -- outcome -------------------------------------------------------

    def finish(
        self,
        strategy_name: str,
        stats: Optional[dict] = None,
        *,
        optimal: bool = False,
        early_return: bool = False,
    ) -> SearchOutcome:
        """Assemble the outcome and emit the one telemetry record per
        search — mirroring the A*'s ``complete`` funnel (``search.run``
        event, watchdog/pruning counters, phase profile, decision
        provenance) plus the per-strategy counters."""
        if self.profile is not None:
            _phases.set_profile(None)
        actions = tuple(
            action
            for action in self.best_actions
            if not isinstance(action, NullAction)
        )
        decision_seconds = max(
            self.settings.per_vertex_seconds, self.virtual_seconds
        )
        outcome = SearchOutcome(
            actions=actions,
            final_configuration=self.best_configuration,
            predicted_utility=self.best_value,
            ideal=self.ideal,
            expansions=self.iterations,
            decision_seconds=decision_seconds,
            wall_seconds=time.perf_counter() - self.wall_start,
            pruning_activated=False,
            optimal=optimal,
            deadline_aborted=self.deadline_hit,
        )
        if _telemetry.enabled:
            registry = _telemetry.registry
            registry.counter("search.runs").inc()
            if self.deadline_hit:
                registry.counter("watchdog.deadline_aborts").inc()
                _telemetry.tracer.event(
                    "watchdog.deadline_abort",
                    deadline=self.deadline,
                    wall_seconds=outcome.wall_seconds,
                    expansions=outcome.expansions,
                    actions=len(outcome.actions),
                )
            registry.counter("search.expansions").inc(outcome.expansions)
            registry.counter("search.children_generated").inc(
                self.evaluations
            )
            registry.counter("search.candidates").inc(self.candidate_offers)
            if early_return:
                registry.counter("search.early_returns").inc()
            prefix = f"search.strategy.{strategy_name}"
            registry.counter(f"{prefix}.iterations").inc(self.iterations)
            registry.counter(f"{prefix}.evaluations").inc(self.evaluations)
            for key, value in (stats or {}).items():
                if isinstance(value, int) and value > 0:
                    registry.counter(f"{prefix}.{key}").inc(value)
            registry.gauge("search.heuristic_gap").set(
                self.window * self.ideal_rate - outcome.predicted_utility
            )
            _telemetry.tracer.event(
                "search.run",
                dur=outcome.wall_seconds,
                self_aware=self.settings.self_aware,
                incremental=True,
                parallel=False,
                pool_seconds=0.0,
                expansions=outcome.expansions,
                children_generated=self.evaluations,
                children_pruned=0,
                candidates=self.candidate_offers,
                pruning_activated=False,
                decision_seconds=outcome.decision_seconds,
                predicted_utility=outcome.predicted_utility,
                actions=len(outcome.actions),
                optimal=outcome.optimal,
                early_return=early_return,
            )
            if self.profile is not None and self.profile:
                _telemetry.tracer.event(
                    "profile.phases",
                    phases=self.profile.snapshot(),
                    wall_seconds=outcome.wall_seconds,
                    expansions=outcome.expansions,
                    parallel=False,
                    array_core=False,
                )
            if self.collector is not None:
                if self.deadline_hit:
                    self.collector.note_deadline(0, None)
                try:
                    totals, per_action = plan_breakdown(
                        self.search.estimator,
                        self.search.catalog,
                        self.search.limits,
                        self.search.cost_manager,
                        self.workloads,
                        self.wkey,
                        self.window,
                        self.ideal_rate,
                        self.current,
                        self.best_actions,
                    )
                except Exception:
                    totals = {
                        "steady": outcome.predicted_utility,
                        "transient": 0.0,
                        "total": outcome.predicted_utility,
                    }
                    per_action = []
                utility = {
                    **totals,
                    "predicted_utility": outcome.predicted_utility,
                    "baseline_utility": self.null_value,
                    "delta_vs_current": (
                        outcome.predicted_utility - self.null_value
                    ),
                    "ideal_bound": self.window * self.ideal_rate,
                    "heuristic_gap": (
                        self.window * self.ideal_rate
                        - outcome.predicted_utility
                    ),
                }
                outcome.provenance = self.collector.build(
                    utility=utility,
                    chosen_actions=tuple(
                        type(action).__name__ for action in actions
                    ),
                    predicted_utility=outcome.predicted_utility,
                    search={
                        "expansions": outcome.expansions,
                        "children_generated": self.evaluations,
                        "children_pruned": 0,
                        "candidates": self.candidate_offers,
                        "pruning_activated": False,
                        "optimal": outcome.optimal,
                        "early_return": early_return,
                        "deadline_aborted": self.deadline_hit,
                        "self_aware": self.settings.self_aware,
                        "incremental": True,
                        "parallel": False,
                        "array_core": False,
                        "wall_seconds": outcome.wall_seconds,
                        "decision_seconds": outcome.decision_seconds,
                        "strategy": strategy_name,
                        **{
                            key: value
                            for key, value in (stats or {}).items()
                        },
                    },
                    per_action=per_action,
                )
        return outcome


@dataclass(slots=True)
class _TreeNode:
    """One MCTS tree node (statistics over a :class:`_WalkNode`)."""

    node: _WalkNode
    #: ``None`` until first visited; then the not-yet-expanded child
    #: nodes as ``(walk_score, _WalkNode)``, best first — built by one
    #: A*-style full expansion round (all proposals materialized,
    #: batch-evaluated, candidates offered to the incumbent).
    untried: Optional[list] = None
    children: list = field(default_factory=list)
    visits: int = 0
    value_sum: float = 0.0


class MctsStrategy(SearchStrategy):
    """Seeded UCB1-guided Monte-Carlo tree search (anytime)."""

    name = "mcts"

    def run(
        self,
        search,
        current,
        workloads,
        control_window,
        *,
        expected_utility=None,
        expected_rate=None,
        settings_override=None,
    ) -> SearchOutcome:
        settings = (
            search.settings if settings_override is None else settings_override
        )
        ctx = _WalkContext(search, current, workloads, control_window, settings)
        if ctx.ideal.configuration == current:
            return ctx.finish(self.name, optimal=True, early_return=True)
        exploration = settings.mcts_exploration
        rollout_depth = settings.mcts_rollout_depth
        rng = ctx.rng
        root = _TreeNode(ctx.root)
        rollout_steps = 0
        tree_nodes = 1
        # Plant the planner's direct seed chains as tree skeletons:
        # the search starts with the A*'s seed plans in the tree and
        # spends its budget refining around them instead of
        # rediscovering the route to the ideal from scratch.
        for chain in ctx.seed_plans():
            parent = root
            for walk_node in chain:
                child_tree = _TreeNode(walk_node)
                parent.children.append(child_tree)
                tree_nodes += 1
                parent = child_tree
        max_depth = ctx.depth_limit

        def proposals(tree_node: _TreeNode) -> list:
            """Lazy full expansion: on a node's first visit, build and
            batch-evaluate *all* its proposal children (one A* expansion
            round), offer the candidates, and keep the rest sorted by
            walk score as the untried pool."""
            if tree_node.untried is None:
                if len(tree_node.node.actions) >= max_depth:
                    tree_node.untried = []
                else:
                    children = []
                    with _phases.phase("score"):
                        for action, delta in ctx.ranked_actions(
                            tree_node.node
                        ):
                            child = ctx.make_child(
                                tree_node.node, action, delta
                            )
                            if child is None:
                                continue
                            children.append(child)
                    ctx.prewarm(children)
                    with _phases.phase("score"):
                        scored = []
                        for child in children:
                            if child.is_candidate:
                                ctx.offer(child)
                            scored.append((ctx.walk_score(child), child))
                    scored.sort(key=lambda pair: pair[0], reverse=True)
                    tree_node.untried = scored
            return tree_node.untried

        for _ in range(settings.mcts_iterations):
            ctx.maybe_stall()
            if ctx.out_of_time():
                break
            ctx.iterations += 1
            ctx.virtual_seconds += settings.per_vertex_seconds
            # Selection with progressive widening: a node may hold at
            # most ~sqrt(visits) expanded children, so the budget deepens
            # along strong lines (the planted seed chains included)
            # instead of fanning the root out breadth-first.
            tree_node = root
            path = [root]
            expand_here = False
            while True:
                untried = proposals(tree_node)
                width = 1 + int(math.sqrt(tree_node.visits))
                if untried and len(tree_node.children) < width:
                    expand_here = True
                    break
                if not tree_node.children:
                    break  # exhausted leaf
                log_n = math.log(tree_node.visits + 1.0)
                best = None
                best_score = -math.inf
                for child in tree_node.children:
                    if child.visits:
                        score = (
                            child.value_sum / child.visits
                            + exploration * math.sqrt(log_n / child.visits)
                        )
                    else:
                        score = math.inf
                    if score > best_score:
                        best_score = score
                        best = child
                tree_node = best
                path.append(tree_node)
            # Expansion: promote one untried child to the tree —
            # best-first with a seeded jitter over the score-sorted
            # head, so strong siblings all get explored without the
            # pool degenerating to a fixed order.
            cursor = tree_node.node
            if expand_here:
                untried = proposals(tree_node)
                if untried:
                    _, child_node = untried.pop(
                        rng.randrange(min(3, len(untried)))
                        if rng.random() < 0.5
                        else rng.randrange(len(untried))
                    )
                    child_tree = _TreeNode(child_node)
                    tree_node.children.append(child_tree)
                    tree_nodes += 1
                    path.append(child_tree)
                    cursor = child_node
            # Rollout: a short utility-guided ε-greedy walk below the
            # new node — score the head of the distance-ranked proposal
            # list with the solver-free walk score, usually follow the
            # best, sometimes a random sibling.  Every candidate met on
            # the way is a potential incumbent.
            pending = [cursor] if cursor.is_candidate else []
            with _phases.phase("rollout"):
                for _ in range(rollout_depth):
                    if ctx.out_of_time():
                        break
                    if len(cursor.actions) >= max_depth:
                        break
                    ranked = ctx.ranked_actions(cursor)
                    if not ranked:
                        break
                    proposals_now = ranked[:_ROLLOUT_WIDTH] + [
                        pair for pair in ranked[_ROLLOUT_WIDTH:] if not pair[1]
                    ]
                    children = []
                    for action, delta in proposals_now:
                        child = ctx.make_child(cursor, action, delta)
                        if child is None:
                            continue
                        if child.is_candidate:
                            pending.append(child)
                        children.append(child)
                    if not children:
                        break
                    ctx.prewarm(children)
                    scored = [
                        (ctx.walk_score(child), child) for child in children
                    ]
                    rollout_steps += 1
                    if rng.random() < _ROLLOUT_GREED:
                        cursor = max(scored, key=lambda pair: pair[0])[1]
                    else:
                        cursor = scored[rng.randrange(len(scored))][1]
            # Evaluate the rollout's candidates (batched through
            # ``solve_batch`` when several are cold) and back the best
            # normalized reward up the selection path.
            best_seen = -math.inf
            if pending:
                ctx.prewarm(pending)
                with _phases.phase("score"):
                    for node in pending:
                        value = ctx.offer(node)
                        if value > best_seen:
                            best_seen = value
            if best_seen == -math.inf:
                best_seen = ctx.walk_score(cursor)
            reward = (best_seen - ctx.null_value) / ctx.scale
            if reward > 1.0:
                reward = 1.0
            elif reward < -1.0:
                reward = -1.0
            for visited in path:
                visited.visits += 1
                visited.value_sum += reward
        polish_passes = ctx.polish()
        return ctx.finish(
            self.name,
            {
                "rollout_steps": rollout_steps,
                "tree_nodes": tree_nodes,
                "polish_passes": polish_passes,
            },
        )


class AnnealingStrategy(SearchStrategy):
    """Seeded simulated-annealing walk over action chains (anytime)."""

    name = "annealing"

    def run(
        self,
        search,
        current,
        workloads,
        control_window,
        *,
        expected_utility=None,
        expected_rate=None,
        settings_override=None,
    ) -> SearchOutcome:
        settings = (
            search.settings if settings_override is None else settings_override
        )
        ctx = _WalkContext(search, current, workloads, control_window, settings)
        if ctx.ideal.configuration == current:
            return ctx.finish(self.name, optimal=True, early_return=True)
        chains = ctx.seed_plans()
        rng = ctx.rng
        max_depth = ctx.depth_limit
        temperature = settings.annealing_initial_temperature
        cooling = settings.annealing_cooling
        restart_after = settings.annealing_restart_interval
        # The walk compares positions on one consistent scale — the
        # solver-free walk score (Eq. 3 bound minus the A*'s guidance
        # potential); candidates are offered to the incumbent as a side
        # effect, with their exact batched/delta steady values.
        #
        # Restart anchor: the best-scoring node seen so far — seeded
        # with the planner's direct chains, so the walk starts in the
        # neighborhood of the direct route to the ideal.
        best_node = ctx.root
        best_node_score = ctx.walk_score(ctx.root)
        for chain in chains:
            for node in chain:
                score = ctx.walk_score(node)
                if score > best_node_score:
                    best_node, best_node_score = node, score
        cursor, cursor_score = best_node, best_node_score
        accepted = 0
        restarts = 0
        rejects = 0
        for _ in range(settings.annealing_iterations):
            ctx.maybe_stall()
            if ctx.out_of_time():
                break
            ctx.iterations += 1
            ctx.virtual_seconds += settings.per_vertex_seconds
            if len(cursor.actions) >= max_depth:
                cursor, cursor_score = best_node, best_node_score
                restarts += 1
                rejects = 0
            ranked = ctx.ranked_actions(cursor)
            if not ranked:
                if cursor is ctx.root:
                    break  # nowhere to move at all
                cursor, cursor_score = ctx.root, ctx.walk_score(ctx.root)
                restarts += 1
                continue
            action, delta = ranked[rng.randrange(len(ranked))]
            with _phases.phase("score"):
                child = ctx.make_child(cursor, action, delta)
                if child is None:
                    child_score = None
                else:
                    child_score = ctx.walk_score(child)
                    if child.is_candidate:
                        ctx.offer(child)
                    if child_score > best_node_score:
                        best_node, best_node_score = child, child_score
            temperature *= cooling
            if child_score is None:
                rejects += 1
            else:
                gain = child_score - cursor_score
                if gain >= 0.0 or rng.random() < math.exp(
                    gain / max(temperature * ctx.scale, 1e-12)
                ):
                    cursor, cursor_score = child, child_score
                    accepted += 1
                    rejects = 0
                else:
                    rejects += 1
            if rejects >= restart_after:
                cursor, cursor_score = best_node, best_node_score
                restarts += 1
                rejects = 0
        polish_passes = ctx.polish()
        return ctx.finish(
            self.name,
            {
                "accepted_moves": accepted,
                "restarts": restarts,
                "polish_passes": polish_passes,
            },
        )


_REGISTRY: dict[str, SearchStrategy] = {
    strategy.name: strategy
    for strategy in (AStarStrategy(), MctsStrategy(), AnnealingStrategy())
}


def resolve_strategy(value: Optional[str]) -> SearchStrategy:
    """The strategy singleton for a ``SearchSettings.strategy`` value
    (``None`` resolves through ``MISTRAL_SEARCH_STRATEGY``)."""
    return _REGISTRY[resolve_strategy_name(value)]
