"""Multi-level controller hierarchy (paper §II-C, §V-E).

Lower-level controllers manage small host subsets with narrow (zero)
workload bands and only the quick actions — CPU tuning and migrations
within their subset — so they are invoked every monitoring interval and
decide fast.  The higher-level controller watches the whole system with
a wide band (8 req/s in the paper) and wields all six actions.  On each
monitoring sample the hierarchy gives the high-level controller first
claim (its escape means the workload really moved); otherwise each
low-level controller may issue a local refinement.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.core.config import Configuration
from repro.core.controller import Decision, MistralController
from repro.telemetry import runtime as _telemetry


@dataclass(frozen=True)
class ControllerScope:
    """Declarative description of one controller's remit."""

    name: str
    level: int
    host_ids: tuple[str, ...]
    band_width: float
    all_actions: bool


class ControllerHierarchy:
    """Mistral deployed as a multi-level control scheme."""

    def __init__(
        self,
        level1: Sequence[MistralController],
        level2: MistralController,
        parallel_workers: Optional[int] = None,
    ) -> None:
        if not level1:
            raise ValueError("hierarchy needs at least one 1st-level controller")
        if parallel_workers is not None and parallel_workers < 1:
            raise ValueError("parallel_workers must be >= 1 (or None)")
        self.level1 = list(level1)
        self.level2 = level2
        #: Optional online model-feedback calibration shared by all
        #: controllers in the hierarchy (wired by the scenario builder).
        self.feedback = None
        #: ``>= 2`` plans the 1st-level controllers concurrently on a
        #: persistent thread pool (see :meth:`on_sample` for the
        #: semantics); ``None``/``1`` keeps the sequential chain.
        self.parallel_workers = parallel_workers
        self._level1_pool: Optional[ThreadPoolExecutor] = None

    def _concurrent_level1(self) -> bool:
        return (
            self.parallel_workers is not None
            and self.parallel_workers > 1
            and len(self.level1) > 1
        )

    def _pool(self) -> ThreadPoolExecutor:
        if self._level1_pool is None:
            self._level1_pool = ThreadPoolExecutor(
                max_workers=min(self.parallel_workers, len(self.level1)),
                thread_name_prefix="mistral-l1",
            )
        return self._level1_pool

    def shutdown_parallel(self) -> None:
        """Release the L1 thread pool and every search's worker pool."""
        if self._level1_pool is not None:
            self._level1_pool.shutdown(wait=True)
            self._level1_pool = None
        for controller in self.controllers():
            controller.shutdown_parallel()

    def controllers(self) -> list[MistralController]:
        """All controllers, level 2 first."""
        return [self.level2, *self.level1]

    def record_interval_utility(self, utility: float) -> None:
        """Broadcast the measured interval utility to every controller."""
        for controller in self.controllers():
            controller.record_interval_utility(utility)

    def record_measurements(
        self,
        workloads,
        measured_response_times,
        configuration,
    ) -> None:
        """Feed measured response times to the shared feedback loop."""
        self.level2.record_measurements(
            workloads, measured_response_times, configuration
        )

    def enable_resilience(self, settings=None) -> None:
        """Attach the degradation ladder to every controller."""
        for controller in self.controllers():
            controller.enable_resilience(settings)

    def record_execution_fault(self, now: float, kind: str) -> None:
        """Broadcast one execution fault to every controller's ladder."""
        for controller in self.controllers():
            controller.record_execution_fault(now, kind)

    def charge_fault_cost(self, wasted_utility: float) -> None:
        """Charge an aborted plan's wasted utility (2nd level only —
        it owns the global Eq. 3 budget)."""
        self.level2.charge_fault_cost(wasted_utility)

    def request_replan(self, reason: str = "") -> None:
        """Ask the 2nd-level controller to re-plan at the next sample."""
        self.level2.request_replan(reason)

    def on_sample(
        self,
        now: float,
        workloads: Mapping[str, float],
        configuration: Configuration,
        busy: bool = False,
    ) -> list[Decision]:
        """Process one monitoring sample through the hierarchy.

        Returns the decisions to execute, in order.  The 2nd-level
        controller goes first; if it issues a non-null plan the
        1st-level controllers stand down for this sample (they will
        refine the new configuration on subsequent samples, as in the
        paper).  All controllers still observe the sample so their
        bands and ARMA filters stay current.
        """
        decisions: list[Decision] = []
        top = self.level2.on_sample(now, workloads, configuration, busy)
        top_acted = top is not None and not top.is_null
        if top is not None and not top.is_null:
            decisions.append(top)

        if self._concurrent_level1():
            # Concurrent variant: every 1st-level controller plans
            # against the *same* sampled configuration (their host
            # scopes are disjoint, so the local refinements cannot
            # conflict), and the decisions merge in controller order.
            # This deliberately diverges from the sequential chain
            # below, where controller i+1 already sees controller i's
            # final configuration: the chained estimates differ only
            # outside controller i+1's scope, but utilities are global,
            # so concurrent decisions are not guaranteed bit-identical
            # to sequential ones — which is why concurrency is opt-in
            # per hierarchy, never a silent default.
            busy_now = busy or top_acted
            pool = self._pool()
            futures = [
                pool.submit(
                    controller.on_sample,
                    now,
                    workloads,
                    configuration,
                    busy_now,
                )
                for controller in self.level1
            ]
            results = [future.result() for future in futures]
            if _telemetry.enabled:
                _telemetry.registry.counter("parallel.hierarchy_rounds").inc()
                _telemetry.tracer.event(
                    "parallel.hierarchy_round",
                    controllers=len(self.level1),
                    workers=min(self.parallel_workers, len(self.level1)),
                    t_sim=now,
                )
            for decision in results:
                if decision is not None and not decision.is_null:
                    decisions.append(decision)
            return decisions

        state = configuration
        for controller in self.level1:
            decision = controller.on_sample(
                now,
                workloads,
                state,
                busy=busy or top_acted,
            )
            if decision is not None and not decision.is_null:
                decisions.append(decision)
                state = decision.outcome.final_configuration
        return decisions

    def mean_search_seconds(self) -> dict[str, float]:
        """Average decision delay per level (Table I rows)."""
        level1_times = [
            seconds
            for controller in self.level1
            for seconds in controller.stats.search_seconds
        ]
        level2_times = list(self.level2.stats.search_seconds)
        every = level1_times + level2_times
        return {
            "level1": (
                sum(level1_times) / len(level1_times) if level1_times else 0.0
            ),
            "level2": (
                sum(level2_times) / len(level2_times) if level2_times else 0.0
            ),
            "overall": sum(every) / len(every) if every else 0.0,
        }
