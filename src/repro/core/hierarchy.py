"""Multi-level controller hierarchy (paper §II-C, §V-E).

Lower-level controllers manage small host subsets with narrow (zero)
workload bands and only the quick actions — CPU tuning and migrations
within their subset — so they are invoked every monitoring interval and
decide fast.  The higher-level controller watches the whole system with
a wide band (8 req/s in the paper) and wields all six actions.  On each
monitoring sample the hierarchy gives the high-level controller first
claim (its escape means the workload really moved); otherwise each
low-level controller may issue a local refinement.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.checkpoint.snapshot import (
    CheckpointError,
    reconcile,
    restore_level2,
)
from repro.core.config import Configuration
from repro.core.controller import ControllerStats, Decision, MistralController
from repro.faults.degradation import DegradationLadder
from repro.telemetry import runtime as _telemetry


@dataclass(frozen=True)
class ControllerScope:
    """Declarative description of one controller's remit."""

    name: str
    level: int
    host_ids: tuple[str, ...]
    band_width: float
    all_actions: bool


class ControllerHierarchy:
    """Mistral deployed as a multi-level control scheme."""

    def __init__(
        self,
        level1: Sequence[MistralController],
        level2: MistralController,
        parallel_workers: Optional[int] = None,
    ) -> None:
        if not level1:
            raise ValueError("hierarchy needs at least one 1st-level controller")
        if parallel_workers is not None and parallel_workers < 1:
            raise ValueError("parallel_workers must be >= 1 (or None)")
        self.level1 = list(level1)
        self.level2 = level2
        #: Optional online model-feedback calibration shared by all
        #: controllers in the hierarchy (wired by the scenario builder).
        self.feedback = None
        #: ``>= 2`` plans the 1st-level controllers concurrently on a
        #: persistent thread pool (see :meth:`on_sample` for the
        #: semantics); ``None``/``1`` keeps the sequential chain.
        self.parallel_workers = parallel_workers
        self._level1_pool: Optional[ThreadPoolExecutor] = None
        #: Snapshot store the failover path warm-starts from (wired by
        #: ``Testbed.run(checkpoint=...)`` or directly by the caller).
        self.checkpoint_store = None
        #: Simulation time until which the 2nd-level controller is down
        #: (``None`` while it is healthy — the default path, untouched).
        self._level2_down_until: Optional[float] = None
        #: The last checkpoint written *before* the crash, stashed at
        #: crash time: a restarted controller reads the snapshot its
        #: dead predecessor left behind, not one taken after the reset.
        self._failover_snapshot: Optional[dict] = None

    def _concurrent_level1(self) -> bool:
        return (
            self.parallel_workers is not None
            and self.parallel_workers > 1
            and len(self.level1) > 1
        )

    def _pool(self) -> ThreadPoolExecutor:
        if self._level1_pool is None:
            self._level1_pool = ThreadPoolExecutor(
                max_workers=min(self.parallel_workers, len(self.level1)),
                thread_name_prefix="mistral-l1",
            )
        return self._level1_pool

    def shutdown_parallel(self) -> None:
        """Release the L1 thread pool and every search's worker pool."""
        if self._level1_pool is not None:
            self._level1_pool.shutdown(wait=True)
            self._level1_pool = None
        for controller in self.controllers():
            controller.shutdown_parallel()

    def controllers(self) -> list[MistralController]:
        """All controllers, level 2 first."""
        return [self.level2, *self.level1]

    def record_interval_utility(self, utility: float) -> None:
        """Broadcast the measured interval utility to every controller."""
        for controller in self.controllers():
            controller.record_interval_utility(utility)

    def record_measurements(
        self,
        workloads,
        measured_response_times,
        configuration,
    ) -> None:
        """Feed measured response times to the shared feedback loop."""
        self.level2.record_measurements(
            workloads, measured_response_times, configuration
        )

    def enable_resilience(self, settings=None) -> None:
        """Attach the degradation ladder to every controller."""
        for controller in self.controllers():
            controller.enable_resilience(settings)

    def record_execution_fault(self, now: float, kind: str) -> None:
        """Broadcast one execution fault to every controller's ladder."""
        for controller in self.controllers():
            controller.record_execution_fault(now, kind)

    def charge_fault_cost(self, wasted_utility: float) -> None:
        """Charge an aborted plan's wasted utility (2nd level only —
        it owns the global Eq. 3 budget)."""
        self.level2.charge_fault_cost(wasted_utility)

    def request_replan(self, reason: str = "") -> None:
        """Ask the 2nd-level controller to re-plan at the next sample."""
        self.level2.request_replan(reason)

    # -- failover ---------------------------------------------------------

    def crash_controller(
        self, now: float, crash, fault_injector=None
    ) -> None:
        """Execute one scripted controller crash (testbed fault hook).

        Only the 2nd-level controller can crash: its in-memory state —
        ARMA history, band centers, utility accrual, ladder rung — is
        wiped to cold defaults, and it stays down until
        ``now + crash.restart_delay``.  The 1st-level controllers are
        untouched and keep planning their bands standalone.  The last
        checkpoint written before the crash (if a store is wired) is
        stashed now so the restart warm-starts from the state the dead
        process persisted, not from anything written afterwards.
        """
        victim = getattr(crash, "controller", "level2")
        if victim not in ("level2", self.level2.name):
            raise ValueError(
                f"unknown crash target {victim!r}; a hierarchy can only "
                f"crash 'level2' (aka {self.level2.name!r})"
            )
        self._failover_snapshot = None
        if self.checkpoint_store is not None and self.checkpoint_store.exists():
            try:
                self._failover_snapshot = self.checkpoint_store.load()
            except CheckpointError:
                self._failover_snapshot = None
        self._cold_reset_level2()
        self._level2_down_until = now + crash.restart_delay
        if fault_injector is not None:
            fault_injector.note_controller_crash()
        if _telemetry.enabled:
            _telemetry.registry.counter("failover.controller_crashes").inc()
            _telemetry.tracer.event(
                "failover.controller_crash",
                controller=self.level2.name,
                t_sim=now,
                down_until=self._level2_down_until,
                checkpoint_available=self._failover_snapshot is not None,
            )

    def _cold_reset_level2(self) -> None:
        """What a freshly exec'd controller process knows: nothing."""
        level2 = self.level2
        monitor = level2.monitor
        monitor._centers = None
        monitor._band_start = 0.0
        monitor.escapes.clear()
        estimator = monitor.estimator
        estimator._measurements.clear()
        estimator._errors.clear()
        estimator.trace = []
        level2.stats = ControllerStats()
        level2._recent_utilities.clear()
        level2._last_workloads = None
        level2._last_now = 0.0
        level2._fault_debt = 0.0
        level2._replan_requested = False
        if level2.resilience is not None:
            level2.resilience = DegradationLadder(level2.resilience.settings)

    def _restart_level2(self, now: float, configuration) -> None:
        """Bring the 2nd-level controller back, warm-starting from the
        stashed checkpoint and reconciling it against the live
        configuration before its first post-restart decision."""
        self._level2_down_until = None
        snapshot, self._failover_snapshot = self._failover_snapshot, None
        if snapshot is None:
            if _telemetry.enabled:
                _telemetry.tracer.event(
                    "failover.cold_start",
                    controller=self.level2.name,
                    t_sim=now,
                )
            return
        try:
            restore_level2(self, snapshot)
        except CheckpointError as error:
            if _telemetry.enabled:
                _telemetry.registry.counter("failover.restore_failures").inc()
                _telemetry.tracer.event(
                    "failover.restore_failed",
                    controller=self.level2.name,
                    t_sim=now,
                    error=str(error),
                )
            return
        report = reconcile(snapshot, configuration)
        if not report.clean:
            # The cluster drifted while the controller was down; its
            # restored planning assumptions are stale — force a re-plan
            # at the next sample (no-op without resilience).
            self.level2.request_replan("failover_reconciliation")
        if _telemetry.enabled:
            _telemetry.registry.counter("failover.restores").inc()
            _telemetry.tracer.event(
                "failover.restored",
                controller=self.level2.name,
                t_sim=now,
                snapshot_t_sim=snapshot.get("t_sim", 0.0),
                clean=report.clean,
                drift=report.drift_count(),
            )

    def on_sample(
        self,
        now: float,
        workloads: Mapping[str, float],
        configuration: Configuration,
        busy: bool = False,
    ) -> list[Decision]:
        """Process one monitoring sample through the hierarchy.

        Returns the decisions to execute, in order.  The 2nd-level
        controller goes first; if it issues a non-null plan the
        1st-level controllers stand down for this sample (they will
        refine the new configuration on subsequent samples, as in the
        paper).  All controllers still observe the sample so their
        bands and ARMA filters stay current.
        """
        decisions: list[Decision] = []
        if self._level2_down_until is not None:
            if now < self._level2_down_until:
                # The 2nd level is dead: 1st-level controllers keep
                # planning their bands standalone this sample.
                if _telemetry.enabled:
                    _telemetry.registry.counter(
                        "failover.samples_without_level2"
                    ).inc()
                top = None
            else:
                self._restart_level2(now, configuration)
                top = self.level2.on_sample(now, workloads, configuration, busy)
        else:
            top = self.level2.on_sample(now, workloads, configuration, busy)
        top_acted = top is not None and not top.is_null
        if top is not None and not top.is_null:
            decisions.append(top)

        if self._concurrent_level1():
            # Concurrent variant: every 1st-level controller plans
            # against the *same* sampled configuration (their host
            # scopes are disjoint, so the local refinements cannot
            # conflict), and the decisions merge in controller order.
            # This deliberately diverges from the sequential chain
            # below, where controller i+1 already sees controller i's
            # final configuration: the chained estimates differ only
            # outside controller i+1's scope, but utilities are global,
            # so concurrent decisions are not guaranteed bit-identical
            # to sequential ones — which is why concurrency is opt-in
            # per hierarchy, never a silent default.
            busy_now = busy or top_acted
            pool = self._pool()
            futures = [
                pool.submit(
                    controller.on_sample,
                    now,
                    workloads,
                    configuration,
                    busy_now,
                )
                for controller in self.level1
            ]
            results = [future.result() for future in futures]
            if _telemetry.enabled:
                _telemetry.registry.counter("parallel.hierarchy_rounds").inc()
                _telemetry.tracer.event(
                    "parallel.hierarchy_round",
                    controllers=len(self.level1),
                    workers=min(self.parallel_workers, len(self.level1)),
                    t_sim=now,
                )
            for decision in results:
                if decision is not None and not decision.is_null:
                    decisions.append(decision)
            return decisions

        state = configuration
        for controller in self.level1:
            decision = controller.on_sample(
                now,
                workloads,
                state,
                busy=busy or top_acted,
            )
            if decision is not None and not decision.is_null:
                decisions.append(decision)
                state = decision.outcome.final_configuration
        return decisions

    def mean_search_seconds(self) -> dict[str, float]:
        """Average decision delay per level (Table I rows)."""
        level1_times = [
            seconds
            for controller in self.level1
            for seconds in controller.stats.search_seconds
        ]
        level2_times = list(self.level2.stats.search_seconds)
        every = level1_times + level2_times
        return {
            "level1": (
                sum(level1_times) / len(level1_times) if level1_times else 0.0
            ),
            "level2": (
                sum(level2_times) / len(level2_times) if level2_times else 0.0
            ),
            "overall": sum(every) / len(every) if every else 0.0,
        }
