"""Multi-level controller hierarchy (paper §II-C, §V-E).

Lower-level controllers manage small host subsets with narrow (zero)
workload bands and only the quick actions — CPU tuning and migrations
within their subset — so they are invoked every monitoring interval and
decide fast.  The higher-level controller watches the whole system with
a wide band (8 req/s in the paper) and wields all six actions.  On each
monitoring sample the hierarchy gives the high-level controller first
claim (its escape means the workload really moved); otherwise each
low-level controller may issue a local refinement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.core.config import Configuration
from repro.core.controller import Decision, MistralController


@dataclass(frozen=True)
class ControllerScope:
    """Declarative description of one controller's remit."""

    name: str
    level: int
    host_ids: tuple[str, ...]
    band_width: float
    all_actions: bool


class ControllerHierarchy:
    """Mistral deployed as a multi-level control scheme."""

    def __init__(
        self,
        level1: Sequence[MistralController],
        level2: MistralController,
    ) -> None:
        if not level1:
            raise ValueError("hierarchy needs at least one 1st-level controller")
        self.level1 = list(level1)
        self.level2 = level2
        #: Optional online model-feedback calibration shared by all
        #: controllers in the hierarchy (wired by the scenario builder).
        self.feedback = None

    def controllers(self) -> list[MistralController]:
        """All controllers, level 2 first."""
        return [self.level2, *self.level1]

    def record_interval_utility(self, utility: float) -> None:
        """Broadcast the measured interval utility to every controller."""
        for controller in self.controllers():
            controller.record_interval_utility(utility)

    def record_measurements(
        self,
        workloads,
        measured_response_times,
        configuration,
    ) -> None:
        """Feed measured response times to the shared feedback loop."""
        self.level2.record_measurements(
            workloads, measured_response_times, configuration
        )

    def enable_resilience(self, settings=None) -> None:
        """Attach the degradation ladder to every controller."""
        for controller in self.controllers():
            controller.enable_resilience(settings)

    def record_execution_fault(self, now: float, kind: str) -> None:
        """Broadcast one execution fault to every controller's ladder."""
        for controller in self.controllers():
            controller.record_execution_fault(now, kind)

    def charge_fault_cost(self, wasted_utility: float) -> None:
        """Charge an aborted plan's wasted utility (2nd level only —
        it owns the global Eq. 3 budget)."""
        self.level2.charge_fault_cost(wasted_utility)

    def request_replan(self, reason: str = "") -> None:
        """Ask the 2nd-level controller to re-plan at the next sample."""
        self.level2.request_replan(reason)

    def on_sample(
        self,
        now: float,
        workloads: Mapping[str, float],
        configuration: Configuration,
        busy: bool = False,
    ) -> list[Decision]:
        """Process one monitoring sample through the hierarchy.

        Returns the decisions to execute, in order.  The 2nd-level
        controller goes first; if it issues a non-null plan the
        1st-level controllers stand down for this sample (they will
        refine the new configuration on subsequent samples, as in the
        paper).  All controllers still observe the sample so their
        bands and ARMA filters stay current.
        """
        decisions: list[Decision] = []
        top = self.level2.on_sample(now, workloads, configuration, busy)
        top_acted = top is not None and not top.is_null
        if top is not None and not top.is_null:
            decisions.append(top)

        state = configuration
        for controller in self.level1:
            decision = controller.on_sample(
                now,
                workloads,
                state,
                busy=busy or top_acted,
            )
            if decision is not None and not decision.is_null:
                decisions.append(decision)
                state = decision.outcome.final_configuration
        return decisions

    def mean_search_seconds(self) -> dict[str, float]:
        """Average decision delay per level (Table I rows)."""
        level1_times = [
            seconds
            for controller in self.level1
            for seconds in controller.stats.search_seconds
        ]
        level2_times = list(self.level2.stats.search_seconds)
        every = level1_times + level2_times
        return {
            "level1": (
                sum(level1_times) / len(level1_times) if level1_times else 0.0
            ),
            "level2": (
                sum(level2_times) / len(level2_times) if level2_times else 0.0
            ),
            "overall": sum(every) / len(every) if every else 0.0,
        }
