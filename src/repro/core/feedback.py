"""Online model-feedback calibration for Mistral.

Mistral is a feedback controller: the workload monitor delivers
measured response times and power every monitoring interval (paper
Fig. 2).  The predictor modules, however, are parameterized offline,
and a few percent of systematic model error is enough to park an
application permanently just above its response-time target while the
model insists the target is met.

:class:`ModelFeedback` closes the loop: it tracks the per-application
ratio of measured to predicted response time (EWMA) and exposes it as a
planning-target correction — if an application persistently runs 20%
slower than predicted, the controller plans against a 20% tighter
target for it.  This is an extension beyond the paper's text (the paper
never says how its deployment coped with residual model bias); it is
documented in DESIGN.md and can be disabled by simply not wiring it in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping


@dataclass
class ModelFeedback:
    """Per-application measured/predicted response-time bias."""

    #: EWMA smoothing weight of a new observation.
    smoothing: float = 0.3
    #: Clamp on a single observation's ratio (spikes during transients
    #: should not poison the estimate).
    observation_clamp: tuple[float, float] = (0.5, 2.0)
    #: Clamp on the resulting correction factor.
    factor_clamp: tuple[float, float] = (0.9, 1.5)
    _factors: dict[str, float] = field(default_factory=dict)
    #: Bumped on every update; estimator caches key on it.
    version: int = 0

    def observe(
        self,
        measured: Mapping[str, float],
        predicted: Mapping[str, float],
    ) -> None:
        """Fold one monitoring sample into the bias estimates."""
        low, high = self.observation_clamp
        changed = False
        for app, measured_rt in measured.items():
            predicted_rt = predicted.get(app)
            if predicted_rt is None or predicted_rt <= 0 or measured_rt <= 0:
                continue
            ratio = min(max(measured_rt / predicted_rt, low), high)
            current = self._factors.get(app, 1.0)
            updated = (1.0 - self.smoothing) * current + self.smoothing * ratio
            floor, ceiling = self.factor_clamp
            self._factors[app] = min(max(updated, floor), ceiling)
            changed = True
        if changed:
            self.version += 1

    def factor(self, app_name: str) -> float:
        """Current measured/predicted bias for one application (>= 0.9)."""
        return self._factors.get(app_name, 1.0)

    def corrected_target(self, app_name: str, base_target: float) -> float:
        """Planning target tightened by the app's bias factor."""
        return base_target / self.factor(app_name)
