"""The holistic optimization search (paper §IV-B, Algorithm 1).

Vertices are configurations, edges are adaptation actions, and the
search maximizes Eq. 3's overall utility over the control window: each
edge accrues ``d(a) * (U_RT(c, a) + U_pwr(c, a))`` — the transient
utility rates while the action runs, predicted by the Cost Manager —
and a vertex's priority is that accrued value plus a *cost-to-go* term.
For intermediate (constraint-violating) configurations the cost-to-go
is the ideal utility rate ``U*`` from the Perf-Pwr optimizer over the
remaining window — an over-estimate, hence an admissible heuristic —
while candidate configurations use their own estimated steady rate.
Popping a terminal ("null"-action) vertex therefore proves optimality.

The **Self-Aware** variant additionally meters the cost of deciding:
virtual search time ``T`` (expansions x per-vertex evaluation time),
the utility the *current* configuration accrues while the search runs
(``UT``), and the search's own power draw (``UpwrT``).  When the search
cost exhausts the expected utility ``UH`` or ``T`` exceeds the delay
threshold (5% of the control window), each expansion is pruned to the
top 5% of children by weighted-Euclidean distance to the ideal
configuration ``c*``.
"""

from __future__ import annotations

import heapq
import itertools
import math
import multiprocessing
import time
from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Sequence

import numpy as np

from repro.apps.application import ApplicationSet
from repro.core.actions import (
    ActionError,
    AdaptationAction,
    AddReplica,
    DecreaseCpu,
    IncreaseCpu,
    MigrateVm,
    NullAction,
    PowerOffHost,
    PowerOnHost,
    RemoveReplica,
    RoundDeltaResolver,
)
from repro.core.config import (
    Configuration,
    ConstraintLimits,
    Placement,
    VmCatalog,
    array_core_enabled,
)
from repro.core.rounds import (
    ArrayBasis,
    ArrayStatics,
    RoundPlan,
    _togo_vm_term,
    add_block,
    replica_tier_counts,
    vm_block,
)
from repro.core.estimator import SteadyEstimate, UtilityEstimator
from repro.core.perf_pwr import PerfPwrOptimizer, PerfPwrResult
from repro.core.planner import plan_transition
from repro.costmodel.manager import CostManager
from repro.parallel.batch import ScoreContext, column_sums
from repro.parallel.executors import (
    EXECUTOR_KINDS,
    SerialExecutor,
    make_executor,
    resolve_executor_kind,
)
from repro.parallel.runtime import default_workers
from repro.telemetry import phases as _phases
from repro.telemetry import runtime as _telemetry
from repro.telemetry.provenance import ProvenanceCollector, plan_breakdown

#: All action families the search may use.
ALL_ACTION_KINDS: frozenset[str] = frozenset(
    {
        "increase_cpu",
        "decrease_cpu",
        "migrate",
        "add_replica",
        "remove_replica",
        "power_on",
        "power_off",
    }
)

#: The cheap, local actions available to 1st-level controllers.
LOCAL_ACTION_KINDS: frozenset[str] = frozenset(
    {"increase_cpu", "decrease_cpu", "migrate"}
)

#: Pluggable search backends (DESIGN.md §14): the paper's exact A*
#: ("astar", the default), a seeded UCB-guided Monte-Carlo tree search
#: ("mcts"), and a seeded simulated-annealing walker ("annealing").
#: All three share the action-enumeration space, the incremental
#: evaluation machinery, and the SearchOutcome shape; only "astar"
#: proves optimality, while the stochastic backends are anytime.
STRATEGY_KINDS: tuple[str, ...] = ("astar", "mcts", "annealing")


@dataclass(frozen=True)
class SearchSettings:
    """Tuning knobs of the adaptation search."""

    #: Self-aware variant (search-cost accounting + pruning) vs naive A*.
    self_aware: bool = True
    #: Fraction of children kept once pruning activates (paper: top 5%).
    prune_fraction: float = 0.05
    #: Delay threshold as a fraction of the control window (paper: 5%).
    delay_threshold_fraction: float = 0.05
    #: The self-aware search commits to its best incumbent once the
    #: (virtual) search time exceeds this multiple of the delay
    #: threshold — pruning alone bounds width, this bounds depth.
    hard_stop_factor: float = 3.0
    #: Virtual decision-time accounting, in seconds: a fixed overhead
    #: per vertex expansion, a small charge per child configuration
    #: generated (apply + distance), and a larger charge per child
    #: fully evaluated (cost prediction + utility estimation).  Search
    #: durations are thus deterministic, platform-independent, and grow
    #: with the branching factor — which is how the naive search's
    #: duration blows up with system size (Table I) while the pruned
    #: self-aware search, which skips the evaluation of pruned
    #: children, stays nearly linear.
    per_vertex_seconds: float = 0.004
    per_child_apply_seconds: float = 0.0002
    per_child_eval_seconds: float = 0.0008
    #: Extra watts the controller host draws while searching (Fig. 10a:
    #: up to ~12% over a 60 W idle draw).
    search_watts_delta: float = 7.2
    #: Hard safety cap on expansions (returns best candidate so far).
    max_expansions: int = 4000
    #: Action families this controller may use.
    allowed_kinds: frozenset[str] = ALL_ACTION_KINDS
    #: CPU cap of newly added replicas.
    replica_cap: float = 0.2
    #: Safety cap on plan length (vertices deeper than this are not
    #: expanded further; they can still terminate as candidates).  Must
    #: exceed the longest useful reconfiguration (a full consolidation
    #: of ~20 VMs runs to roughly 30 actions including cap steps).
    max_plan_actions: int = 48
    #: Seed the open set with the direct transition plan to the ideal
    #: configuration (and its prefixes) before searching.
    seed_with_plan: bool = True
    #: Fraction of the (ideal - current) rate gap the cost-to-go is
    #: priced at.  0.5 is the trapezoidal estimate: the accrual rate
    #: improves from the current rate toward the ideal rate as the
    #: adaptation progresses, so pricing the remaining distance at the
    #: full initial gap would over-penalize partially adapted
    #: configurations and hide profitable partial plans.
    togo_discount: float = 0.5
    #: Weight of the distance-to-ideal guidance potential subtracted
    #: from the priority of *intermediate* vertices (terminals keep
    #: their true utility).  The admissible bound alone makes the
    #: search behave like Dijkstra over near-zero-cost cap-tuning edges
    #: — the exponential blowup the paper reports for the naive variant
    #: — so intermediates far from the ideal configuration are deflated
    #: by ``weight * remaining_window * |U*| * distance``, steering
    #: expansion toward the ideal while committing (terminal pops) only
    #: when a candidate's true Eq. 3 utility beats every deflated
    #: bound.  0 recovers the strictly admissible (naive) ordering.
    guidance_weight: float = 1.0
    #: Evaluate children incrementally: per-vertex delta state for
    #: distance/cost-to-go/feasibility and delta LQN solves chained off
    #: the parent's solver state.  Produces bit-identical outcomes to
    #: the full path (``False``), which re-derives every quantity from
    #: scratch per child and exists as the equivalence/benchmark
    #: baseline.
    incremental: bool = True
    #: Worker count for the parallel evaluation stage (DESIGN.md §11).
    #: ``None`` consults the ``MISTRAL_PARALLEL_WORKERS`` environment
    #: variable, and leaves the stage off when that is unset too.  Any
    #: value >= 1 routes expansion rounds through the batched scoring
    #: path (vectorized child evaluation + executor-dispatched cost
    #: prediction); outcomes are bit-identical to the serial path in
    #: every case.  Requires ``incremental`` (the batch path scores
    #: children from the per-vertex delta state).
    parallel_workers: Optional[int] = None
    #: Executor backing the worker pool: ``"auto"`` (forked processes
    #: on multi-core hosts, inline otherwise), ``"serial"``,
    #: ``"thread"``, or ``"process"``.
    parallel_executor: str = "auto"
    #: Maximum configurations per batched LQN solve when pre-warming
    #: candidate steady estimates (``LqnSolver.solve_batch``).
    batch_size: int = 64
    #: Watchdog deadline on *measured* search wall time, in seconds.
    #: ``None`` (the default) leaves the watchdog off and the search
    #: path untouched.  When set, the expansion loop checks the clock
    #: cooperatively once per expansion and executor rounds run under a
    #: hard timer for the remaining budget; on expiry the search aborts
    #: to its best incumbent (or the null plan) and flags the outcome
    #: ``deadline_aborted``.  Unlike the virtual Eq. 3 accounting, this
    #: bound is wall-clock by design — it exists to stop a *real*
    #: runaway search — so deadline-aborted outcomes are inherently
    #: platform-dependent and the watchdog is opt-in.
    deadline_seconds: Optional[float] = None
    #: Array-native expansion core (DESIGN.md §13): encode each round's
    #: actions as numeric column blocks and run ranking, constraint
    #: filtering and child scoring as matrix kernels, materializing
    #: ``Configuration`` objects only for candidate children and popped
    #: vertices.  ``None`` consults the ``MISTRAL_ARRAY_CORE``
    #: environment variable (on unless set falsy).  Requires
    #: ``incremental``; outcomes are bit-identical to the scalar path.
    array_core: Optional[bool] = None
    #: Search backend (DESIGN.md §14): one of :data:`STRATEGY_KINDS`.
    #: ``None`` consults the ``MISTRAL_SEARCH_STRATEGY`` environment
    #: variable and falls back to ``"astar"`` — the pre-refactor exact
    #: A* loop, bit-identical to its un-extracted form.  ``"mcts"`` and
    #: ``"annealing"`` are seeded anytime backends: deterministic under
    #: a fixed ``strategy_seed``, they keep a feasible incumbent at all
    #: times and return it on any abort (deadline watchdog included).
    strategy: Optional[str] = None
    #: Seed of the stochastic backends' private RNG.  Two searches with
    #: the same seed, inputs and knobs make identical decisions; the
    #: exact A* ignores it.
    strategy_seed: int = 0
    #: Proposal width of the stochastic walkers: each step considers
    #: only the ``walker_branch_limit`` enumerated actions closest to
    #: the ideal configuration (weighted-Euclidean distance — the same
    #: ranking the self-aware prune uses).
    walker_branch_limit: int = 16
    #: MCTS simulation budget per search.  The search "completes" (is
    #: not deadline-aborted) when this budget is exhausted before the
    #: watchdog fires.
    mcts_iterations: int = 192
    #: UCB1 exploration constant, in units of the normalized reward
    #: (0 = pure exploitation).
    mcts_exploration: float = 0.7
    #: Random-rollout depth below each newly expanded tree node.
    mcts_rollout_depth: int = 4
    #: Annealing step budget per search.  A step is one proposed child
    #: (cheap next to an MCTS iteration's scored rollout), so the
    #: budget is correspondingly larger.
    annealing_iterations: int = 2400
    #: Initial temperature, as a fraction of the search's utility scale
    #: (the ideal-vs-null utility gap over the window).
    annealing_initial_temperature: float = 0.35
    #: Geometric cooling factor applied once per step (the default
    #: reaches ~10% of the initial temperature over the default step
    #: budget).
    annealing_cooling: float = 0.999
    #: Consecutive rejected/inapplicable moves before the walker
    #: teleports back to its best incumbent (anytime restarts).
    annealing_restart_interval: int = 60
    #: Supervised-pool respawns the search may attempt per run when a
    #: parallel executor fails (worker killed, pool died, stale fork)
    #: before pinning itself to the serial path permanently.
    executor_respawn_limit: int = 2
    #: Base of the exponential backoff slept before respawn attempt N
    #: (``base * 2**(N-1)`` seconds).  0 disables the sleep (tests).
    executor_respawn_backoff_seconds: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 < self.prune_fraction <= 1.0:
            raise ValueError("prune_fraction must be in (0, 1]")
        if self.per_vertex_seconds <= 0:
            raise ValueError("per_vertex_seconds must be positive")
        if self.max_expansions < 1:
            raise ValueError("max_expansions must be >= 1")
        if self.parallel_workers is not None and self.parallel_workers < 1:
            raise ValueError("parallel_workers must be >= 1 (or None)")
        if self.parallel_executor not in EXECUTOR_KINDS:
            raise ValueError(
                f"parallel_executor must be one of {EXECUTOR_KINDS}"
            )
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be positive (or None)")
        if self.strategy is not None and self.strategy not in STRATEGY_KINDS:
            raise ValueError(
                f"strategy must be one of {STRATEGY_KINDS} (or None)"
            )
        if self.walker_branch_limit < 1:
            raise ValueError("walker_branch_limit must be >= 1")
        if self.mcts_iterations < 1:
            raise ValueError("mcts_iterations must be >= 1")
        if self.mcts_exploration < 0:
            raise ValueError("mcts_exploration must be >= 0")
        if self.mcts_rollout_depth < 0:
            raise ValueError("mcts_rollout_depth must be >= 0")
        if self.annealing_iterations < 1:
            raise ValueError("annealing_iterations must be >= 1")
        if self.annealing_initial_temperature <= 0:
            raise ValueError("annealing_initial_temperature must be positive")
        if not 0.0 < self.annealing_cooling <= 1.0:
            raise ValueError("annealing_cooling must be in (0, 1]")
        if self.annealing_restart_interval < 1:
            raise ValueError("annealing_restart_interval must be >= 1")
        if self.executor_respawn_limit < 0:
            raise ValueError("executor_respawn_limit must be >= 0")
        if self.executor_respawn_backoff_seconds < 0:
            raise ValueError(
                "executor_respawn_backoff_seconds must be >= 0"
            )


@dataclass
class SearchOutcome:
    """Result of one adaptation search."""

    actions: tuple[AdaptationAction, ...]
    final_configuration: Configuration
    predicted_utility: float
    ideal: PerfPwrResult
    expansions: int
    decision_seconds: float
    wall_seconds: float
    pruning_activated: bool
    optimal: bool
    #: Wall/CPU seconds spent inside executor dispatch (0.0 when the
    #: parallel stage is off).  Counted *inside* ``wall_seconds`` —
    #: pool overhead is part of the cost of deciding, never hidden —
    #: and excluded from the bit-identity contract along with
    #: ``wall_seconds`` (the only measured, platform-dependent fields).
    pool_wall_seconds: float = 0.0
    pool_cpu_seconds: float = 0.0
    #: The watchdog expired mid-search and the outcome is the best
    #: incumbent found before the deadline (still a valid, executable
    #: plan — possibly null).  Always ``False`` when
    #: ``SearchSettings.deadline_seconds`` is unset.
    deadline_aborted: bool = False
    #: :class:`~repro.telemetry.provenance.DecisionProvenance` when
    #: telemetry + provenance collection were on for this search, else
    #: ``None``.  Observational only — excluded from the bit-identity
    #: contract along with the measured wall fields.
    provenance: Optional[object] = None
    #: Name of the :data:`STRATEGY_KINDS` backend that produced this
    #: outcome (set by the dispatching ``AdaptationSearch.search``).
    strategy: str = "astar"

    @property
    def is_null(self) -> bool:
        """Whether the search decided to keep the current configuration."""
        return not self.actions


@dataclass(slots=True)
class _Vertex:
    """One search vertex (slotted: one search allocates tens of
    thousands of these, and the per-instance dict is pure overhead)."""

    #: None only for array-core lazy children (see ``pending_config``).
    configuration: Optional[Configuration]
    actions: tuple[AdaptationAction, ...]
    accrued: float  # sum of d(a) * transient utility rate
    elapsed: float  # sum of action durations D
    utility: float = 0.0  # true value: bound (intermediate) or Eq. 3 (terminal)
    priority: float = 0.0  # heap ordering: utility minus guidance potential
    distance: float = 0.0  # weighted-Euclidean distance to the ideal config
    terminal: bool = False
    is_candidate: bool = False
    #: Incremental-mode delta state (None when incremental is off).
    state: "Optional[_VertexState]" = None
    #: Lazy state for batch-built children: ``(parent_state, delta)``
    #: materialized into ``state`` only if the vertex is ever expanded
    #: (most children never are — ~1% of generated vertices get popped).
    pending: Optional[tuple] = None
    #: Lineage for delta utility estimation: the configuration this
    #: vertex was derived from and the VMs its action changed.
    parent_configuration: Optional[Configuration] = None
    changed_vms: frozenset[str] = frozenset()
    #: Array-core dedup key (the codec's byte image of the
    #: configuration; None on the scalar path).  Byte equality is
    #: configuration equality, so the open-set bookkeeping can run on
    #: keys while ``configuration`` stays lazy.
    key: Optional[bytes] = None
    #: Array-core lazy configuration: ``(parent_configuration, delta)``
    #: materialized only if the vertex is ever popped for expansion
    #: (``configuration`` is None until then; candidates — whose
    #: terminal twins need the real object — are built eagerly).
    pending_config: Optional[tuple] = None


#: Sentinel distinguishing "no source-host edit" from "source host
#: emptied" (None) in the single-edit candidacy fast path.
_ABSENT = object()

#: Bound on the enumeration sublist cache (an AdaptationSearch reused
#: across many searches would otherwise accumulate stale keys forever).
_ROUND_ACTION_CACHE_LIMIT = 50_000


@dataclass
class _VertexState:
    """Per-vertex decomposed terms enabling O(changed VMs) child updates.

    The scalar quantities the search needs per child — distance to the
    ideal, cost-to-go seconds, feasibility — are all sums/counts of
    independent per-VM or per-host terms.  Storing the terms lets a
    child recompute only the entries its action touched and re-reduce;
    reductions run in the same canonical order as the full-path code,
    so the results are bit-identical (float addition of the same
    operands in the same order is deterministic).

    States are immutable by convention: children copy-and-replace, and
    actions touching no VM (null, host power) share the parent's state.
    """

    #: weights[i] * (cap - ideal_cap)**2 per catalog index.
    cap_terms: list[float]
    #: 1 if the VM sits on its ideal host (dormant matching dormant
    #: counts), else 0, per catalog index.
    host_matches: list[int]
    #: Cost-to-go seconds per catalog index (placement terms only; the
    #: host power terms are cheap set-diffs computed per vertex).
    togo_terms: list[float]
    #: Per used host: (sum of caps re-rounded onto the decimal grid the
    #: way ``Configuration.host_cpu_load`` does, guest MB, VM count) —
    #: one dict instead of three so children copy one.
    hosts: dict[str, tuple[float, int, int]]
    #: Number of used hosts violating any per-host constraint.
    bad_hosts: int
    #: Placed VMs whose cap is below the per-VM minimum.
    bad_vms: frozenset[str]


class _SearchBasis:
    """Per-search constants for the incremental vertex evaluation."""

    __slots__ = (
        "limits",
        "durations",
        "vm_ids",
        "index",
        "tiers",
        "memory",
        "weights",
        "ideal_caps",
        "ideal_placements",
        "ideal_hosts",
        "ideal_powered",
        "total",
    )

    def __init__(
        self,
        catalog: VmCatalog,
        limits: ConstraintLimits,
        ideal_configuration: Configuration,
        weights: Mapping[str, float],
        ideal_caps: Mapping[str, float],
        durations: Mapping[tuple[str, str], float],
    ) -> None:
        self.limits = limits
        self.durations = durations
        self.vm_ids = catalog.vm_ids()
        self.index = {vm_id: i for i, vm_id in enumerate(self.vm_ids)}
        self.tiers = tuple(
            catalog.get(vm_id).tier_name for vm_id in self.vm_ids
        )
        self.memory = {
            vm_id: catalog.get(vm_id).memory_mb for vm_id in self.vm_ids
        }
        self.weights = tuple(weights[vm_id] for vm_id in self.vm_ids)
        self.ideal_caps = tuple(
            ideal_caps.get(vm_id, 0.0) for vm_id in self.vm_ids
        )
        self.ideal_placements = tuple(
            ideal_configuration.placement_of(vm_id) for vm_id in self.vm_ids
        )
        self.ideal_hosts = tuple(
            placement.host_id if placement is not None else None
            for placement in self.ideal_placements
        )
        self.ideal_powered = ideal_configuration.powered_hosts
        self.total = len(self.vm_ids)

    def _host_bad(self, cpu: float, mem: int, vms: int) -> bool:
        limits = self.limits
        return (
            cpu > limits.max_total_cpu_cap + 1e-9
            or mem > limits.guest_memory_mb
            or vms > limits.max_vms_per_host
        )

    def full_state(self, configuration: Configuration) -> _VertexState:
        """Decompose a configuration from scratch (root vertices)."""
        limits = self.limits
        step = limits.cpu_cap_step
        cap_terms: list[float] = []
        host_matches: list[int] = []
        togo_terms: list[float] = []
        for i, vm_id in enumerate(self.vm_ids):
            placement = configuration.placement_of(vm_id)
            cap = placement.cpu_cap if placement is not None else 0.0
            cap_terms.append(self.weights[i] * (cap - self.ideal_caps[i]) ** 2)
            host = placement.host_id if placement is not None else None
            host_matches.append(1 if host == self.ideal_hosts[i] else 0)
            togo_terms.append(
                _togo_vm_term(
                    placement,
                    self.ideal_placements[i],
                    self.tiers[i],
                    self.durations,
                    step,
                    limits.min_vm_cpu_cap,
                )
            )
        hosts: dict[str, tuple[float, int, int]] = {}
        bad_vm_list: list[str] = []
        for vm_id, placement in configuration.placement_items():
            host = placement.host_id
            entry = hosts.get(host)
            if entry is None:
                hosts[host] = (
                    round(placement.cpu_cap, 10),
                    self.memory[vm_id],
                    1,
                )
            else:
                hosts[host] = (
                    round(entry[0] + placement.cpu_cap, 10),
                    entry[1] + self.memory[vm_id],
                    entry[2] + 1,
                )
            if placement.cpu_cap < limits.min_vm_cpu_cap - 1e-9:
                bad_vm_list.append(vm_id)
        bad_hosts = sum(
            1 for entry in hosts.values() if self._host_bad(*entry)
        )
        return _VertexState(
            cap_terms=cap_terms,
            host_matches=host_matches,
            togo_terms=togo_terms,
            hosts=hosts,
            bad_hosts=bad_hosts,
            bad_vms=frozenset(bad_vm_list),
        )

    def child_state(
        self,
        parent_configuration: Configuration,
        state: _VertexState,
        delta: tuple,
    ) -> _VertexState:
        """Parent state advanced past one action, in O(|delta|).

        ``delta`` is the action's :meth:`placement_delta` — the child's
        placements are read straight from it, so the child configuration
        is never consulted.
        """
        if not delta:
            return state  # null/host-power actions move no VM
        limits = self.limits
        step = limits.cpu_cap_step
        cap_terms = state.cap_terms.copy()
        host_matches = state.host_matches.copy()
        togo_terms = state.togo_terms.copy()
        hosts = state.hosts.copy()
        bad_hosts = state.bad_hosts
        bad_vms = state.bad_vms
        for vm_id, new in delta:
            i = self.index[vm_id]
            old = parent_configuration.placement_of(vm_id)
            cap = new.cpu_cap if new is not None else 0.0
            cap_terms[i] = self.weights[i] * (cap - self.ideal_caps[i]) ** 2
            host = new.host_id if new is not None else None
            host_matches[i] = 1 if host == self.ideal_hosts[i] else 0
            togo_terms[i] = _togo_vm_term(
                new,
                self.ideal_placements[i],
                self.tiers[i],
                self.durations,
                step,
                limits.min_vm_cpu_cap,
            )
            if old is not None:
                src = old.host_id
                entry = hosts[src]
                was_bad = self._host_bad(*entry)
                remaining = entry[2] - 1
                if remaining == 0:
                    del hosts[src]
                    bad_hosts -= was_bad
                else:
                    entry = (
                        round(entry[0] - old.cpu_cap, 10),
                        entry[1] - self.memory[vm_id],
                        remaining,
                    )
                    hosts[src] = entry
                    bad_hosts += self._host_bad(*entry) - was_bad
            if new is not None:
                dst = new.host_id
                entry = hosts.get(dst)
                if entry is not None:
                    was_bad = self._host_bad(*entry)
                    entry = (
                        round(entry[0] + new.cpu_cap, 10),
                        entry[1] + self.memory[vm_id],
                        entry[2] + 1,
                    )
                else:
                    was_bad = False
                    entry = (
                        round(new.cpu_cap, 10),
                        self.memory[vm_id],
                        1,
                    )
                hosts[dst] = entry
                bad_hosts += self._host_bad(*entry) - was_bad
            under_cap = new is not None and (
                new.cpu_cap < limits.min_vm_cpu_cap - 1e-9
            )
            if under_cap != (vm_id in bad_vms):
                bad_vms = (
                    bad_vms | {vm_id} if under_cap else bad_vms - {vm_id}
                )
        return _VertexState(
            cap_terms=cap_terms,
            host_matches=host_matches,
            togo_terms=togo_terms,
            hosts=hosts,
            bad_hosts=bad_hosts,
            bad_vms=bad_vms,
        )

    def distance(self, state: _VertexState) -> float:
        """Bit-identical to ``AdaptationSearch._distance``: the terms
        are re-summed in catalog order from the same 0 start."""
        cap_term = sum(state.cap_terms)
        matches = sum(state.host_matches)
        total = self.total
        placement_term = 1.0 - (matches / total if total else 1.0)
        return math.sqrt(cap_term) + placement_term

    def child_distance(
        self,
        state: _VertexState,
        delta: tuple,
    ) -> float:
        """Distance of a child, bit-identical to
        ``distance(child_state(...))`` but computed straight from an
        action's placement delta — pruned expansions rank every
        reachable child by distance and keep only a few, so neither the
        child configuration nor its state is built for the discards."""
        if not delta:
            return self.distance(state)
        cap_terms = state.cap_terms.copy()
        host_matches = state.host_matches.copy()
        for vm_id, new in delta:
            i = self.index[vm_id]
            cap = new.cpu_cap if new is not None else 0.0
            cap_terms[i] = self.weights[i] * (cap - self.ideal_caps[i]) ** 2
            host = new.host_id if new is not None else None
            host_matches[i] = 1 if host == self.ideal_hosts[i] else 0
        cap_term = sum(cap_terms)
        matches = sum(host_matches)
        total = self.total
        placement_term = 1.0 - (matches / total if total else 1.0)
        return math.sqrt(cap_term) + placement_term

    def togo_seconds(
        self, state: _VertexState, configuration: Configuration
    ) -> float:
        """Bit-identical to ``AdaptationSearch._togo_seconds``."""
        seconds = sum(state.togo_terms, 0.0)
        for _ in self.ideal_powered - configuration.powered_hosts:
            seconds += self.durations.get(("power_on", "-"), 90.0)
        for _ in configuration.powered_hosts - self.ideal_powered:
            seconds += self.durations.get(("power_off", "-"), 30.0)
        return seconds

    def is_candidate(self, state: _VertexState) -> bool:
        """Same verdict as ``Configuration.is_candidate``."""
        return state.bad_hosts == 0 and not state.bad_vms


class AdaptationSearch:
    """Naive / Self-Aware A* over the configuration graph."""

    def __init__(
        self,
        applications: ApplicationSet,
        catalog: VmCatalog,
        limits: ConstraintLimits,
        estimator: UtilityEstimator,
        cost_manager: CostManager,
        perf_pwr: PerfPwrOptimizer,
        host_ids: Sequence[str],
        settings: Optional[SearchSettings] = None,
    ) -> None:
        self.applications = applications
        self.catalog = catalog
        self.limits = limits
        self.estimator = estimator
        self.cost_manager = cost_manager
        self.perf_pwr = perf_pwr
        self.host_ids = tuple(host_ids)
        self.settings = settings or SearchSettings()
        #: When set, the search only acts on VMs placed on (and only
        #: migrates to) these hosts — the 1st-level controller scoping
        #: of the paper's hierarchy.  The ideal configuration is then
        #: projected onto the scope: out-of-scope VMs stay pinned.
        self.scope_hosts: Optional[frozenset[str]] = None
        # Interned action objects: actions are immutable value objects
        # drawn from a small universe (VMs x hosts x cap steps), but
        # enumeration runs once per expansion — reuse instead of
        # re-constructing ~100 dataclass instances each time.
        self._action_cache: dict[tuple, AdaptationAction] = {}
        # Enumeration sublists keyed by the per-VM facts they depend
        # on, the sorted order of each powered-host set, and per-tier
        # replica bounds (static for this search's application model).
        self._round_action_cache: dict[tuple, list] = {}
        self._powered_order: dict[frozenset, list] = {}
        self._tier_limits: dict[tuple[str, str], tuple[int, int]] = {}
        # Round-context interning: the (allowed kinds, powered order)
        # pair is constant within an enumeration round, so hashing it
        # once into a small integer keeps the per-VM sublist keys
        # cheap (flat tuples of scalars instead of nested tuples).
        self._ctx_tokens: dict[tuple, int] = {}
        # vm_id -> (app_name, tier_name), static for the catalog.
        self._vm_tier_key: dict[str, tuple[str, str]] = {}
        # Array expansion core (DESIGN.md §13): the numeric codec and
        # constants, plus per-sublist ActionBlocks cached under the
        # same keys as ``_round_action_cache``.
        self._array_statics: Optional[ArrayStatics] = None
        self._round_block_cache: dict[tuple, object] = {}
        # Concatenated plans keyed by their block identity tuple: the
        # same (cached) block list recurs across expansion rounds, and
        # a plan is a pure function of its blocks.  Plans hold strong
        # block references, so ids stay unambiguous while cached.
        self._round_plan_cache: dict[tuple, RoundPlan] = {}
        # Cost-prediction value memos for the array rounds (DESIGN.md
        # §13).  ``_action_facts`` caches each action's semantic facts
        # (cost key, primary app, step count) by id — values pin the
        # action object, keeping ids unambiguous.  ``_predict_values``
        # memoizes PredictedCost by *value* key: every input
        # ``CostManager.predict`` reads (facts, the primary app's
        # workload rate, the affected hosts' app sets) is in the key,
        # so equal keys give float-identical costs across actions,
        # searches, and workload vectors.
        self._action_facts: dict = {}
        self._predict_values: dict = {}
        # Parallel evaluation stage (lazily built, reused across
        # searches; see DESIGN.md §11).
        self._executor = None
        self._executor_key: Optional[tuple] = None
        self._parallel_failed = False
        #: Pool respawns already spent (bounded by
        #: ``settings.executor_respawn_limit`` before the permanent
        #: pin-to-serial demotion).
        self._respawn_attempts = 0
        #: Optional callback invoked (with a reason string) when a pool
        #: executor dies and the search falls back to inline scoring —
        #: the controller wires this into its resilience ladder.
        self.on_executor_failure: Optional[Callable[[str], None]] = None
        #: Chaos-mode fault injector (attached by the testbed); handed
        #: to process executors (worker kills, shm corruption) and the
        #: walker contexts (solver exceptions, strategy stalls).
        self.fault_injector = None

    # -- executor lifecycle ---------------------------------------------------

    def _score_context(self) -> ScoreContext:
        return ScoreContext(
            self.catalog, self.limits, self.cost_manager, tuple(self.host_ids)
        )

    def _ensure_array_statics(self) -> ArrayStatics:
        """Codec + numeric constants, built once per search instance
        (raises ``ValueError`` for universes the codec cannot hold —
        the caller then runs the scalar path)."""
        statics = self._array_statics
        if statics is None:
            statics = ArrayStatics(self.catalog, self.limits, self.host_ids)
            self._array_statics = statics
        return statics

    def _executor_workers(self, settings: SearchSettings) -> int:
        """Resolved worker count (settings, then environment, then 1)."""
        workers = (
            settings.parallel_workers
            if settings.parallel_workers is not None
            else default_workers()
        )
        return workers if workers is not None else 1

    def _ensure_executor(self, settings: SearchSettings, workers: int):
        """The executor for this (kind, workers) request, cached across
        searches; once a pool has failed, always the inline fallback."""
        if self._parallel_failed:
            if self._executor is None:
                self._executor = SerialExecutor(self._score_context())
                self._executor_key = ("serial", 1)
            return self._executor
        kind = resolve_executor_kind(settings.parallel_executor, workers)
        key = (kind, 1 if kind == "serial" else workers)
        if self._executor is None or self._executor_key != key:
            self.close_executor()
            self._executor = make_executor(
                settings.parallel_executor, workers, self._score_context()
            )
            self._executor_key = key
        if self._executor.kind == "process":
            self._executor.fault_injector = self.fault_injector
        return self._executor

    def _respawn_executor(self, settings: SearchSettings, error: Exception):
        """Supervised recovery from a pool failure: close the broken
        executor and rebuild the same backing after an exponential
        backoff, up to ``executor_respawn_limit`` attempts — only then
        fall through to the permanent :meth:`_demote_executor` pin.
        The attempt counter is per search instance and never resets: a
        pool that keeps dying earns the serial path."""
        if self._respawn_attempts >= settings.executor_respawn_limit:
            return self._demote_executor(error)
        self._respawn_attempts += 1
        attempt = self._respawn_attempts
        backoff = settings.executor_respawn_backoff_seconds * (
            2.0 ** (attempt - 1)
        )
        broken = self._executor
        self._executor = None
        self._executor_key = None
        if broken is not None:
            try:
                broken.close()
            except Exception:
                pass  # already-broken pools may refuse to shut down
        if backoff > 0.0:
            time.sleep(backoff)
        if _telemetry.enabled:
            registry = _telemetry.registry
            registry.counter("parallel.worker_respawns").inc()
            _telemetry.tracer.event(
                "fault.worker.respawn",
                attempt=attempt,
                limit=settings.executor_respawn_limit,
                backoff_seconds=backoff,
                error=type(error).__name__,
            )
        if self.on_executor_failure is not None:
            try:
                self.on_executor_failure("worker_respawn")
            except Exception:
                pass  # resilience hooks must never kill the search
        workers = self._executor_workers(settings)
        return self._ensure_executor(settings, workers)

    def _demote_executor(self, error: Exception):
        """Permanent graceful fallback after a pool failure: close the
        broken executor, pin inline scoring, notify the resilience
        hook.  The search continues — the batch path is correct with
        any executor, so a dead pool costs throughput, never a plan."""
        broken = self._executor
        self._parallel_failed = True
        self._executor = SerialExecutor(self._score_context())
        self._executor_key = ("serial", 1)
        if _telemetry.enabled:
            registry = _telemetry.registry
            registry.counter("parallel.executor_failures").inc()
            registry.counter("parallel.serial_fallbacks").inc()
            _telemetry.tracer.event(
                "parallel.executor_failure",
                error=type(error).__name__,
                executor=getattr(broken, "kind", "unknown"),
            )
        if self.on_executor_failure is not None:
            try:
                self.on_executor_failure("executor_failure")
            except Exception:
                pass  # resilience hooks must never kill the search
        if broken is not None:
            try:
                broken.close()
            except Exception:
                pass  # already-broken pools may refuse to shut down
        return self._executor

    def close_executor(self) -> None:
        """Release pool resources (idempotent; pools rebuild on demand)."""
        if self._executor is not None:
            try:
                self._executor.close()
            except Exception:
                pass
            self._executor = None
            self._executor_key = None

    # -- public API -----------------------------------------------------------

    def search(
        self,
        current: Configuration,
        workloads: Mapping[str, float],
        control_window: float,
        expected_utility: Optional[float] = None,
        expected_rate: Optional[float] = None,
        settings_override: Optional[SearchSettings] = None,
    ) -> SearchOutcome:
        """Find the action sequence maximizing Eq. 3 over the window.

        Dispatches to the configured :class:`SearchStrategy` backend
        (``settings.strategy`` → ``MISTRAL_SEARCH_STRATEGY`` → the
        default ``"astar"``; see DESIGN.md §14).  ``"astar"`` runs the
        exact A* loop below with bit-identical outcomes to the
        pre-strategy code; ``"mcts"``/``"annealing"`` run the seeded
        anytime walkers in :mod:`repro.core.strategies`.

        ``expected_utility``/``expected_rate`` seed the self-aware
        budget ``UH`` (the paper uses the lowest of recent utilities);
        they default to the ideal utility over the window.
        ``settings_override`` swaps the search settings for this one run
        (the resilience ladder's degraded rung forces a pruned
        self-aware search with a reduced expansion budget).
        """
        # Imported lazily: strategies.py imports this module's classes,
        # so a module-level import here would be circular.
        from repro.core.strategies import resolve_strategy

        settings = (
            self.settings if settings_override is None else settings_override
        )
        strategy = resolve_strategy(settings.strategy)
        strategy_name = strategy.name
        try:
            outcome = strategy.run(
                self,
                current,
                workloads,
                control_window,
                expected_utility=expected_utility,
                expected_rate=expected_rate,
                settings_override=settings_override,
            )
        except Exception as error:
            if strategy_name == "astar":
                raise  # the exact loop has no fallback below it
            # Walker failure degradation: an anytime backend blowing up
            # mid-run (an injected solver fault, a real bug) must never
            # cost the controller a decision — fall back to the exact
            # A* incumbent path, which shares none of the walker's
            # failed machinery, and tell the resilience ladder.
            _phases.set_profile(None)  # the dead walker's, if any
            if _telemetry.enabled:
                registry = _telemetry.registry
                registry.counter("search.strategy_failures").inc()
                registry.counter(
                    f"search.strategy.{strategy_name}.failures"
                ).inc()
                _telemetry.tracer.event(
                    "search.strategy_failure",
                    strategy=strategy_name,
                    error=type(error).__name__,
                    detail=str(error),
                )
            if self.on_executor_failure is not None:
                try:
                    self.on_executor_failure("strategy_failure")
                except Exception:
                    pass  # resilience hooks must never kill the search
            outcome = self._astar_search(
                current,
                workloads,
                control_window,
                expected_utility,
                expected_rate,
                settings_override,
            )
            strategy_name = "astar"  # what actually decided
        outcome.strategy = strategy_name
        if _telemetry.enabled:
            registry = _telemetry.registry
            registry.counter(f"search.strategy.{strategy_name}.runs").inc()
            _telemetry.tracer.event(
                "search.strategy",
                strategy=strategy_name,
                wall_seconds=outcome.wall_seconds,
                expansions=outcome.expansions,
                decision_seconds=outcome.decision_seconds,
                predicted_utility=outcome.predicted_utility,
                actions=len(outcome.actions),
                deadline_aborted=outcome.deadline_aborted,
                optimal=outcome.optimal,
            )
        return outcome

    def _astar_search(
        self,
        current: Configuration,
        workloads: Mapping[str, float],
        control_window: float,
        expected_utility: Optional[float] = None,
        expected_rate: Optional[float] = None,
        settings_override: Optional[SearchSettings] = None,
    ) -> SearchOutcome:
        """The paper's exact Naive / Self-Aware A* (Algorithm 1).

        Every return path of the pre-strategy ``search`` is preserved
        verbatim — the ``"astar"`` strategy is this method, so its
        outcomes are bit-identical to the un-extracted loop.
        """
        wall_start = time.perf_counter()
        settings = (
            self.settings if settings_override is None else settings_override
        )
        incremental = settings.incremental
        workers = (
            settings.parallel_workers
            if settings.parallel_workers is not None
            else default_workers()
        )
        # The batch path scores children from the per-vertex delta
        # state, so the full (non-incremental) baseline always runs the
        # legacy loop.
        parallel_on = workers is not None and incremental
        # Array expansion core: like the batch path it scores children
        # from the delta state, so it also requires incremental.  When
        # both are on, rounds flow through the array kernels and the
        # executor only runs the cost-prediction stage.
        array_core = (
            settings.array_core
            if settings.array_core is not None
            else array_core_enabled()
        )
        array_on = incremental and array_core
        wkey = self.estimator.workload_key(workloads)
        ideal = self.perf_pwr.optimize(workloads)
        if self.scope_hosts is not None:
            ideal = self._project_ideal(current, ideal, workloads)
        ideal_rate = ideal.ideal_rate
        window = max(control_window, 0.0)

        current_estimate = self.estimator.estimate(current, workloads, key=wkey)
        current_rate = current_estimate.total_rate

        # Instrumentation tallies (cheap unconditional ints; flushed to
        # the telemetry registry by ``complete`` only when enabled).
        generated = 0
        pruned_away = 0
        candidate_pushes = 0
        # Measured executor-dispatch cost (wall + CPU); part of
        # ``wall_seconds``, surfaced separately so parallel overhead is
        # visible instead of laundered into the speedup.
        pool_wall = 0.0
        pool_cpu = 0.0
        # Watchdog state: a deadline of None keeps every check off the
        # hot path (single ``is not None`` test per expansion).
        deadline = settings.deadline_seconds
        deadline_hit = False
        # Provenance + phase profiling ride along only while telemetry
        # is on: with it off neither object exists and every hook below
        # stays a single ``is not None`` test (or is never reached).
        collector = (
            ProvenanceCollector()
            if _telemetry.enabled and _telemetry.provenance
            else None
        )
        profile = _phases.PhaseProfile() if _telemetry.enabled else None
        if profile is not None:
            _phases.set_profile(profile)

        def complete(
            actions: tuple[AdaptationAction, ...],
            final_configuration: Configuration,
            predicted_utility: float,
            expansions: int,
            decision_seconds: float,
            pruning_activated: bool,
            optimal: bool,
            early_return: bool = False,
            deadline_aborted: bool = False,
            action_chain: tuple = (),
        ) -> SearchOutcome:
            """Construct the outcome — every return path funnels through
            here so ``wall_seconds`` is always measured against the
            ``wall_start`` taken at entry (the no-escape early return
            included), and so one search emits exactly one telemetry
            record.  ``action_chain`` is the winner's *full* chain
            (``NullAction`` included) for the provenance replay."""
            if profile is not None:
                _phases.set_profile(None)
            outcome = SearchOutcome(
                actions=actions,
                final_configuration=final_configuration,
                predicted_utility=predicted_utility,
                ideal=ideal,
                expansions=expansions,
                decision_seconds=decision_seconds,
                wall_seconds=time.perf_counter() - wall_start,
                pruning_activated=pruning_activated,
                optimal=optimal,
                pool_wall_seconds=pool_wall,
                pool_cpu_seconds=pool_cpu,
                deadline_aborted=deadline_aborted,
            )
            if _telemetry.enabled:
                registry = _telemetry.registry
                registry.counter("search.runs").inc()
                if deadline_aborted:
                    registry.counter("watchdog.deadline_aborts").inc()
                    _telemetry.tracer.event(
                        "watchdog.deadline_abort",
                        deadline=deadline,
                        wall_seconds=outcome.wall_seconds,
                        expansions=outcome.expansions,
                        actions=len(outcome.actions),
                    )
                registry.counter("search.expansions").inc(outcome.expansions)
                registry.counter("search.children_generated").inc(generated)
                registry.counter("search.children_pruned").inc(pruned_away)
                registry.counter("search.candidates").inc(candidate_pushes)
                if early_return:
                    registry.counter("search.early_returns").inc()
                # How far the admissible bound over-estimated the
                # utility the committed plan actually promises.
                registry.gauge("search.heuristic_gap").set(
                    window * ideal_rate - outcome.predicted_utility
                )
                _telemetry.tracer.event(
                    "search.run",
                    dur=outcome.wall_seconds,
                    self_aware=settings.self_aware,
                    incremental=incremental,
                    parallel=parallel_on,
                    pool_seconds=outcome.pool_wall_seconds,
                    expansions=outcome.expansions,
                    children_generated=generated,
                    children_pruned=pruned_away,
                    candidates=candidate_pushes,
                    pruning_activated=outcome.pruning_activated,
                    decision_seconds=outcome.decision_seconds,
                    predicted_utility=outcome.predicted_utility,
                    actions=len(outcome.actions),
                    optimal=outcome.optimal,
                    early_return=early_return,
                )
                if profile is not None and profile:
                    _telemetry.tracer.event(
                        "profile.phases",
                        phases=profile.snapshot(),
                        wall_seconds=outcome.wall_seconds,
                        expansions=outcome.expansions,
                        parallel=parallel_on,
                        array_core=array_on,
                    )
                if collector is not None:
                    try:
                        totals, per_action = plan_breakdown(
                            self.estimator,
                            self.catalog,
                            self.limits,
                            self.cost_manager,
                            workloads,
                            wkey,
                            window,
                            ideal_rate,
                            current,
                            action_chain,
                        )
                    except Exception:
                        # Provenance must never take a decision down;
                        # fall back to a coarse, un-decomposed record.
                        totals = {
                            "steady": predicted_utility,
                            "transient": 0.0,
                            "total": predicted_utility,
                        }
                        per_action = []
                    utility = {
                        **totals,
                        "predicted_utility": predicted_utility,
                        "baseline_utility": window * current_rate,
                        "delta_vs_current": (
                            predicted_utility - window * current_rate
                        ),
                        "ideal_bound": window * ideal_rate,
                        "heuristic_gap": (
                            window * ideal_rate - predicted_utility
                        ),
                    }
                    outcome.provenance = collector.build(
                        utility=utility,
                        chosen_actions=tuple(
                            type(action).__name__ for action in actions
                        ),
                        predicted_utility=predicted_utility,
                        search={
                            "expansions": outcome.expansions,
                            "children_generated": generated,
                            "children_pruned": pruned_away,
                            "candidates": candidate_pushes,
                            "pruning_activated": outcome.pruning_activated,
                            "optimal": outcome.optimal,
                            "early_return": early_return,
                            "deadline_aborted": deadline_aborted,
                            "self_aware": settings.self_aware,
                            "incremental": incremental,
                            "parallel": parallel_on,
                            "array_core": array_on,
                            "wall_seconds": outcome.wall_seconds,
                            "decision_seconds": outcome.decision_seconds,
                        },
                        per_action=per_action,
                    )
            return outcome

        if ideal.configuration == current:
            return complete(
                actions=(),
                final_configuration=current,
                predicted_utility=window * current_rate,
                expansions=0,
                decision_seconds=settings.per_vertex_seconds,
                pruning_activated=False,
                optimal=True,
                early_return=True,
            )

        ideal_weights, ideal_caps = self._ideal_distance_basis(ideal)

        def vertex_distance(configuration: Configuration) -> float:
            return self._distance(
                configuration, ideal_caps, ideal_weights, ideal
            )

        # Guidance potential: estimated seconds of adaptation still
        # needed to reach the ideal configuration, priced at the gap
        # between the ideal rate and the rate accrued while adapting.
        # This tightens the cost-to-go of intermediates (the raw ideal
        # bound assumes instant, free adaptation) so the search
        # converges instead of flooding the near-zero-cost frontier.
        action_durations = self._togo_durations(workloads)
        rate_gap = settings.togo_discount * max(
            ideal_rate - current_rate, 0.1 * abs(ideal_rate), 1e-9
        )

        basis: Optional[_SearchBasis] = None
        if incremental:
            self.estimator.prime(current, workloads, key=wkey)
            basis = _SearchBasis(
                self.catalog,
                self.limits,
                ideal.configuration,
                ideal_weights,
                ideal_caps,
                action_durations,
            )

        # Array-core setup: every configuration the search can reach is
        # derived from the roots below by in-universe actions, so
        # encoding the roots up front proves ``encode_key`` cannot fail
        # later (out-of-universe or oversized systems degrade to the
        # scalar path here, never mid-search).
        abasis: Optional[ArrayBasis] = None
        codec = None
        if array_on:
            try:
                statics = self._ensure_array_statics()
                statics.codec.encode(current)
                statics.codec.encode(ideal.configuration)
                for alternative in ideal.alternatives:
                    statics.codec.encode(alternative.configuration)
            except (ValueError, KeyError):
                array_on = False
            else:
                codec = statics.codec
                abasis = ArrayBasis(statics, basis)

        def togo_penalty(vertex: _Vertex) -> float:
            if basis is not None:
                seconds = basis.togo_seconds(
                    vertex.state, vertex.configuration
                )
            else:
                seconds = self._togo_seconds(
                    vertex.configuration, ideal.configuration, action_durations
                )
            return settings.guidance_weight * seconds * rate_gap

        def steady_of(vertex: _Vertex) -> "SteadyEstimate":
            """Steady estimate via the delta path when lineage allows."""
            if incremental and vertex.parent_configuration is not None:
                return self.estimator.estimate_child(
                    vertex.parent_configuration,
                    vertex.configuration,
                    vertex.changed_vms,
                    workloads,
                    key=wkey,
                )
            return self.estimator.estimate(
                vertex.configuration, workloads, key=wkey
            )

        # -- self-aware bookkeeping (Algorithm 1's T, UT, UpwrT, UH) --
        budget = (
            expected_utility
            if expected_utility is not None
            else window * ideal_rate
        )
        budget_rate = expected_rate if expected_rate is not None else ideal_rate
        search_power_rate = -self.estimator.utility.power_utility_rate(
            settings.search_watts_delta
        )
        elapsed_search = 0.0
        accrued_current = 0.0
        accrued_search_power = 0.0
        pruning = False
        delay_threshold = settings.delay_threshold_fraction * window

        def bound(vertex: _Vertex) -> float:
            remaining = max(0.0, window - vertex.elapsed)
            return remaining * ideal_rate + vertex.accrued

        def candidate_value(vertex: _Vertex) -> float:
            remaining = max(0.0, window - vertex.elapsed)
            steady = steady_of(vertex)
            return remaining * steady.total_rate + vertex.accrued

        counter = itertools.count()
        heap: list[tuple[float, int, _Vertex]] = []
        # Keyed by the codec's byte image on the array path (byte
        # equality == configuration equality, and bytes hash much
        # faster), by the configuration itself on the scalar path;
        # within one search every vertex uses the same scheme.
        best_priority: dict[tuple, float] = {}
        best_terminal: Optional[_Vertex] = None

        def push(vertex: _Vertex) -> None:
            nonlocal best_terminal
            key = (
                vertex.key if vertex.key is not None else vertex.configuration,
                vertex.terminal,
            )
            known = best_priority.get(key)
            if known is not None and known >= vertex.priority - 1e-12:
                return
            best_priority[key] = vertex.priority
            # Ties break toward deeper vertices (then recency) so plans
            # complete instead of re-exploring orderings of the same
            # commuting actions.
            heapq.heappush(
                heap,
                (-vertex.priority, -len(vertex.actions), -next(counter), vertex),
            )
            if vertex.terminal and (
                best_terminal is None or vertex.utility > best_terminal.utility
            ):
                best_terminal = vertex

        def finalize(vertex: _Vertex) -> None:
            """Set priority: intermediates pay the guidance potential.

            The potential is a *constant* per configuration (it must not
            depend on the path's elapsed time, or cycles of cheap
            actions could raise their own priority by shrinking the
            remaining window).
            """
            if vertex.terminal:
                vertex.priority = vertex.utility
            else:
                vertex.priority = vertex.utility - togo_penalty(vertex)

        def build_child(
            parent: _Vertex,
            action: AdaptationAction,
            parent_steady: SteadyEstimate,
            new_config: Optional[Configuration] = None,
            delta: Optional[tuple] = None,
        ) -> Optional[_Vertex]:
            """Child vertex for one action, or None if inapplicable.

            ``parent_steady`` is hoisted to the caller (one estimate per
            expansion, not one per child); the pruning path passes the
            already-computed ``new_config``/``delta`` through so nothing
            is computed twice.  On the incremental path the action's
            placement delta both validates the action and yields the
            child configuration directly (one ``replace``/``remove``),
            skipping ``apply``'s duplicate validation pass.
            """
            if incremental:
                if delta is None:
                    try:
                        delta = action.placement_delta(
                            parent.configuration, self.catalog, self.limits
                        )
                    except ActionError:
                        return None
                changed = frozenset(vm_id for vm_id, _ in delta)
                if new_config is None:
                    if len(delta) == 1:
                        (vm_id, placement), = delta
                        new_config = (
                            parent.configuration.remove(vm_id)
                            if placement is None
                            else parent.configuration.replace(
                                vm_id, placement
                            )
                        )
                    else:
                        # No-VM actions (null / host power) — and any
                        # future multi-edit action — go through apply.
                        try:
                            new_config = action.apply(
                                parent.configuration, self.catalog, self.limits
                            )
                        except ActionError:
                            return None
                child_state = basis.child_state(
                    parent.configuration, parent.state, delta
                )
                distance = basis.distance(child_state)
                is_candidate = basis.is_candidate(child_state)
            else:
                if new_config is None:
                    try:
                        new_config = action.apply(
                            parent.configuration, self.catalog, self.limits
                        )
                    except ActionError:
                        return None
                changed = frozenset()
                child_state = None
                distance = vertex_distance(new_config)
                is_candidate = new_config.is_candidate(
                    self.catalog, self.limits
                )
            predicted = self.cost_manager.predict(
                action, parent.configuration, workloads
            )
            perf_rate, power_rate = self.estimator.transient_rates(
                parent_steady,
                workloads,
                predicted.rt_delta,
                predicted.power_delta_watts,
            )
            # Accrual is truncated at the window's end and capped at the
            # ideal rate: otherwise plans longer than the window (or
            # transient rates above the heuristic) would make cyclic
            # action sequences look profitable.
            effective = min(
                predicted.duration, max(0.0, window - parent.elapsed)
            )
            transient_rate = min(perf_rate + power_rate, ideal_rate)
            child = _Vertex(
                configuration=new_config,
                actions=parent.actions + (action,),
                accrued=parent.accrued + effective * transient_rate,
                elapsed=parent.elapsed + predicted.duration,
                distance=distance,
                is_candidate=is_candidate,
                state=child_state,
                parent_configuration=parent.configuration,
                changed_vms=changed,
                key=(
                    codec.encode_key(new_config)
                    if codec is not None
                    else None
                ),
            )
            child.utility = bound(child)
            finalize(child)
            return child

        def push_with_terminal(vertex: _Vertex) -> None:
            nonlocal candidate_pushes
            push(vertex)
            if vertex.is_candidate:
                candidate_pushes += 1
                terminal = _Vertex(
                    configuration=vertex.configuration,
                    actions=vertex.actions,
                    accrued=vertex.accrued,
                    elapsed=vertex.elapsed,
                    terminal=True,
                    is_candidate=True,
                    state=vertex.state,
                    parent_configuration=vertex.parent_configuration,
                    changed_vms=vertex.changed_vms,
                    key=vertex.key,
                )
                terminal.utility = candidate_value(terminal)
                if collector is not None:
                    collector.note_candidate(terminal.utility, terminal.actions)
                finalize(terminal)
                push(terminal)

        # -- parallel evaluation stage (DESIGN.md §11) ---------------------
        # Expansion rounds are scored through a pluggable executor and
        # children are then built from ``[terms, children]`` matrices
        # reduced column-wise in the serial summation order, so the
        # children (priorities, tie-breakers, heap behaviour — the whole
        # outcome) are bit-identical to the legacy per-child loop.
        executor = None
        # Point utility-rate lookups memoized by input value; scoped to
        # this search because they fix (workloads, utility model).
        util_memo: dict = {}
        # Sparse rt-delta views of PredictedCost objects for the array
        # rounds, keyed by id(); each entry holds the object itself so
        # ids cannot be recycled while the memo lives.  Scoped with
        # ``util_memo``: entries bake in this search's workload vector.
        workload_items = list(workloads.items())
        workload_pos = {
            app: (i, rate) for i, (app, rate) in enumerate(workload_items)
        }
        transient_sparse: dict = {}
        if parallel_on or array_on:
            # The array core routes cost prediction through the same
            # executor interface; without a worker request it resolves
            # to the inline serial executor.
            executor = self._ensure_executor(
                settings, workers if workers is not None else 1
            )
            if _telemetry.enabled and parallel_on:
                registry = _telemetry.registry
                registry.counter("parallel.searches").inc()
                registry.gauge("parallel.workers").set(executor.workers)

        def dispatch(method: str, configuration: Configuration, actions):
            """One executor round (score or predict), with measured
            pool cost, the watchdog's hard timer, and supervised
            recovery on pool death.

            With a deadline set, the round runs under a timeout for the
            remaining budget; on expiry (or with no budget left at all)
            the round yields no results and flags ``deadline_hit`` —
            the expansion loop aborts to the best incumbent right after
            this round, so a stuck pool cannot hold the search hostage.
            A timeout is a *deadline* event, never a pool-death event:
            the executor is not demoted.

            Any other executor failure (a worker SIGKILLed mid-round,
            the pool dead, a stale fork, unrecoverable shm corruption)
            retries the round through :meth:`_respawn_executor`: the
            same backing is rebuilt under a bounded exponential backoff
            until the respawn budget runs out, after which the
            permanent serial demotion takes over.  The serial fallback
            executing the round inline cannot fail this way, so the
            loop always terminates.
            """
            nonlocal pool_wall, pool_cpu, executor, deadline_hit
            wall_0 = time.perf_counter()
            cpu_0 = time.process_time()
            remaining = None
            if deadline is not None:
                remaining = deadline - (wall_0 - wall_start)
                if remaining <= 0.0:
                    deadline_hit = True
                    return []
            try:
                while True:
                    try:
                        if remaining is None:
                            return getattr(executor, method)(
                                configuration, actions, workloads, wkey
                            )
                        return getattr(executor, method)(
                            configuration, actions, workloads, wkey,
                            timeout=remaining,
                        )
                    except (TimeoutError, multiprocessing.TimeoutError):
                        deadline_hit = True
                        return []
                    except Exception as error:
                        if executor.kind == "serial":
                            raise  # inline failures are real bugs
                        executor = self._respawn_executor(settings, error)
            finally:
                cpu_dt = time.process_time() - cpu_0
                wall_dt = time.perf_counter() - wall_0
                pool_cpu += cpu_dt
                pool_wall += wall_dt
                if profile is not None:
                    # The dispatch round *is* the scoring work on the
                    # batched paths — reuse its measurements instead of
                    # reading the clocks a second time.
                    profile.add("score", wall_dt, cpu_dt)
                if _telemetry.enabled:
                    registry = _telemetry.registry
                    registry.counter("parallel.rounds").inc()
                    registry.counter("parallel.children_scored").inc(
                        len(actions)
                    )
                    registry.histogram("parallel.batch_children").observe(
                        len(actions)
                    )
                    registry.histogram("parallel.dispatch_seconds").observe(
                        wall_dt
                    )
                    if wall_dt > 0.0:
                        registry.gauge("parallel.pool_utilization").set(
                            cpu_dt / (wall_dt * executor.workers)
                        )

        # Search-level prediction memo for array rounds.  A prediction
        # is a pure function of (workloads, action, affected context) —
        # see ``parallel.batch.predict_key`` — so within one search
        # (fixed workloads) it can be keyed by the action's identity
        # plus, for placement actions, the affected hosts' app sets.
        # Hits skip the executor round-trip entirely; only misses are
        # dispatched (and still land in the executor's own memo), which
        # keeps every value float-identical to the undispatched path.
        # Values hold the action object, pinning its ``id`` for the
        # memo's lifetime.
        predict_fast: dict = {}
        _NO_APPS: frozenset = frozenset()

        def round_host_apps(configuration: Configuration) -> dict:
            """Host id -> frozenset of app names placed on it (one
            O(placements) pass per round; absent hosts are empty)."""
            get = self.catalog.get
            collected: dict[str, set] = {}
            for vm_id, placement in configuration.placement_items():
                collected.setdefault(placement.host_id, set()).add(
                    get(vm_id).app_name
                )
            return {host: frozenset(apps) for host, apps in collected.items()}

        def predict_round(configuration: Configuration, actions) -> list:
            """Predictions for one array round's selected (pre-validated)
            actions, resolving memo hits locally and dispatching only
            the misses.  Returns ``[]`` when the dispatch of the misses
            aborts on the deadline, mirroring a fully aborted round."""
            host_apps = round_host_apps(configuration)
            apps_get = host_apps.get
            placement_of = configuration.placement_of
            fast_get = predict_fast.get
            facts = self._action_facts
            facts_get = facts.get
            values = self._predict_values
            values_get = values.get
            catalog_get = self.catalog.get
            results: list = [None] * len(actions)
            missing: list = []
            miss_slots: list = []
            for i, action in enumerate(actions):
                kind = type(action)
                if kind is MigrateVm:
                    key = (
                        id(action),
                        apps_get(placement_of(action.vm_id).host_id, _NO_APPS),
                        apps_get(action.target_host, _NO_APPS),
                    )
                elif kind is AddReplica:
                    key = (id(action), apps_get(action.target_host, _NO_APPS))
                elif kind is RemoveReplica:
                    key = (
                        id(action),
                        apps_get(placement_of(action.vm_id).host_id, _NO_APPS),
                    )
                else:
                    # Cap changes, power toggles, null: the affected
                    # set is a constant of the action itself.
                    key = id(action)
                entry = fast_get(key)
                if entry is not None:
                    results[i] = entry[1]
                    continue
                # L2: value-keyed memo.  Same facts + rate + app sets
                # ⇒ ``CostManager.predict`` reads identical inputs ⇒
                # identical cost — e.g. sibling cap steps and
                # same-shape migrations collapse to one prediction.
                known = facts_get(id(action))
                if known is None:
                    vm_id = getattr(action, "vm_id", None)
                    primary = (
                        catalog_get(vm_id).app_name
                        if vm_id is not None
                        else getattr(action, "app_name", None)
                    )
                    if len(facts) >= _ROUND_ACTION_CACHE_LIMIT:
                        facts.clear()
                    facts[id(action)] = known = (
                        action,
                        action.cost_key(self.catalog),
                        primary,
                        getattr(action, "count", 1),
                    )
                _, cost_key, primary, count = known
                rate = (
                    workloads.get(primary, 0.0)
                    if primary is not None
                    else 0.0
                )
                # Tuple fast keys carry the affected hosts' app sets in
                # slots 1+; the two vkey shapes (class-led vs
                # tuple-led) never collide.
                if type(key) is tuple:
                    vkey = (cost_key, primary, count, rate) + key[1:]
                else:
                    vkey = (kind, cost_key, primary, count, rate)
                value = values_get(vkey)
                if value is not None:
                    results[i] = value
                    predict_fast[key] = (action, value)
                    continue
                missing.append(action)
                miss_slots.append((i, key, vkey, action))
            if missing:
                predicted_list = dispatch("predict", configuration, missing)
                if len(predicted_list) != len(missing):
                    return []
                if len(values) >= _ROUND_ACTION_CACHE_LIMIT:
                    values.clear()
                for (i, key, vkey, action), predicted in zip(
                    miss_slots, predicted_list
                ):
                    results[i] = predicted
                    predict_fast[key] = (action, predicted)
                    values[vkey] = predicted
            return results

        def vertex_state(vertex: _Vertex) -> _VertexState:
            """Materialize a batch-built vertex's lazy state on first
            expansion (identical to the eager serial construction)."""
            state = vertex.state
            if state is None and vertex.pending is not None:
                parent_state, delta = vertex.pending
                state = basis.child_state(
                    vertex.parent_configuration, parent_state, delta
                )
                vertex.state = state
                vertex.pending = None
            return state

        def batch_distances(state: _VertexState, scatters: list) -> np.ndarray:
            """Per-child distances from ``(vm_id, cap, host)`` scatter
            facts — bit-identical to ``basis.child_distance`` (same
            scalar scatter expressions, column sums in list order;
            ``np.sqrt``/elementwise division are correctly rounded
            exactly like their ``math`` scalar counterparts)."""
            total = basis.total
            index = basis.index
            weights = basis.weights
            ideal_caps = basis.ideal_caps
            ideal_hosts = basis.ideal_hosts
            cap_m = np.repeat(
                np.array(state.cap_terms, dtype=np.float64)[:, None],
                len(scatters),
                axis=1,
            )
            match_m = np.repeat(
                np.array(state.host_matches, dtype=np.float64)[:, None],
                len(scatters),
                axis=1,
            )
            for j, scatter in enumerate(scatters):
                for vm_id, cap, host in scatter:
                    i = index[vm_id]
                    cap_m[i, j] = weights[i] * (cap - ideal_caps[i]) ** 2
                    match_m[i, j] = 1 if host == ideal_hosts[i] else 0
            cap_sum = column_sums(cap_m)
            if not total:
                return np.sqrt(cap_sum)  # placement term is exactly 0.0
            match_sum = column_sums(match_m)
            return np.sqrt(cap_sum) + (1.0 - match_sum / total)

        def child_candidate(
            state: _VertexState,
            parent_configuration: Configuration,
            delta: tuple,
            changed: frozenset,
        ) -> bool:
            """The child's candidate verdict in O(|delta|), without
            building its state: replays ``child_state``'s host-entry
            arithmetic through an overlay dict over the parent's.

            Quick rejects first: an under-cap VM the action does not
            touch stays under cap, and a bad host the action's (at
            most two) touched hosts cannot account for stays bad."""
            if state.bad_vms and not (state.bad_vms <= changed):
                return False
            if state.bad_hosts > 2 * len(delta):
                return False
            limits = self.limits
            bad_hosts = state.bad_hosts
            bad_vm_count = len(state.bad_vms)
            hosts = state.hosts
            memory = basis.memory
            if len(delta) == 1:
                # Single-edit fast path (every current action): at most
                # one source and one destination entry — no overlay,
                # and ``_host_bad`` unrolled inline (same comparisons).
                max_cpu = limits.max_total_cpu_cap + 1e-9
                max_mem = limits.guest_memory_mb
                max_vms = limits.max_vms_per_host
                ((vm_id, new),) = delta
                old = parent_configuration.placement_of(vm_id)
                src_entry = _ABSENT
                src = None
                if old is not None:
                    src = old.host_id
                    cpu, mem, vms = hosts.get(src)
                    was_bad = (
                        cpu > max_cpu or mem > max_mem or vms > max_vms
                    )
                    remaining = vms - 1
                    if remaining == 0:
                        src_entry = None
                        bad_hosts -= was_bad
                    else:
                        cpu = round(cpu - old.cpu_cap, 10)
                        mem -= memory[vm_id]
                        src_entry = (cpu, mem, remaining)
                        bad_hosts += (
                            cpu > max_cpu
                            or mem > max_mem
                            or remaining > max_vms
                        ) - was_bad
                if new is not None:
                    dst = new.host_id
                    entry = (
                        src_entry if dst == src and src_entry is not _ABSENT
                        else hosts.get(dst)
                    )
                    if entry is not None:
                        cpu, mem, vms = entry
                        was_bad = (
                            cpu > max_cpu or mem > max_mem or vms > max_vms
                        )
                        cpu = round(cpu + new.cpu_cap, 10)
                        mem += memory[vm_id]
                        vms += 1
                    else:
                        was_bad = False
                        cpu = round(new.cpu_cap, 10)
                        mem = memory[vm_id]
                        vms = 1
                    bad_hosts += (
                        cpu > max_cpu or mem > max_mem or vms > max_vms
                    ) - was_bad
                under_cap = new is not None and (
                    new.cpu_cap < limits.min_vm_cpu_cap - 1e-9
                )
                if under_cap != (vm_id in state.bad_vms):
                    bad_vm_count += 1 if under_cap else -1
                return bad_hosts == 0 and bad_vm_count == 0
            overlay: dict = {}

            def entry_of(host_id):
                if host_id in overlay:
                    return overlay[host_id]
                return hosts.get(host_id)

            for vm_id, new in delta:
                old = parent_configuration.placement_of(vm_id)
                if old is not None:
                    src = old.host_id
                    entry = entry_of(src)
                    was_bad = basis._host_bad(*entry)
                    remaining = entry[2] - 1
                    if remaining == 0:
                        overlay[src] = None  # deleted
                        bad_hosts -= was_bad
                    else:
                        entry = (
                            round(entry[0] - old.cpu_cap, 10),
                            entry[1] - basis.memory[vm_id],
                            remaining,
                        )
                        overlay[src] = entry
                        bad_hosts += basis._host_bad(*entry) - was_bad
                if new is not None:
                    dst = new.host_id
                    entry = entry_of(dst)
                    if entry is not None:
                        was_bad = basis._host_bad(*entry)
                        entry = (
                            round(entry[0] + new.cpu_cap, 10),
                            entry[1] + basis.memory[vm_id],
                            entry[2] + 1,
                        )
                    else:
                        was_bad = False
                        entry = (
                            round(new.cpu_cap, 10),
                            basis.memory[vm_id],
                            1,
                        )
                    overlay[dst] = entry
                    bad_hosts += basis._host_bad(*entry) - was_bad
                under_cap = new is not None and (
                    new.cpu_cap < limits.min_vm_cpu_cap - 1e-9
                )
                if under_cap != (vm_id in state.bad_vms):
                    bad_vm_count += 1 if under_cap else -1
            return bad_hosts == 0 and bad_vm_count == 0

        def build_children_batched(
            vertex: _Vertex,
            state: _VertexState,
            parent_steady: SteadyEstimate,
            entries: list,
            distances: Optional[np.ndarray] = None,
        ) -> list[_Vertex]:
            """Children for one scored round, in the exact order (and
            with the exact float values) the serial loop would produce.

            ``entries`` is ``[(order, action, delta, predicted), ...]``.
            Distance and cost-to-go come from column-wise reductions of
            per-term matrices; a pruned round passes its ranking
            ``distances`` (already the same column reductions, over the
            same scatter values) so only cost-to-go is reduced here.
            States stay lazy (``pending``) because almost no child is
            ever expanded; transient utility rates are memoized per
            round on the predicted (rt_delta, power) values, which is
            sound because the parent steady estimate is a round
            constant.
            """
            if not entries:
                return []
            step = self.limits.cpu_cap_step
            min_cap = self.limits.min_vm_cpu_cap
            deltas = [entry[2] for entry in entries]
            total = basis.total
            batch = len(entries)
            index = basis.index
            togo_m = np.repeat(
                np.array(state.togo_terms, dtype=np.float64)[:, None],
                batch,
                axis=1,
            )
            if distances is None:
                cap_m = np.repeat(
                    np.array(state.cap_terms, dtype=np.float64)[:, None],
                    batch,
                    axis=1,
                )
                match_m = np.repeat(
                    np.array(state.host_matches, dtype=np.float64)[:, None],
                    batch,
                    axis=1,
                )
                for j, delta in enumerate(deltas):
                    for vm_id, new in delta:
                        i = index[vm_id]
                        cap = new.cpu_cap if new is not None else 0.0
                        cap_m[i, j] = (
                            basis.weights[i] * (cap - basis.ideal_caps[i]) ** 2
                        )
                        host = new.host_id if new is not None else None
                        match_m[i, j] = (
                            1 if host == basis.ideal_hosts[i] else 0
                        )
                        togo_m[i, j] = _togo_vm_term(
                            new,
                            basis.ideal_placements[i],
                            basis.tiers[i],
                            basis.durations,
                            step,
                            min_cap,
                        )
                cap_sum = column_sums(cap_m)
                if total:
                    match_sum = column_sums(match_m)
                    dist_vec = np.sqrt(cap_sum) + (1.0 - match_sum / total)
                else:
                    dist_vec = np.sqrt(cap_sum)
            else:
                dist_vec = distances
                for j, delta in enumerate(deltas):
                    for vm_id, new in delta:
                        togo_m[index[vm_id], j] = _togo_vm_term(
                            new,
                            basis.ideal_placements[index[vm_id]],
                            basis.tiers[index[vm_id]],
                            basis.durations,
                            step,
                            min_cap,
                        )
            togo_sum = column_sums(togo_m)
            # Non-power children inherit the parent's powered-host set,
            # so the power legs of the cost-to-go are round constants —
            # but float addition is order-sensitive, so they are chained
            # onto every column in the serial sequence, vectorized.
            on_dur = basis.durations.get(("power_on", "-"), 90.0)
            off_dur = basis.durations.get(("power_off", "-"), 30.0)
            n_on = len(basis.ideal_powered - vertex.configuration.powered_hosts)
            n_off = len(
                vertex.configuration.powered_hosts - basis.ideal_powered
            )
            togo_vec = togo_sum
            for _ in range(n_on):
                togo_vec = togo_vec + on_dur
            for _ in range(n_off):
                togo_vec = togo_vec + off_dur
            remaining_window = max(0.0, window - vertex.elapsed)
            transient_memo: dict = {}
            children: list[_Vertex] = []
            # Hoisted round constants (pure lookups — no float change).
            parent_config = vertex.configuration
            parent_actions = vertex.actions
            parent_accrued = vertex.accrued
            parent_elapsed = vertex.elapsed
            config_replace = parent_config.replace
            config_remove = parent_config.remove
            transient_of = self.estimator.transient_rates
            memo_get = transient_memo.get
            guidance_weight = settings.guidance_weight
            dist_list = dist_vec.tolist()  # exact float64 values
            togo_list = togo_vec.tolist()
            for j, (order, action, delta, predicted) in enumerate(entries):
                if delta:
                    if len(delta) == 1:
                        (vm_id, placement), = delta
                        changed = frozenset((vm_id,))
                        new_config = (
                            config_remove(vm_id)
                            if placement is None
                            else config_replace(vm_id, placement)
                        )
                    else:
                        changed = frozenset(vm_id for vm_id, _ in delta)
                        try:
                            new_config = action.apply(
                                parent_config, self.catalog, self.limits
                            )
                        except ActionError:
                            continue
                    child_state = None
                    pending = (state, delta)
                    togo_child = togo_list[j]
                    is_cand = child_candidate(
                        state, parent_config, delta, changed
                    )
                else:
                    # Null/host-power actions share the parent's state,
                    # but their powered set differs — full togo path.
                    changed = frozenset()
                    try:
                        new_config = action.apply(
                            parent_config, self.catalog, self.limits
                        )
                    except ActionError:
                        continue
                    child_state = state
                    pending = None
                    togo_child = basis.togo_seconds(state, new_config)
                    is_cand = basis.is_candidate(state)
                # The executor memo returns one PredictedCost object per
                # distinct prediction key, so within this round (entries
                # keep every object alive) id() is a sound memo key.
                tkey = id(predicted)
                rates = memo_get(tkey)
                if rates is None:
                    rates = transient_of(
                        parent_steady,
                        workloads,
                        predicted.rt_delta,
                        predicted.power_delta_watts,
                        memo=util_memo,
                    )
                    transient_memo[tkey] = rates
                perf_rate, power_rate = rates
                duration = predicted.duration
                effective = (
                    duration if duration < remaining_window
                    else remaining_window
                )
                transient_rate = perf_rate + power_rate
                if ideal_rate < transient_rate:
                    transient_rate = ideal_rate
                child = _Vertex(
                    configuration=new_config,
                    actions=parent_actions + (action,),
                    accrued=parent_accrued + effective * transient_rate,
                    elapsed=parent_elapsed + duration,
                    distance=dist_list[j],
                    is_candidate=is_cand,
                    state=child_state,
                    pending=pending,
                    parent_configuration=parent_config,
                    changed_vms=changed,
                )
                child.utility = bound(child)
                child.priority = (
                    child.utility
                    - guidance_weight * togo_child * rate_gap
                )
                children.append(child)
            return children

        def build_children_array(
            vertex: _Vertex,
            state: _VertexState,
            parent_steady: SteadyEstimate,
            plan: RoundPlan,
            values: tuple,
            sel: np.ndarray,
            actions_sel: list,
            predictions: list,
            dist_sel: Optional[np.ndarray],
            parent_rows,
        ) -> list:
            """Children for one array round — the same order and float
            values as ``build_children_batched``, with the per-child
            scatter loops replaced by the plan's precomputed columns.

            Beyond the batched path, non-candidate children stay lazy
            all the way down: each is returned as a flat payload tuple
            (codec byte key, priority/utility scalars, action, delta,
            shared lineage) — no ``_Vertex``, no ``Configuration`` —
            and ``materialize_lazy`` builds the real vertex only if the
            heap ever pops it (~1% of pushes are).  Dedup runs on the
            byte keys.  Candidates (and null/host-power actions)
            materialize eagerly — their terminal twins estimate steady
            utility from the real object.
            """
            if sel.size == 0 or not predictions:
                return []
            n_on = len(basis.ideal_powered - vertex.configuration.powered_hosts)
            n_off = len(
                vertex.configuration.powered_hosts - basis.ideal_powered
            )
            dist_list, togo_list = abasis.sel_reductions(
                state, plan, sel, values, dist_sel, n_on, n_off
            )
            # Kernel-versus-scalar dispatch: below ~2 dozen children the
            # integer-replay kernel's fixed numpy overhead loses to the
            # legacy per-child check (both produce the same verdicts).
            cand_vec = (
                abasis.candidacy(state, plan, sel, parent_rows)
                if sel.size >= 24
                else None
            )
            cand_list = cand_vec.tolist() if cand_vec is not None else None
            keys = abasis.child_keys(plan, sel, parent_rows, vertex.key)
            remaining_window = max(0.0, window - vertex.elapsed)
            transient_memo: dict = {}
            children: list[_Vertex] = []
            parent_config = vertex.configuration
            parent_actions = vertex.actions
            parent_accrued = vertex.accrued
            parent_elapsed = vertex.elapsed
            config_replace = parent_config.replace
            config_remove = parent_config.remove
            memo_get = transient_memo.get
            guidance_weight = settings.guidance_weight
            deltas = plan.deltas
            # Transient rates, unrolled (estimator.transient_rates with
            # the same ``util_memo``): the parent's base perf rate is a
            # fixed left-to-right sum over the workload order, so the
            # per-child sum restarts from the prefix before the first
            # app the prediction perturbs and replays the identical
            # float additions from there — bit-identical by
            # construction, without the full per-app loop for the
            # common sparse ``rt_delta``.
            app_rates = parent_steady.app_perf_rates
            base_rts = parent_steady.response_times
            base_power_rate = parent_steady.power_rate
            parent_watts = parent_steady.watts
            n_apps = len(workload_items)
            base_rates = [0.0] * n_apps
            prefix = [0.0] * (n_apps + 1)
            acc = 0.0
            for i, (app, _rate) in enumerate(workload_items):
                prefix[i] = acc
                rate = app_rates[app]
                base_rates[i] = rate
                acc = acc + rate
            prefix[n_apps] = acc
            util_get = util_memo.get
            sparse_get = transient_sparse.get
            pos_get = workload_pos.get
            perf_rate_of = self.estimator.utility.perf_utility_rate
            power_rate_of = self.estimator.utility.power_utility_rate
            # One shared lineage tuple per round keeps each lazy payload
            # flat (see ``materialize_lazy`` for the slot layout).
            lineage = (parent_config, parent_actions, state)
            children_append = children.append
            # Null/host-power child keys splice the parent's key bytes
            # (a power toggle edits exactly one powered-flag byte; a
            # null action edits nothing) instead of re-encoding the
            # applied configuration — identical bytes by the codec's
            # layout.
            parent_key = vertex.key
            powered_base = 10 * len(codec.vm_ids)
            host_slot = codec.host_index
            # Pass 1 — transient (perf + power) utility rates and
            # durations per child, through the per-round memo
            # (predictions are interned, so distinct ids are few).
            n_sel = len(predictions)
            dur_l = [0.0] * n_sel
            trate_l = [0.0] * n_sel
            for j, predicted in enumerate(predictions):
                tkey = id(predicted)
                rates = memo_get(tkey)
                if rates is None:
                    sparse = sparse_get(tkey)
                    if sparse is None:
                        # Walk the (small) rt_delta dict, not the whole
                        # workload vector; sorting by position restores
                        # the workload-order iteration the legacy loop
                        # uses (positions are unique per app).
                        touched = []
                        for app, rt_d in predicted.rt_delta.items():
                            if rt_d != 0.0:
                                pos = pos_get(app)
                                if pos is not None:
                                    touched.append(
                                        (pos[0], app, pos[1], rt_d)
                                    )
                        touched.sort()
                        transient_sparse[tkey] = sparse = (
                            predicted, tuple(touched),
                        )
                    entries = sparse[1]
                    if not entries:
                        perf_rate = prefix[n_apps]
                    else:
                        k = entries[0][0]
                        acc = prefix[k]
                        for pos, app, rate, rt_d in entries:
                            while k < pos:
                                acc = acc + base_rates[k]
                                k += 1
                            rt_after = base_rts[app] + rt_d
                            mkey = (app, rt_after)
                            value = util_get(mkey)
                            if value is None:
                                value = perf_rate_of(app, rate, rt_after)
                                util_memo[mkey] = value
                            acc = acc + value
                            k += 1
                        while k < n_apps:
                            acc = acc + base_rates[k]
                            k += 1
                        perf_rate = acc
                    power_delta = predicted.power_delta_watts
                    if power_delta == 0.0:
                        power_rate = base_power_rate
                    else:
                        watts_after = parent_watts + power_delta
                        pkey = ("", watts_after)
                        power_rate = util_get(pkey)
                        if power_rate is None:
                            power_rate = power_rate_of(watts_after)
                            util_memo[pkey] = power_rate
                    transient_memo[tkey] = rates = (perf_rate, power_rate)
                dur_l[j] = predicted.duration
                trate_l[j] = rates[0] + rates[1]
            # Pass 2 — the per-child scalar chains.  Wide rounds run
            # them as elementwise array ops: each lane replays the
            # exact scalar expressions (min -> conditional assignment,
            # where -> conditional zero), and numpy's elementwise
            # +,-,*,minimum are the same IEEE double operations —
            # bit-identical per child.  Narrow (pruned) rounds keep the
            # scalar loop, which beats the kernels' fixed setup there.
            if n_sel >= 24:
                dur_a = np.asarray(dur_l)
                eff_a = np.minimum(dur_a, remaining_window)
                trate_a = np.minimum(np.asarray(trate_l), ideal_rate)
                elapsed_a = parent_elapsed + dur_a
                accrued_a = parent_accrued + eff_a * trate_a
                remaining_a = window - elapsed_a
                # ``bound``/priority inlined (identical arithmetic).
                utility_a = (
                    np.where(remaining_a > 0.0, remaining_a, 0.0)
                    * ideal_rate
                    + accrued_a
                )
                prio_a = (
                    utility_a
                    - guidance_weight * np.asarray(togo_list) * rate_gap
                )
                elapsed_l = elapsed_a.tolist()
                accrued_l = accrued_a.tolist()
                utility_l = utility_a.tolist()
                prio_l = prio_a.tolist()
            else:
                elapsed_l = [0.0] * n_sel
                accrued_l = [0.0] * n_sel
                utility_l = [0.0] * n_sel
                prio_l = [0.0] * n_sel
                for j in range(n_sel):
                    duration = dur_l[j]
                    effective = (
                        duration if duration < remaining_window
                        else remaining_window
                    )
                    transient_rate = trate_l[j]
                    if ideal_rate < transient_rate:
                        transient_rate = ideal_rate
                    elapsed = parent_elapsed + duration
                    accrued = parent_accrued + effective * transient_rate
                    remaining = window - elapsed
                    # ``bound``/priority inlined (identical arithmetic).
                    utility = (
                        remaining if remaining > 0.0 else 0.0
                    ) * ideal_rate + accrued
                    elapsed_l[j] = elapsed
                    accrued_l[j] = accrued
                    utility_l[j] = utility
                    prio_l[j] = (
                        utility
                        - guidance_weight * togo_list[j] * rate_gap
                    )
            # Pass 3 — emit: lazy payload tuples for non-candidate
            # single-edit children, eager vertices for the rest.
            for j, (column, action) in enumerate(
                zip(sel.tolist(), actions_sel)
            ):
                delta = deltas[column]
                accrued = accrued_l[j]
                elapsed = elapsed_l[j]
                utility = utility_l[j]
                if delta:
                    key_bytes = keys[j]
                    is_cand = (
                        cand_list[j]
                        if cand_list is not None
                        else child_candidate(
                            state,
                            parent_config,
                            delta,
                            frozenset(vm_id for vm_id, _ in delta),
                        )
                    )
                    priority = prio_l[j]
                    if not is_cand:
                        # ~99% of children: no ``_Vertex`` (or even
                        # ``Configuration``) until the heap pops them.
                        children_append((
                            key_bytes,
                            priority,
                            utility,
                            accrued,
                            elapsed,
                            dist_list[j],
                            action,
                            delta,
                            lineage,
                        ))
                        continue
                    (vm_id, placement), = delta
                    child = _Vertex(
                        configuration=(
                            config_remove(vm_id)
                            if placement is None
                            else config_replace(vm_id, placement)
                        ),
                        actions=parent_actions + (action,),
                        accrued=accrued,
                        elapsed=elapsed,
                        distance=dist_list[j],
                        is_candidate=True,
                        state=None,
                        pending=(state, delta),
                        parent_configuration=parent_config,
                        changed_vms=frozenset((vm_id,)),
                        key=key_bytes,
                        pending_config=None,
                    )
                else:
                    # Null/host-power actions share the parent's state,
                    # but their powered set differs — full togo path.
                    try:
                        new_config = action.apply(
                            parent_config, self.catalog, self.limits
                        )
                    except ActionError:
                        continue
                    togo_child = basis.togo_seconds(state, new_config)
                    priority = (
                        utility - guidance_weight * togo_child * rate_gap
                    )
                    akind = type(action)
                    if parent_key is None:
                        child_key = codec.encode_key(new_config)
                    elif akind is PowerOnHost:
                        off = powered_base + host_slot[action.host_id]
                        child_key = (
                            parent_key[:off] + b"\x01"
                            + parent_key[off + 1 :]
                        )
                    elif akind is PowerOffHost:
                        off = powered_base + host_slot[action.host_id]
                        child_key = (
                            parent_key[:off] + b"\x00"
                            + parent_key[off + 1 :]
                        )
                    elif akind is NullAction:
                        child_key = parent_key
                    else:
                        child_key = codec.encode_key(new_config)
                    child = _Vertex(
                        configuration=new_config,
                        actions=parent_actions + (action,),
                        accrued=accrued,
                        elapsed=elapsed,
                        distance=dist_list[j],
                        is_candidate=basis.is_candidate(state),
                        state=state,
                        pending=None,
                        parent_configuration=parent_config,
                        changed_vms=frozenset(),
                        key=child_key,
                        pending_config=None,
                    )
                child.utility = utility
                child.priority = priority
                children_append(child)
            return children

        def materialize_lazy(payload: tuple) -> _Vertex:
            """A popped lazy child becomes a real vertex.

            The payload carries exactly what ``build_children_array``
            computed for the child; the vertex built here is
            field-for-field the one the eager path would have built
            (``configuration`` stays pending — the pop loop below
            materializes it next, as for any lazy-config vertex).
            """
            (
                key_bytes,
                priority,
                utility,
                accrued,
                elapsed,
                distance,
                action,
                delta,
                lineage,
            ) = payload
            parent_config, parent_actions, parent_state = lineage
            child = _Vertex(
                configuration=None,
                actions=parent_actions + (action,),
                accrued=accrued,
                elapsed=elapsed,
                distance=distance,
                is_candidate=False,
                state=None,
                pending=(parent_state, delta),
                parent_configuration=parent_config,
                changed_vms=frozenset(vm_id for vm_id, _ in delta),
                key=key_bytes,
                pending_config=(parent_config, delta),
            )
            child.utility = utility
            child.priority = priority
            return child

        def warm_candidates(parent: _Vertex, children: list) -> None:
            """Pre-solve candidate children's steady estimates through
            the batched LQN path before their terminal twins ask one by
            one (identical values either way — the batch kernel is
            bit-identical to the per-configuration solver).

            The batch is a backstop, not the default: while the parent's
            solver state is warm, each child resolves through the
            incremental delta path, which re-solves only the affected
            tiers and is strictly cheaper than any full solve — batched
            or not.  Only when the parent's state is cold (evicted, or
            first touch under a new workload key) do the children
            full-solve one by one, and then one vectorized batch beats
            that serial trickle.
            """
            if self.estimator.has_state(parent.configuration, key=wkey):
                return
            candidates = [
                child.configuration
                for child in children
                if type(child) is not tuple and child.is_candidate
            ]
            for start in range(0, len(candidates), settings.batch_size):
                self.estimator.estimate_batch(
                    candidates[start : start + settings.batch_size],
                    workloads,
                    key=wkey,
                )

        root = _Vertex(
            configuration=current,
            actions=(),
            accrued=0.0,
            elapsed=0.0,
            state=basis.full_state(current) if incremental else None,
            is_candidate=current.is_candidate(self.catalog, self.limits),
            key=codec.encode_key(current) if codec is not None else None,
        )
        root.distance = (
            basis.distance(root.state)
            if incremental
            else vertex_distance(current)
        )
        root.utility = bound(root)
        finalize(root)
        push_with_terminal(root)

        # Seed the open set with direct transition plans to the ideal
        # configuration and to each per-host-count Perf-Pwr alternative
        # (plus all their prefixes).  This installs good incumbent
        # terminals — full and partial adaptations — that the graph
        # search must beat, which bounds its effective depth.
        if settings.seed_with_plan:
            targets = [ideal.configuration] + [
                alternative.configuration
                for alternative in ideal.alternatives
                if alternative.configuration != ideal.configuration
            ]
            for target in targets:
                seed_vertex = root
                for action in plan_transition(
                    current, target, self.catalog, self.limits
                ):
                    if action.kind not in settings.allowed_kinds:
                        break  # keep the valid prefix only
                    seed_vertex = build_child(
                        seed_vertex, action, steady_of(seed_vertex)
                    )
                    if seed_vertex is None:
                        break
                    push_with_terminal(seed_vertex)

        expansions = 0
        result_vertex: Optional[_Vertex] = None
        # Hoisted once: per-expansion wall timing only when telemetry
        # is on (two clock reads per expansion otherwise saved).
        expand_hist = (
            _telemetry.registry.histogram("search.expand_seconds")
            if _telemetry.enabled
            else None
        )
        while heap:
            neg_priority, _, _, vertex = heapq.heappop(heap)
            if type(vertex) is tuple:
                # Lazy array-round child: check staleness on the byte
                # key first so stale pops never pay materialization.
                if (
                    best_priority.get((vertex[0], False), -math.inf)
                    > -neg_priority + 1e-12
                ):
                    continue  # stale heap entry
                vertex = materialize_lazy(vertex)
            else:
                key = (
                    vertex.key
                    if vertex.key is not None
                    else vertex.configuration,
                    vertex.terminal,
                )
                if best_priority.get(key, -math.inf) > -neg_priority + 1e-12:
                    continue  # stale heap entry
            if vertex.configuration is None:
                # Array-core lazy child popped for expansion: build the
                # configuration now (stale pops above never pay this).
                parent_config, delta = vertex.pending_config
                (vm_id, placement), = delta
                vertex.configuration = (
                    parent_config.remove(vm_id)
                    if placement is None
                    else parent_config.replace(vm_id, placement)
                )
                vertex.pending_config = None
            if vertex.terminal:
                result_vertex = vertex
                break
            if expansions >= settings.max_expansions:
                result_vertex = best_terminal
                break
            if deadline is not None and (
                time.perf_counter() - wall_start >= deadline
            ):
                # Cooperative watchdog check, once per expansion: the
                # wall time can overshoot the deadline by at most one
                # expansion round (whose executor rounds are themselves
                # bounded by the hard timer in ``dispatch``).
                deadline_hit = True
                result_vertex = best_terminal
                break
            expansions += 1
            if expand_hist is not None:
                expand_t0 = time.perf_counter()
            if len(vertex.actions) >= settings.max_plan_actions:
                continue

            with _phases.phase("enumerate"):
                if array_on:
                    blocks: list = []
                    possible = self._enumerate_actions(
                        vertex.configuration, ideal_caps, blocks_out=blocks
                    )
                else:
                    possible = self._enumerate_actions(
                        vertex.configuration, ideal_caps
                    )
            parent_steady = steady_of(vertex)
            children: list[_Vertex] = []
            tick = settings.per_vertex_seconds
            if array_on:
                # Array round (DESIGN.md §13): validity, ranking and
                # the per-child reductions run as matrix kernels over
                # the plan's pre-encoded columns; the executor round
                # only predicts costs for the selected actions (all
                # pre-validated, so the lighter ``predict`` method
                # applies on the non-pruned path too).
                state = vertex_state(vertex)
                plan_cache = self._round_plan_cache
                plan_key = tuple(map(id, blocks))
                plan = plan_cache.get(plan_key)
                if plan is None:
                    if len(plan_cache) >= _ROUND_ACTION_CACHE_LIMIT:
                        plan_cache.clear()
                    plan = RoundPlan(blocks, len(possible))
                    plan_cache[plan_key] = plan
                counts = (
                    replica_tier_counts(self.catalog, vertex.configuration)
                    if plan.remove_checks
                    else None
                )
                valid_idx = np.flatnonzero(plan.valid_mask(counts))
                n_valid = valid_idx.size
                values = abasis.round_values(plan)
                parent_rows = abasis.parent_rows(
                    vertex.configuration, vertex.key
                )
                if _telemetry.enabled:
                    _telemetry.registry.counter("solver.array_rounds").inc()
                if pruning and len(possible) > 1:
                    tick += n_valid * settings.per_child_apply_seconds
                    dist_full = abasis.distances(state, plan, values)
                    # Stable argsort over the valid columns ranks
                    # exactly like the serial sort by (distance,
                    # enumeration order).
                    ranked = np.argsort(dist_full[valid_idx], kind="stable")
                    keep = max(
                        1, math.ceil(settings.prune_fraction * n_valid)
                    )
                    if n_valid > keep:
                        pruned_away += n_valid - keep
                        if collector is not None:
                            collector.note_pruned(
                                n_valid - keep,
                                float(dist_full[valid_idx][ranked[keep]]),
                            )
                    sel = valid_idx[ranked[:keep]]
                    actions_sel = [possible[k] for k in sel.tolist()]
                    predictions = predict_round(
                        vertex.configuration, actions_sel
                    )
                    with _phases.phase("merge"):
                        children = build_children_array(
                            vertex,
                            state,
                            parent_steady,
                            plan,
                            values,
                            sel,
                            actions_sel,
                            predictions,
                            dist_full[sel],
                            parent_rows,
                        )
                    tick += len(children) * settings.per_child_eval_seconds
                else:
                    sel = valid_idx
                    actions_sel = (
                        possible
                        if n_valid == plan.n
                        else [possible[k] for k in sel.tolist()]
                    )
                    predictions = predict_round(
                        vertex.configuration, actions_sel
                    )
                    with _phases.phase("merge"):
                        children = build_children_array(
                            vertex,
                            state,
                            parent_steady,
                            plan,
                            values,
                            sel,
                            actions_sel,
                            predictions,
                            None,
                            parent_rows,
                        )
                    tick += len(children) * (
                        settings.per_child_apply_seconds
                        + settings.per_child_eval_seconds
                    )
                warm_candidates(vertex, children)
            elif parallel_on:
                state = vertex_state(vertex)
                if pruning and len(possible) > 1:
                    # Pruned round: reachability and ranking use the
                    # resolver's lightweight scatter facts (no Placement
                    # or delta-tuple allocation for the ~95% of actions
                    # the prune discards); only the ranked survivors
                    # materialize deltas and go through the executor —
                    # in ranked order, matching the serial build order.
                    reachable_batch: list[tuple] = []
                    resolver = RoundDeltaResolver(
                        vertex.configuration, self.catalog, self.limits
                    )
                    scatter_of = resolver.scatter
                    for order, action in enumerate(possible):
                        try:
                            scatter = scatter_of(action)
                        except ActionError:
                            continue
                        reachable_batch.append((order, action, scatter))
                    tick += (
                        len(reachable_batch) * settings.per_child_apply_seconds
                    )
                    with _phases.phase("score"):
                        distances = batch_distances(
                            state, [entry[2] for entry in reachable_batch]
                        )
                    # Stable argsort == sort by (distance, position);
                    # positions are monotone in enumeration order, so
                    # this ranks exactly like the serial
                    # ``sort(key=(distance, order))``.
                    ranked = np.argsort(distances, kind="stable")
                    keep = max(
                        1,
                        math.ceil(
                            settings.prune_fraction * len(reachable_batch)
                        ),
                    )
                    if len(reachable_batch) > keep:
                        pruned_away += len(reachable_batch) - keep
                        if collector is not None:
                            collector.note_pruned(
                                len(reachable_batch) - keep,
                                float(distances[ranked[keep]]),
                            )
                    survivors = [reachable_batch[k] for k in ranked[:keep]]
                    predictions = dispatch(
                        "predict",
                        vertex.configuration,
                        [entry[1] for entry in survivors],
                    )
                    entries = [
                        (order, action, resolver.delta(action), predicted)
                        for (order, action, _), predicted in zip(
                            survivors, predictions
                        )
                    ]
                    with _phases.phase("merge"):
                        children = build_children_batched(
                            vertex,
                            state,
                            parent_steady,
                            entries,
                            distances=distances[ranked[:keep]],
                        )
                    tick += len(children) * settings.per_child_eval_seconds
                else:
                    scored = dispatch("score", vertex.configuration, possible)
                    entries = [
                        (order, action, result[0], result[1])
                        for order, (action, result) in enumerate(
                            zip(possible, scored)
                        )
                        if result is not None
                    ]
                    with _phases.phase("merge"):
                        children = build_children_batched(
                            vertex, state, parent_steady, entries
                        )
                    tick += len(children) * (
                        settings.per_child_apply_seconds
                        + settings.per_child_eval_seconds
                    )
                warm_candidates(vertex, children)
            elif pruning and len(possible) > 1:
                # Pruned expansion: generate configurations cheaply,
                # keep the 5% closest to the ideal, and only fully
                # evaluate those — the paper's "decreasing search width
                # of each vertex".
                reachable: list[tuple] = []
                if incremental:
                    # Rank straight from each action's placement delta:
                    # the child configuration is only materialized for
                    # the few survivors below.
                    for order, action in enumerate(possible):
                        try:
                            delta = action.placement_delta(
                                vertex.configuration, self.catalog, self.limits
                            )
                        except ActionError:
                            continue
                        reachable.append(
                            (
                                basis.child_distance(vertex.state, delta),
                                order,
                                action,
                                None,
                                delta,
                            )
                        )
                else:
                    for order, action in enumerate(possible):
                        try:
                            new_config = action.apply(
                                vertex.configuration, self.catalog, self.limits
                            )
                        except ActionError:
                            continue
                        reachable.append(
                            (
                                vertex_distance(new_config),
                                order,
                                action,
                                new_config,
                                None,
                            )
                        )
                tick += len(reachable) * settings.per_child_apply_seconds
                reachable.sort(key=lambda item: (item[0], item[1]))
                keep = max(
                    1, math.ceil(settings.prune_fraction * len(reachable))
                )
                if len(reachable) > keep:
                    pruned_away += len(reachable) - keep
                    if collector is not None:
                        collector.note_pruned(
                            len(reachable) - keep, reachable[keep][0]
                        )
                with _phases.phase("merge"):
                    for _, _, action, new_config, delta in reachable[:keep]:
                        child = build_child(
                            vertex,
                            action,
                            parent_steady,
                            new_config=new_config,
                            delta=delta,
                        )
                        if child is not None:
                            children.append(child)
                tick += len(children) * settings.per_child_eval_seconds
            else:
                for action in possible:
                    child = build_child(vertex, action, parent_steady)
                    if child is not None:
                        children.append(child)
                tick += len(children) * (
                    settings.per_child_apply_seconds
                    + settings.per_child_eval_seconds
                )
            generated += len(children)
            if expand_hist is not None:
                expand_hist.observe(time.perf_counter() - expand_t0)
            if deadline_hit:
                # An executor round tripped the hard timer mid-round;
                # its partial children are discarded and the search
                # commits to the best incumbent found in time.
                result_vertex = best_terminal
                break

            # Self-aware accounting (Algorithm 1's T, UT, UpwrT, UH).
            elapsed_search += tick
            accrued_current += tick * current_rate
            accrued_search_power += tick * search_power_rate
            budget -= tick * budget_rate
            if settings.self_aware and not pruning:
                if (accrued_current + accrued_search_power) >= budget or (
                    elapsed_search >= delay_threshold
                ):
                    pruning = True
            if (
                settings.self_aware
                and best_terminal is not None
                and elapsed_search
                >= settings.hard_stop_factor * delay_threshold
            ):
                # Self-awareness in the limit: the decision itself has
                # become too expensive — commit to the best incumbent.
                result_vertex = best_terminal
                break

            # Lazy payload tuples go through an inlined ``push`` (same
            # dedup rule, same counter discipline, same heap shape —
            # the tie-breaker is the child's action count, a round
            # constant); real vertices take the full path.  Candidates
            # are never lazy, so terminal twins are not skipped.
            child_rank = -(len(vertex.actions) + 1)
            with _phases.phase("frontier"):
                for child in children:
                    if type(child) is tuple:
                        pkey = (child[0], False)
                        known = best_priority.get(pkey)
                        priority = child[1]
                        if known is not None and known >= priority - 1e-12:
                            continue
                        best_priority[pkey] = priority
                        heapq.heappush(
                            heap,
                            (-priority, child_rank, -next(counter), child),
                        )
                    else:
                        push_with_terminal(child)

        if result_vertex is None:
            result_vertex = best_terminal
        if result_vertex is None:
            # Nothing reachable improved on staying put; keep current.
            result_vertex = _Vertex(
                configuration=current,
                actions=(),
                accrued=0.0,
                elapsed=0.0,
                terminal=True,
                is_candidate=root.is_candidate,
            )
            result_vertex.utility = window * current_rate

        decision_seconds = max(
            settings.per_vertex_seconds, elapsed_search
        )
        if collector is not None and deadline_hit:
            collector.note_deadline(
                len(heap), -heap[0][0] if heap else None
            )
        return complete(
            actions=tuple(
                action
                for action in result_vertex.actions
                if not isinstance(action, NullAction)
            ),
            final_configuration=result_vertex.configuration,
            predicted_utility=result_vertex.utility,
            expansions=expansions,
            decision_seconds=decision_seconds,
            pruning_activated=pruning,
            optimal=expansions < settings.max_expansions and not deadline_hit,
            deadline_aborted=deadline_hit,
            action_chain=result_vertex.actions,
        )

    # -- action enumeration ------------------------------------------------------

    def _enumerate_actions(
        self,
        configuration: Configuration,
        target_caps: Optional[Mapping[str, float]] = None,
        blocks_out: Optional[list] = None,
    ) -> list[AdaptationAction]:
        """All one-step actions applicable from ``configuration``.

        When ``target_caps`` (the ideal configuration's caps) is given,
        multi-step cap jumps straight to a VM's ideal cap are also
        generated so the search can take the efficient highway instead
        of interleaving unit steps combinatorially.

        With ``blocks_out`` (array core), the matching ``ActionBlock``
        per emitted sublist is appended to it — cached under the same
        keys as the sublists themselves, so a cache-warm round encodes
        nothing.  Concatenated, the blocks' columns mirror the returned
        action list position for position.
        """
        settings = self.settings
        kinds = settings.allowed_kinds
        limits = self.limits
        step = limits.cpu_cap_step
        actions: list[AdaptationAction] = []
        cache = self._action_cache
        powered_set = configuration.powered_hosts
        powered = self._powered_order.get(powered_set)
        if powered is None:
            powered = sorted(powered_set)
            self._powered_order[powered_set] = powered
        if self.scope_hosts is not None:
            powered = [host for host in powered if host in self.scope_hosts]
        powered_key = tuple(powered)
        # Hash the round-constant context once; per-VM cache keys carry
        # the small interned token instead of the nested tuples.
        ctx_tokens = self._ctx_tokens
        ctx = (kinds, powered_key)
        token = ctx_tokens.get(ctx)
        if token is None:
            token = len(ctx_tokens)
            ctx_tokens[ctx] = token

        def interned(key: tuple, factory, *args) -> AdaptationAction:
            action = cache.get(key)
            if action is None:
                action = factory(*args)
                cache[key] = action
            return action

        # One O(placements) pass instead of a replica_count() scan per
        # candidate action.
        replica_counts: dict[tuple[str, str], int] = {}
        tier_of = self._vm_tier_key
        for placed_vm, _ in configuration.placement_items():
            tier_key = tier_of.get(placed_vm)
            if tier_key is None:
                descriptor = self.catalog.get(placed_vm)
                tier_key = (descriptor.app_name, descriptor.tier_name)
                tier_of[placed_vm] = tier_key
            replica_counts[tier_key] = replica_counts.get(tier_key, 0) + 1

        # A VM's action sublist depends only on the facts in its cache
        # key, so identical (placement, target, powered) situations —
        # which recur constantly across a search's expansion rounds —
        # reuse the interned sublist instead of re-running the checks.
        vm_cache = self._round_action_cache
        if len(vm_cache) >= _ROUND_ACTION_CACHE_LIMIT:
            vm_cache.clear()
        block_cache = None
        statics = None
        if blocks_out is not None:
            statics = self._ensure_array_statics()
            block_cache = self._round_block_cache
            if len(block_cache) >= _ROUND_ACTION_CACHE_LIMIT:
                block_cache.clear()
        tier_limits = self._tier_limits
        for vm_id, placement in configuration.placement_items():
            if (
                self.scope_hosts is not None
                and placement.host_id not in self.scope_hosts
            ):
                continue
            target = (
                target_caps.get(vm_id) if target_caps is not None else None
            )
            if "remove_replica" in kinds:
                tier_key = tier_of[vm_id]
                bounds = tier_limits.get(tier_key)
                if bounds is None:
                    tier = self.applications.get(tier_key[0]).tier(
                        tier_key[1]
                    )
                    bounds = (tier.min_replicas, tier.max_replicas)
                    tier_limits[tier_key] = bounds
                can_remove = replica_counts.get(tier_key, 0) > bounds[0]
            else:
                can_remove = False
            sub_key = (
                token,
                vm_id,
                placement.host_id,
                placement.cpu_cap,
                target,
                can_remove,
            )
            sub = vm_cache.get(sub_key)
            if sub is None:
                sub = []
                if "increase_cpu" in kinds and (
                    placement.cpu_cap + step <= limits.max_total_cpu_cap + 1e-9
                ):
                    sub.append(
                        interned(("inc", vm_id), IncreaseCpu, vm_id, step)
                    )
                if "decrease_cpu" in kinds and (
                    placement.cpu_cap - step >= limits.min_vm_cpu_cap - 1e-9
                ):
                    sub.append(
                        interned(("dec", vm_id), DecreaseCpu, vm_id, step)
                    )
                if target is not None:
                    steps = round((target - placement.cpu_cap) / step)
                    if steps > 1 and "increase_cpu" in kinds:
                        sub.append(
                            interned(
                                ("inc", vm_id, steps),
                                IncreaseCpu,
                                vm_id,
                                step,
                                steps,
                            )
                        )
                    elif steps < -1 and "decrease_cpu" in kinds:
                        sub.append(
                            interned(
                                ("dec", vm_id, -steps),
                                DecreaseCpu,
                                vm_id,
                                step,
                                -steps,
                            )
                        )
                if "migrate" in kinds:
                    for host_id in powered:
                        if host_id != placement.host_id:
                            sub.append(
                                interned(
                                    ("mig", vm_id, host_id),
                                    MigrateVm,
                                    vm_id,
                                    host_id,
                                )
                            )
                if can_remove:
                    sub.append(
                        interned(("rem", vm_id), RemoveReplica, vm_id)
                    )
                vm_cache[sub_key] = sub
            actions.extend(sub)
            if blocks_out is not None:
                block = block_cache.get(sub_key)
                if block is None:
                    block = vm_block(
                        statics,
                        self.catalog,
                        sub,
                        vm_id,
                        placement.host_id,
                        placement.cpu_cap,
                        bounds[0] if "remove_replica" in kinds else 1,
                    )
                    block_cache[sub_key] = block
                blocks_out.append(block)

        if "add_replica" in kinds:
            for app in self.applications:
                for tier in app.tiers:
                    count = replica_counts.get((app.name, tier.name), 0)
                    if count >= tier.max_replicas:
                        continue
                    dormant_vm = None
                    ideal_cap = None
                    if target_caps is not None:
                        # The dormant VM that would be activated next.
                        for descriptor in self.catalog.for_tier(
                            app.name, tier.name
                        ):
                            if not configuration.is_placed(descriptor.vm_id):
                                dormant_vm = descriptor.vm_id
                                ideal_cap = target_caps.get(descriptor.vm_id)
                                break
                    add_key = (
                        "add",
                        app.name,
                        tier.name,
                        dormant_vm,
                        ideal_cap,
                        token,
                    )
                    sub = vm_cache.get(add_key)
                    if sub is None:
                        sub = []
                        caps = {settings.replica_cap}
                        if ideal_cap is not None:
                            caps.add(ideal_cap)
                        for host_id in powered:
                            for cap in sorted(caps):
                                sub.append(
                                    interned(
                                        (
                                            "add",
                                            app.name,
                                            tier.name,
                                            host_id,
                                            cap,
                                        ),
                                        AddReplica,
                                        app.name,
                                        tier.name,
                                        host_id,
                                        cap,
                                    )
                                )
                        vm_cache[add_key] = sub
                    actions.extend(sub)
                    if blocks_out is not None:
                        block = block_cache.get(add_key)
                        if block is None:
                            block = add_block(statics, sub, dormant_vm)
                            block_cache[add_key] = block
                        blocks_out.append(block)

        if "power_on" in kinds:
            for host_id in self.host_ids:
                if host_id not in configuration.powered_hosts:
                    actions.append(
                        interned(("pon", host_id), PowerOnHost, host_id)
                    )
                    if blocks_out is not None:
                        blocks_out.append(statics.power_block)
        if "power_off" in kinds:
            for host_id in sorted(configuration.idle_hosts()):
                actions.append(
                    interned(("poff", host_id), PowerOffHost, host_id)
                )
                if blocks_out is not None:
                    blocks_out.append(statics.power_block)
        return actions

    # -- scoping ----------------------------------------------------------------

    def _project_ideal(
        self,
        current: Configuration,
        ideal: PerfPwrResult,
        workloads: Mapping[str, float],
    ) -> PerfPwrResult:
        """Project the global ideal onto this controller's host scope.

        Out-of-scope VMs keep their current placement and cap; in-scope
        VMs adopt the ideal's caps, and the ideal's host when that host
        is inside the scope.  Replication and powered hosts stay as
        they are — 1st-level controllers only tune caps and migrate
        locally.
        """
        assert self.scope_hosts is not None
        kinds = self.settings.allowed_kinds
        placements = dict(current.placements)
        for vm_id, placement in current.placements.items():
            if placement.host_id not in self.scope_hosts:
                continue
            ideal_placement = ideal.configuration.placement_of(vm_id)
            if ideal_placement is None:
                if "remove_replica" in kinds:
                    descriptor = self.catalog.get(vm_id)
                    tier_placed = sum(
                        1
                        for peer in self.catalog.for_tier(
                            descriptor.app_name, descriptor.tier_name
                        )
                        if peer.vm_id in placements
                    )
                    if tier_placed > 1:
                        del placements[vm_id]
                continue
            host = (
                ideal_placement.host_id
                if "migrate" in kinds
                and ideal_placement.host_id in self.scope_hosts
                and ideal_placement.host_id in current.powered_hosts
                else placement.host_id
            )
            placements[vm_id] = Placement(host, ideal_placement.cpu_cap)
        if "add_replica" in kinds:
            for descriptor in self.catalog:
                vm_id = descriptor.vm_id
                if vm_id in placements or current.is_placed(vm_id):
                    continue
                ideal_placement = ideal.configuration.placement_of(vm_id)
                if (
                    ideal_placement is not None
                    and ideal_placement.host_id in self.scope_hosts
                    and ideal_placement.host_id in current.powered_hosts
                ):
                    placements[vm_id] = ideal_placement
        projected = Configuration(placements, current.powered_hosts)
        estimate = self.estimator.estimate(projected, workloads)
        return PerfPwrResult(
            configuration=projected,
            perf_rate=estimate.perf_rate,
            power_rate=estimate.power_rate,
            estimate=estimate,
            hosts_used=len(projected.used_hosts()),
            evaluations=0,
        )

    # -- cost-to-go guidance ---------------------------------------------------

    def _togo_durations(
        self, workloads: Mapping[str, float]
    ) -> dict[tuple[str, str], float]:
        """Per-(action family, tier) duration estimates at this workload."""
        durations: dict[tuple[str, str], float] = {}
        mean_rate = (
            sum(workloads.values()) / len(workloads) if workloads else 0.0
        )
        tiers = {
            (tier.name) for app in self.applications for tier in app.tiers
        }
        table = self.cost_manager.table
        for kind in ("migrate", "add_replica", "remove_replica"):
            for tier in tiers:
                try:
                    entry = table.lookup(kind, tier, mean_rate)
                except KeyError:
                    continue
                durations[(kind, tier)] = entry.duration
        for kind in ("power_on", "power_off"):
            try:
                entry = table.lookup(kind, "-", mean_rate)
            except KeyError:
                continue
            durations[(kind, "-")] = entry.duration
        return durations

    def _togo_seconds(
        self,
        configuration: Configuration,
        ideal: Configuration,
        durations: Mapping[tuple[str, str], float],
    ) -> float:
        """Estimated adaptation seconds separating ``configuration``
        from the ideal configuration (migrations, replica changes, cap
        steps, host power cycles)."""
        step = self.limits.cpu_cap_step
        seconds = 0.0
        for descriptor in self.catalog:
            seconds += _togo_vm_term(
                configuration.placement_of(descriptor.vm_id),
                ideal.placement_of(descriptor.vm_id),
                descriptor.tier_name,
                durations,
                step,
                self.limits.min_vm_cpu_cap,
            )
        for host_id in ideal.powered_hosts - configuration.powered_hosts:
            seconds += durations.get(("power_on", "-"), 90.0)
        for host_id in configuration.powered_hosts - ideal.powered_hosts:
            seconds += durations.get(("power_off", "-"), 30.0)
        return seconds

    # -- distance to the ideal configuration ---------------------------------------

    def _ideal_distance_basis(
        self, ideal: PerfPwrResult
    ) -> tuple[dict[str, float], dict[str, float]]:
        """Per-VM weights (relative ideal size) and ideal caps."""
        caps = {
            vm_id: placement.cpu_cap
            for vm_id, placement in ideal.configuration.placements.items()
        }
        total = sum(caps.values()) or 1.0
        weights = {
            descriptor.vm_id: caps.get(descriptor.vm_id, 0.0) / total
            for descriptor in self.catalog
        }
        # Give dormant-in-ideal VMs a small weight so extra replicas
        # still register as distance.
        floor = 0.5 / max(1, len(weights))
        weights = {
            vm_id: max(weight, floor) for vm_id, weight in weights.items()
        }
        return weights, caps

    def _distance(
        self,
        configuration: Configuration,
        ideal_caps: Mapping[str, float],
        weights: Mapping[str, float],
        ideal: PerfPwrResult,
    ) -> float:
        """Weighted cap distance plus placement mismatch (paper §IV-B)."""
        cap_term = 0.0
        matches = 0
        total = 0
        for descriptor in self.catalog:
            vm_id = descriptor.vm_id
            placement = configuration.placement_of(vm_id)
            cap = placement.cpu_cap if placement is not None else 0.0
            ideal_cap = ideal_caps.get(vm_id, 0.0)
            cap_term += weights[vm_id] * (cap - ideal_cap) ** 2
            total += 1
            ideal_placement = ideal.configuration.placement_of(vm_id)
            ideal_host = (
                ideal_placement.host_id if ideal_placement is not None else None
            )
            host = placement.host_id if placement is not None else None
            if host == ideal_host:
                matches += 1
        placement_term = 1.0 - (matches / total if total else 1.0)
        return math.sqrt(cap_term) + placement_term
