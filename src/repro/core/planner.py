"""Diff-based transition planning.

Given a current and a target configuration, produce an ordered sequence
of adaptation actions transforming one into the other: power hosts on,
shed capacity (cap decreases, replica removals), migrate, grow capacity
(replica additions, cap increases), and finally power empty hosts off.
The ordering keeps intermediate states as feasible as possible
(capacity is released before it is claimed) though, as in the paper,
intermediate configurations are allowed to violate packing constraints
transiently.

Used by the Perf-Pwr and Pwr-Cost baseline controllers (which compute a
target configuration and then need a plan) and to seed Mistral's A*
search with a direct path to the ideal configuration.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.actions import (
    AdaptationAction,
    AddReplica,
    DecreaseCpu,
    IncreaseCpu,
    MigrateVm,
    PowerOffHost,
    PowerOnHost,
    RemoveReplica,
)
from repro.core.config import Configuration, ConstraintLimits, VmCatalog


def plan_transition(
    current: Configuration,
    target: Configuration,
    catalog: VmCatalog,
    limits: ConstraintLimits,
) -> list[AdaptationAction]:
    """Ordered actions transforming ``current`` into ``target``.

    The returned plan, applied sequentially, yields a configuration
    equal to ``target`` up to replica identity within a tier (adding a
    replica activates the first dormant VM of the tier, which may not
    be the exact VM id the target names — the configurations are
    behaviourally identical).
    """
    actions: list[AdaptationAction] = []
    step = limits.cpu_cap_step
    state = current

    def cap_steps(delta: float) -> int:
        return round(abs(delta) / step)

    # 1. Boot hosts the target needs.
    for host_id in sorted(target.powered_hosts - state.powered_hosts):
        action = PowerOnHost(host_id)
        state = action.apply(state, catalog, limits)
        actions.append(action)

    # 2. Release capacity: cap decreases for VMs staying put.
    for vm_id in state.placed_vm_ids():
        here = state.placement_of(vm_id)
        there = target.placement_of(vm_id)
        if here is None or there is None:
            continue
        if there.cpu_cap < here.cpu_cap - 1e-9:
            count = cap_steps(here.cpu_cap - there.cpu_cap)
            if count:
                action = DecreaseCpu(vm_id, step, count=count)
                state = action.apply(state, catalog, limits)
                actions.append(action)

    # 3. Remove replicas the target no longer places.
    for vm_id in state.placed_vm_ids():
        if target.placement_of(vm_id) is None:
            descriptor = catalog.get(vm_id)
            count = state.replica_count(
                catalog, descriptor.app_name, descriptor.tier_name
            )
            if count <= 1:
                continue  # the last replica of a tier cannot be removed
            action = RemoveReplica(vm_id)
            state = action.apply(state, catalog, limits)
            actions.append(action)

    # 4. Migrate VMs whose host changed, most-space destinations first.
    pending = [
        vm_id
        for vm_id in state.placed_vm_ids()
        if target.placement_of(vm_id) is not None
        and target.placement_of(vm_id).host_id
        != state.placement_of(vm_id).host_id
    ]
    pending.sort(
        key=lambda vm_id: (
            state.host_cpu_load(target.placement_of(vm_id).host_id),
            vm_id,
        )
    )
    for vm_id in pending:
        action = MigrateVm(vm_id, target.placement_of(vm_id).host_id)
        state = action.apply(state, catalog, limits)
        actions.append(action)

    # 5. Add replicas the target places but the current state lacks,
    #    activating the exact VM the target names.
    for descriptor in catalog:
        vm_id = descriptor.vm_id
        there = target.placement_of(vm_id)
        if there is None or state.placement_of(vm_id) is not None:
            continue
        action = AddReplica(
            descriptor.app_name,
            descriptor.tier_name,
            there.host_id,
            there.cpu_cap,
            vm_id=vm_id,
        )
        state = action.apply(state, catalog, limits)
        actions.append(action)

    # 6. Grow caps.
    for vm_id in state.placed_vm_ids():
        here = state.placement_of(vm_id)
        there = target.placement_of(vm_id)
        if there is None:
            continue
        if there.cpu_cap > here.cpu_cap + 1e-9:
            count = cap_steps(there.cpu_cap - here.cpu_cap)
            if count:
                action = IncreaseCpu(vm_id, step, count=count)
                state = action.apply(state, catalog, limits)
                actions.append(action)

    # 7. Power off hosts the target leaves dark.
    for host_id in sorted(state.powered_hosts - target.powered_hosts):
        if not state.vms_on_host(host_id):
            action = PowerOffHost(host_id)
            state = action.apply(state, catalog, limits)
            actions.append(action)

    return actions


def plan_length_seconds(
    actions: Sequence[AdaptationAction],
    durations: dict[tuple[str, str], float],
    catalog: VmCatalog,
    cap_step_seconds: float = 1.0,
) -> float:
    """Rough duration of a plan from per-family duration estimates."""
    total = 0.0
    for action in actions:
        kind, tier = action.cost_key(catalog)
        if kind in ("increase_cpu", "decrease_cpu"):
            total += cap_step_seconds * getattr(action, "count", 1)
        else:
            total += durations.get((kind, tier), durations.get((kind, "-"), 30.0))
    return total
