"""The Perf-Pwr optimizer (paper §IV-A).

Finds the configuration that optimally trades performance utility
against power cost for a given workload while ignoring transient
adaptation costs.  Its output plays three roles: (1) the "ideal
configuration" ``c*`` and "ideal utility" ``U*`` used as the admissible
A* heuristic, (2) the Perf-Pwr baseline controller of §V-C, and (3)
(in a constrained variant) the capacity oracle of the Pwr-Cost
baseline.

Algorithm: for a decreasing number of available hosts, start from
maximum capacities/replication, attempt worst-fit-decreasing bin
packing, and — while packing fails — run a gradient search that either
shaves one VM's cap by a step or drops one replica, choosing the
candidate with the best ratio of CPU utilization reduction to
performance-utility loss; each successful packing yields a potential
optimum whose overall utility rate (performance + power) is compared
across host counts.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.apps.application import ApplicationSet
from repro.core.config import (
    Configuration,
    ConstraintLimits,
    Placement,
    VmCatalog,
)
from repro.core.estimator import SteadyEstimate, UtilityEstimator
from repro.core.lru import LruDict
from repro.telemetry import runtime as _telemetry


@dataclass(frozen=True)
class CapacityPlan:
    """Capacity vector during gradient search: active VMs and caps."""

    caps: Mapping[str, float]

    def __post_init__(self) -> None:
        object.__setattr__(self, "caps", dict(self.caps))

    def total_cap(self) -> float:
        """Sum of all VM caps."""
        return sum(self.caps.values())

    def reduce_cap(self, vm_id: str, step: float) -> "CapacityPlan":
        """One step smaller cap for one VM."""
        caps = dict(self.caps)
        caps[vm_id] = round(caps[vm_id] - step, 10)
        return CapacityPlan(caps)

    def drop_vm(self, vm_id: str) -> "CapacityPlan":
        """Remove one replica."""
        caps = dict(self.caps)
        del caps[vm_id]
        return CapacityPlan(caps)


@dataclass
class PerfPwrResult:
    """Output of the Perf-Pwr optimizer."""

    configuration: Configuration
    perf_rate: float
    power_rate: float
    estimate: SteadyEstimate
    hosts_used: int
    evaluations: int
    #: The per-host-count potential optima the winner was chosen from
    #: (including the winner itself); useful as partial-adaptation
    #: targets when a full transition would not fit a control window.
    alternatives: list["PerfPwrResult"] = field(default_factory=list)

    @property
    def ideal_rate(self) -> float:
        """The ideal utility accrual rate U* (performance + power)."""
        return self.perf_rate + self.power_rate


class PerfPwrOptimizer:
    """Optimal performance-power tradeoff, adaptation costs ignored."""

    def __init__(
        self,
        applications: ApplicationSet,
        catalog: VmCatalog,
        limits: ConstraintLimits,
        estimator: UtilityEstimator,
        host_ids: Sequence[str],
        max_vm_cap: Optional[float] = None,
        min_cap_for_target: bool = False,
        consider_minimal_candidate: bool = True,
    ) -> None:
        """``min_cap_for_target=True`` is the Pwr-Cost variant: the
        gradient search refuses candidates that push any application
        over its target response time (paper §V-C).

        ``consider_minimal_candidate=False`` runs the paper's plain
        gradient algorithm; the default additionally evaluates the
        target-meeting minimal capacities at each host count (an
        enhancement that tightens the ideal used as Mistral's
        heuristic — see DESIGN.md)."""
        if not host_ids:
            raise ValueError("optimizer needs at least one host")
        self.applications = applications
        self.catalog = catalog
        self.limits = limits
        self.estimator = estimator
        self.host_ids = tuple(host_ids)
        self.max_vm_cap = max_vm_cap or limits.max_total_cpu_cap
        self.min_cap_for_target = min_cap_for_target
        self.consider_minimal_candidate = consider_minimal_candidate
        # Bounded LRU memos (previously unbounded dicts flushed with a
        # wholesale clear() when they overflowed, discarding the whole
        # working set mid-optimization).  Keys include the estimator's
        # workload key, so a FeedbackUtilityEstimator version bump
        # naturally invalidates stale entries.
        self._quality_cache: LruDict[
            tuple, tuple[float, float, dict[str, float]]
        ] = LruDict(100_000, name="perf_pwr.quality")
        self._result_cache: LruDict[tuple, PerfPwrResult] = LruDict(
            5_000, name="perf_pwr.result"
        )
        self._minimal_cache: LruDict[tuple, CapacityPlan] = LruDict(
            5_000, name="perf_pwr.minimal"
        )

    # -- public API ---------------------------------------------------------

    def optimize(self, workloads: Mapping[str, float]) -> PerfPwrResult:
        """Best configuration for ``workloads`` over all host counts.

        Results are memoized per workload vector: within one monitoring
        interval every controller level consults the same ideal.
        """
        wkey = self.estimator.workload_key(workloads)
        memoized = self._result_cache.get(wkey)
        if memoized is not None:
            if _telemetry.enabled:
                _telemetry.registry.counter("perf_pwr.memo_hits").inc()
            return memoized
        wall_start = time.perf_counter() if _telemetry.enabled else 0.0
        start_evaluations = self.estimator.evaluations
        results: list[PerfPwrResult] = []
        plan = self._max_plan()
        min_hosts = self._min_hosts()
        # The target-meeting minimum is a second candidate per host
        # count: the gradient path shrinks monotonically across host
        # counts and can overshoot past configurations that still meet
        # every target on fewer hosts.
        minimal_plan = (
            self.minimal_capacities(workloads, key=wkey)
            if self.consider_minimal_candidate
            else None
        )
        for host_count in range(len(self.host_ids), min_hosts - 1, -1):
            hosts = self.host_ids[:host_count]
            candidates: list[Configuration] = []
            packed, plan = self._search_for_hosts(
                plan, hosts, workloads, wkey
            )
            if packed is not None:
                candidates.append(packed)
            if minimal_plan is not None:
                packed_minimal = self._pack(minimal_plan, hosts)
                if packed_minimal is not None:
                    candidates.append(packed_minimal)
            best_for_count: Optional[PerfPwrResult] = None
            for candidate in candidates:
                estimate = self.estimator.estimate(
                    candidate, workloads, key=wkey
                )
                result = PerfPwrResult(
                    configuration=candidate,
                    perf_rate=estimate.perf_rate,
                    power_rate=estimate.power_rate,
                    estimate=estimate,
                    hosts_used=len(candidate.powered_hosts),
                    evaluations=0,
                )
                if (
                    best_for_count is None
                    or result.ideal_rate > best_for_count.ideal_rate
                ):
                    best_for_count = result
            if best_for_count is not None:
                results.append(best_for_count)
        if not results:
            raise RuntimeError(
                "Perf-Pwr could not pack even minimal capacities; "
                "the host pool is too small for the application set"
            )
        best = max(results, key=lambda result: result.ideal_rate)
        best.alternatives = results
        best.evaluations = self.estimator.evaluations - start_evaluations
        self._result_cache.put(wkey, best)
        if _telemetry.enabled:
            _telemetry.registry.counter("perf_pwr.optimizations").inc()
            _telemetry.tracer.event(
                "perf_pwr.optimize",
                dur=time.perf_counter() - wall_start,
                evaluations=best.evaluations,
                hosts_used=best.hosts_used,
                host_counts_tried=len(results),
            )
        return best

    def minimal_capacities(
        self,
        workloads: Mapping[str, float],
        key: Optional[tuple] = None,
    ) -> CapacityPlan:
        """Smallest capacity plan that still meets every target (§V-C).

        The Pwr-Cost baseline's oracle: the paper modifies the Perf-Pwr
        optimizer "so that it will not reduce the VM sizes below the
        capacity needed to meet the target response times".  Starting
        from maximum capacities, reductions are applied greedily while
        all applications stay at or under their target response time.
        """
        wkey = key if key is not None else self.estimator.workload_key(workloads)
        memoized = self._minimal_cache.get(wkey)
        if memoized is not None:
            return memoized
        plan = self._max_plan()
        while True:
            best_candidate: Optional[CapacityPlan] = None
            best_total = plan.total_cap()
            for candidate in self._candidates(plan):
                _, _, response_times = self._plan_quality(
                    candidate, workloads, wkey
                )
                if not self._meets_targets(response_times, workloads):
                    continue
                total = candidate.total_cap()
                if total < best_total - 1e-9:
                    best_total = total
                    best_candidate = candidate
            if best_candidate is None:
                self._minimal_cache.put(wkey, plan)
                return plan
            plan = best_candidate

    # -- capacity plans -------------------------------------------------------

    def _max_plan(self) -> CapacityPlan:
        """All replica slots active at the maximum per-VM cap."""
        caps = {
            descriptor.vm_id: self.max_vm_cap for descriptor in self.catalog
        }
        return CapacityPlan(caps)

    def _min_hosts(self) -> int:
        """Smallest host count that can hold minimum capacities."""
        min_vms = sum(
            tier.min_replicas
            for app in self.applications
            for tier in app.tiers
        )
        by_cpu = math.ceil(
            min_vms * self.limits.min_vm_cpu_cap / self.limits.max_total_cpu_cap
        )
        by_count = math.ceil(min_vms / self.limits.max_vms_per_host)
        return max(1, by_cpu, by_count)

    def _replica_counts(self, plan: CapacityPlan) -> dict[tuple[str, str], int]:
        counts: dict[tuple[str, str], int] = {}
        for vm_id in plan.caps:
            descriptor = self.catalog.get(vm_id)
            key = (descriptor.app_name, descriptor.tier_name)
            counts[key] = counts.get(key, 0) + 1
        return counts

    # -- evaluation ------------------------------------------------------------

    def _pseudo_config(self, plan: CapacityPlan) -> Configuration:
        """Placement-free evaluation: each VM on its own pseudo host.

        Response times depend only on caps, so performance utility of a
        capacity plan can be estimated before any packing succeeds.
        """
        placements = {
            vm_id: Placement(f"pseudo-{vm_id}", cap)
            for vm_id, cap in plan.caps.items()
        }
        hosts = frozenset(placement.host_id for placement in placements.values())
        return Configuration(placements, hosts)

    def _plan_quality(
        self,
        plan: CapacityPlan,
        workloads: Mapping[str, float],
        wkey: Optional[tuple] = None,
    ) -> tuple[float, float, dict[str, float]]:
        """(busy CPU, performance utility rate, response times) of a plan.

        Placement-free: power is not evaluated here (it needs a real
        packing), only the performance side of the gradient.  ``wkey``
        is the precomputed workload key (computed once per optimize
        pass rather than per probe).
        """
        if wkey is None:
            wkey = self.estimator.workload_key(workloads)
        key = (tuple(sorted(plan.caps.items())), wkey)
        cached = self._quality_cache.get(key)
        if cached is not None:
            return cached
        pseudo = self._pseudo_config(plan)
        performance = self.estimator.solver.solve(pseudo, workloads)
        utility = self.estimator.utility
        perf_rate = sum(
            utility.perf_utility_rate(
                app, rate, performance.response_times[app]
            )
            for app, rate in workloads.items()
        )
        busy = sum(
            min(rho, 1.0) * plan.caps[vm_id]
            for vm_id, rho in performance.vm_utilizations.items()
        )
        result = (busy, perf_rate, dict(performance.response_times))
        self._quality_cache.put(key, result)
        return result

    def _meets_targets(
        self,
        response_times: Mapping[str, float],
        workloads: Mapping[str, float],
    ) -> bool:
        utility = self.estimator.utility
        return all(
            response_times[app] <= utility.target_response_time(app, rate)
            for app, rate in workloads.items()
        )

    # -- gradient search ---------------------------------------------------------

    def _candidates(self, plan: CapacityPlan) -> list[CapacityPlan]:
        """One-step reductions: shave a cap or drop a replica."""
        step = self.limits.cpu_cap_step
        minimum = self.limits.min_vm_cpu_cap
        counts = self._replica_counts(plan)
        candidates: list[CapacityPlan] = []
        for vm_id, cap in plan.caps.items():
            if cap - step >= minimum - 1e-9:
                candidates.append(plan.reduce_cap(vm_id, step))
        for (app_name, tier_name), count in counts.items():
            tier = self.applications.get(app_name).tier(tier_name)
            if count > tier.min_replicas:
                # Drop the highest-numbered active replica of the tier.
                replicas = sorted(
                    vm_id
                    for vm_id in plan.caps
                    if self.catalog.get(vm_id).app_name == app_name
                    and self.catalog.get(vm_id).tier_name == tier_name
                )
                candidates.append(plan.drop_vm(replicas[-1]))
        return candidates

    def _search_for_hosts(
        self,
        plan: CapacityPlan,
        hosts: Sequence[str],
        workloads: Mapping[str, float],
        wkey: Optional[tuple] = None,
    ) -> tuple[Optional[Configuration], CapacityPlan]:
        """Shrink ``plan`` until it packs on ``hosts`` (or give up).

        Returns the packed configuration (or None) and the final plan,
        which seeds the next, smaller host count — matching the paper's
        iterative host-count reduction.
        """
        current = plan
        busy, perf_rate, _ = self._plan_quality(current, workloads, wkey)
        while True:
            packed = self._pack(current, hosts)
            if packed is not None:
                return packed, current
            candidates = self._candidates(current)
            if self.min_cap_for_target:
                kept = []
                for candidate in candidates:
                    _, _, cand_rts = self._plan_quality(
                        candidate, workloads, wkey
                    )
                    if self._meets_targets(cand_rts, workloads):
                        kept.append(candidate)
                candidates = kept
            if not candidates:
                return None, current
            best_candidate = None
            best_key: tuple[float, float] = (-math.inf, -math.inf)
            for candidate in candidates:
                cand_busy, cand_perf, _ = self._plan_quality(
                    candidate, workloads, wkey
                )
                delta_busy = cand_busy - busy
                delta_perf = cand_perf - perf_rate
                if delta_perf >= 0:
                    # Free (or beneficial) reduction: always preferred;
                    # break ties by the larger CPU reduction.
                    key = (math.inf, -delta_busy + delta_perf * 1e6)
                elif delta_busy < 0:
                    key = (delta_busy / delta_perf, -delta_busy)
                else:
                    key = (-math.inf, delta_busy)
                if key > best_key:
                    best_key = key
                    best_candidate = candidate
            assert best_candidate is not None
            current = best_candidate
            busy, perf_rate, _ = self._plan_quality(current, workloads, wkey)

    # -- bin packing -------------------------------------------------------------

    def _pack(
        self, plan: CapacityPlan, hosts: Sequence[str]
    ) -> Optional[Configuration]:
        """Worst-fit-decreasing packing of the plan onto ``hosts``.

        Follows the paper: place each VM on the used host with the
        largest remaining space; open a new (empty) host only when no
        used host fits.  Fails (returns ``None``) when a VM fits
        nowhere.
        """
        limits = self.limits
        order = sorted(
            plan.caps.items(), key=lambda item: (-item[1], item[0])
        )
        cpu_left = {host: limits.max_total_cpu_cap for host in hosts}
        memory_left = {host: limits.guest_memory_mb for host in hosts}
        slots_left = {host: limits.max_vms_per_host for host in hosts}
        used: list[str] = []
        placements: dict[str, Placement] = {}

        def fits(host: str, vm_id: str, cap: float) -> bool:
            descriptor = self.catalog.get(vm_id)
            return (
                cpu_left[host] + 1e-9 >= cap
                and memory_left[host] >= descriptor.memory_mb
                and slots_left[host] >= 1
            )

        for vm_id, cap in order:
            candidates = [host for host in used if fits(host, vm_id, cap)]
            if candidates:
                host = max(candidates, key=lambda h: (cpu_left[h], h))
            else:
                unused = [
                    host
                    for host in hosts
                    if host not in used and fits(host, vm_id, cap)
                ]
                if not unused:
                    return None
                host = unused[0]
                used.append(host)
            descriptor = self.catalog.get(vm_id)
            cpu_left[host] = round(cpu_left[host] - cap, 10)
            memory_left[host] -= descriptor.memory_mb
            slots_left[host] -= 1
            placements[vm_id] = Placement(host, cap)

        return Configuration(placements, frozenset(used))
