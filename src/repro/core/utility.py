"""The utility model (paper §II-B, Eqs. 1-3, Fig. 3).

Application utility accrues at ``reward(w)/M`` dollars per second while
the mean response time meets its target and at ``penalty(w)/M`` (a
negative number) while it misses.  Power utility accrues negatively at
the metered wattage times the energy price.  The overall utility of a
control window (Eq. 3) integrates the transient rates over each
adaptation action's duration plus the steady rates of the final
configuration over the remainder of the stability interval.

The reward/penalty functions reproduce Fig. 3: as the request rate
grows the reward increases and the penalty shrinks in magnitude,
reflecting the increasingly best-effort nature of the service.  The
reward scale is calibrated so the service yields ~20% net profit over
the power cost of the paper's default configuration (§V-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Mapping, Sequence


@dataclass(frozen=True)
class UtilityParameters:
    """Knobs of the utility model (paper §V-A values as defaults)."""

    #: Monitoring interval M in seconds.
    monitoring_interval: float = 120.0
    #: Target mean response time in seconds (derived from the default
    #: configuration in the paper; see :func:`derive_target_response_time`).
    target_response_time: float = 0.4
    #: Dollars per watt consumed over one monitoring interval.
    cost_per_watt_interval: float = 0.01
    #: Reward at the top of the workload range, in dollars per interval.
    reward_scale: float = 3.5
    #: Workload normalization ceiling (req/s).
    workload_scale: float = 100.0
    #: Reward at zero load as a fraction of ``reward_scale``.
    reward_floor_fraction: float = 0.1
    #: |Penalty| at zero load as a fraction of ``reward_scale``.
    penalty_ceiling_fraction: float = 1.0
    #: |Penalty| at full load as a fraction of ``reward_scale``.
    penalty_floor_fraction: float = 0.3

    def __post_init__(self) -> None:
        if self.monitoring_interval <= 0:
            raise ValueError("monitoring_interval must be positive")
        if self.target_response_time <= 0:
            raise ValueError("target_response_time must be positive")
        if self.reward_scale <= 0:
            raise ValueError("reward_scale must be positive")
        if not 0 <= self.reward_floor_fraction <= 1:
            raise ValueError("reward_floor_fraction must be in [0, 1]")
        if self.penalty_floor_fraction > self.penalty_ceiling_fraction:
            raise ValueError("penalty must shrink (floor <= ceiling)")


@dataclass(frozen=True)
class TransientUtility:
    """Utility accrual during one adaptation action (Eq. 3, first term)."""

    duration: float
    perf_rate: float
    power_rate: float

    @property
    def total_rate(self) -> float:
        """Net accrual rate (performance minus power cost)."""
        return self.perf_rate + self.power_rate

    @property
    def accrued(self) -> float:
        """Utility accrued over the action's duration."""
        return self.duration * self.total_rate


class UtilityModel:
    """Evaluates Eqs. 1-3 for configurations and action sequences."""

    def __init__(
        self,
        parameters: UtilityParameters | None = None,
        target_rt_fn: Callable[[str, float], float] | None = None,
    ) -> None:
        self.parameters = parameters or UtilityParameters()
        self._target_rt_fn = target_rt_fn

    # -- Fig. 3 -----------------------------------------------------------

    def reward(self, request_rate: float) -> float:
        """Dollars earned per monitoring interval for meeting the target."""
        params = self.parameters
        load = min(max(request_rate / params.workload_scale, 0.0), 1.0)
        floor = params.reward_floor_fraction
        return params.reward_scale * (floor + (1.0 - floor) * load)

    def penalty(self, request_rate: float) -> float:
        """Dollars lost (negative) per interval for missing the target."""
        params = self.parameters
        load = min(max(request_rate / params.workload_scale, 0.0), 1.0)
        ceiling = params.penalty_ceiling_fraction
        floor = params.penalty_floor_fraction
        return -params.reward_scale * (ceiling - (ceiling - floor) * load)

    def target_response_time(self, app_name: str, request_rate: float) -> float:
        """Target mean response time for an app at a request rate."""
        if self._target_rt_fn is not None:
            return self._target_rt_fn(app_name, request_rate)
        return self.parameters.target_response_time

    # -- Eq. 1 / Eq. 2 ------------------------------------------------------

    def perf_utility_rate(
        self, app_name: str, request_rate: float, response_time: float
    ) -> float:
        """Application utility accrual rate in dollars per second (Eq. 1)."""
        target = self.target_response_time(app_name, request_rate)
        interval = self.parameters.monitoring_interval
        if response_time <= target:
            return self.reward(request_rate) / interval
        return self.penalty(request_rate) / interval

    def total_perf_rate(
        self,
        workloads: Mapping[str, float],
        response_times: Mapping[str, float],
    ) -> float:
        """Sum of per-application utility rates."""
        return sum(
            self.perf_utility_rate(app, rate, response_times[app])
            for app, rate in workloads.items()
        )

    def power_utility_rate(self, watts: float) -> float:
        """Power utility accrual rate (negative dollars per second, Eq. 2)."""
        params = self.parameters
        price_per_watt_second = (
            params.cost_per_watt_interval / params.monitoring_interval
        )
        return -watts * price_per_watt_second

    # -- Eq. 3 ---------------------------------------------------------------

    def overall_utility(
        self,
        transients: Sequence[TransientUtility],
        steady_perf_rate: float,
        steady_power_rate: float,
        stability_interval: float,
    ) -> float:
        """Eq. 3: transient accruals + steady accrual over the remainder.

        ``steady_power_rate`` is the (negative) power utility rate of
        the final configuration.  If the actions outlast the stability
        interval, the steady term is zero rather than negative time.
        """
        action_time = sum(transient.duration for transient in transients)
        accrued = sum(transient.accrued for transient in transients)
        remaining = max(0.0, stability_interval - action_time)
        return accrued + remaining * (steady_perf_rate + steady_power_rate)

    def interval_utility(
        self,
        workloads: Mapping[str, float],
        response_times: Mapping[str, float],
        watts: float,
        duration: float | None = None,
    ) -> float:
        """Utility accrued over one monitoring interval (for metering)."""
        span = duration if duration is not None else (
            self.parameters.monitoring_interval
        )
        rate = self.total_perf_rate(workloads, response_times)
        rate += self.power_utility_rate(watts)
        return rate * span

    # -- calibration -----------------------------------------------------------

    def calibrated(
        self,
        default_config_watts: float,
        app_count: int,
        reference_rate: float = 50.0,
        profit_margin: float = 0.2,
    ) -> "UtilityModel":
        """Reward scale yielding the paper's ~20% net profit anchor.

        Chooses ``reward_scale`` so that, with every application at the
        reference rate and meeting its target, total rewards exceed the
        default configuration's power cost by ``profit_margin``.
        """
        if app_count < 1:
            raise ValueError("app_count must be >= 1")
        if default_config_watts <= 0:
            raise ValueError("default_config_watts must be positive")
        params = self.parameters
        power_cost = default_config_watts * params.cost_per_watt_interval
        needed_reward = (1.0 + profit_margin) * power_cost / app_count
        load = min(max(reference_rate / params.workload_scale, 0.0), 1.0)
        floor = params.reward_floor_fraction
        fraction = floor + (1.0 - floor) * load
        scale = needed_reward / fraction
        return UtilityModel(
            replace(params, reward_scale=scale), self._target_rt_fn
        )


@dataclass
class UtilityLedger:
    """Accumulates measured utility over an experiment (Fig. 9)."""

    model: UtilityModel
    entries: list[tuple[float, float]] = field(default_factory=list)

    def record(
        self,
        time: float,
        workloads: Mapping[str, float],
        response_times: Mapping[str, float],
        watts: float,
        duration: float,
    ) -> float:
        """Accrue one sample's utility; returns the increment."""
        increment = self.model.interval_utility(
            workloads, response_times, watts, duration
        )
        self.entries.append((time, increment))
        return increment

    def cumulative(self) -> list[tuple[float, float]]:
        """Running total over time."""
        total = 0.0
        series = []
        for time, increment in self.entries:
            total += increment
            series.append((time, total))
        return series

    def total(self) -> float:
        """Final cumulative utility."""
        return sum(increment for _, increment in self.entries)
