"""Array-native expansion rounds (DESIGN.md §13).

One expansion round of the adaptation search enumerates ~``VMs x
hosts`` actions against the parent configuration, ranks them by
distance to the ideal, and builds children for the survivors.  The
legacy batch path already reduces the per-child *sums* with
``column_sums``, but every scatter cell — the per-action (distance,
host-match, cost-to-go) term, the constraint verdict, the dedup key —
still runs a Python expression per action.  This module removes those
loops:

``ActionBlock`` / ``RoundPlan``
    Enumeration emits actions in cached per-VM sublists whose cache key
    pins every fact the :class:`~repro.core.actions.RoundDeltaResolver`
    would consult (placement, cap, powered set, replica bounds).  An
    ``ActionBlock`` is the numeric image of one sublist — VM slot, target
    host slot, new cap, integer cap steps, the resolver's validity
    verdict, and the exact delta tuples — cached under the same key, so
    a round's plan is a concatenation of pre-encoded columns.

``ArrayBasis``
    Per-search tables.  Scatter *values* are computed once per (search,
    block) by the very scalar expressions of the legacy path — Python's
    ``x ** 2`` (``pow``) is not bit-identical to numpy's ``x * x`` on
    every input, so the values are never re-derived vectorized — and
    then reused as numpy columns round after round.  Constraint
    verdicts run in exact integer cap-step arithmetic (caps and host
    loads live on the ``cpu_cap_step`` decimal grid; each round
    verifies this and falls back to the scalar path when it does not
    hold).  Child dedup keys are codec rows with one cell edited.

Bit-identity with the legacy scalar path is the contract throughout:
identical float values (same expressions over the same operands, sums
reduced by :func:`~repro.parallel.batch.column_sums` in the serial
order), identical verdicts, identical ordering.
"""

from __future__ import annotations

import math
import struct
from typing import Mapping, Optional

import numpy as np

from repro.core.actions import (
    AddReplica,
    DecreaseCpu,
    IncreaseCpu,
    MigrateVm,
    RemoveReplica,
)
from repro.core.config import (
    ConfigCodec,
    Configuration,
    ConstraintLimits,
    Placement,
    VmCatalog,
)
from repro.parallel.batch import column_sums
from repro.telemetry import phases as _phases

#: Native-order scalar packers matching the codec's int16/float64 cell
#: bytes (standard sizes, so identical to ``np.int16``/``np.float64``
#: ``tobytes`` on every supported platform).
_PACK_INT16 = struct.Struct("=h").pack
_PACK_FLOAT64 = struct.Struct("=d").pack


def _togo_vm_term(
    here: Optional[Placement],
    there: Optional[Placement],
    tier: str,
    durations: Mapping[tuple[str, str], float],
    step: float,
    min_cap: float,
) -> float:
    """Adaptation seconds moving one VM from ``here`` to its ideal
    ``there`` (shared by the full and incremental cost-to-go paths so
    both accumulate bit-identical terms)."""
    if here is None and there is None:
        return 0.0
    seconds = 0.0
    if here is None:
        seconds += durations.get(("add_replica", tier), 40.0)
        seconds += abs(there.cpu_cap - min_cap) / step
    elif there is None:
        seconds += durations.get(("remove_replica", tier), 25.0)
    else:
        if here.host_id != there.host_id:
            seconds += durations.get(("migrate", tier), 25.0)
        seconds += abs(here.cpu_cap - there.cpu_cap) / step
    return seconds


def replica_tier_counts(
    catalog: VmCatalog, configuration: Configuration
) -> dict[tuple[str, str], int]:
    """Placed replicas per (app, tier) — one O(placements) pass, the
    same accumulation ``RoundDeltaResolver._replica_count`` performs."""
    counts: dict[tuple[str, str], int] = {}
    get = catalog.get
    for vm_id, _ in configuration.placement_items():
        descriptor = get(vm_id)
        tier_key = (descriptor.app_name, descriptor.tier_name)
        counts[tier_key] = counts.get(tier_key, 0) + 1
    return counts


def _grid_threshold_gt(limit: float, eps: float, step: float) -> int:
    """Largest step count ``s`` with NOT ``round(s*step, 10) > limit+eps``.

    ``round(s*step, 10)`` is monotone in ``s``, so for any on-grid value
    ``v == round(s*step, 10)`` the scalar verdict ``v > limit + eps`` is
    exactly ``s > threshold`` — the integer form of the constraint
    comparisons, with the float tolerance folded into the threshold by
    construction rather than re-proved analytically.
    """
    s = 0
    while round(s * step, 10) <= limit + eps:
        s += 1
        if s > 10_000_000:  # pathological limits: refuse, don't spin
            raise ValueError("cap grid threshold scan diverged")
    return s - 1


def _grid_threshold_lt(limit: float, eps: float, step: float) -> int:
    """Smallest ``s`` with NOT ``round(s*step, 10) < limit-eps`` (the
    integer threshold of the minimum-cap comparison; see above)."""
    s = 0
    while round(s * step, 10) < limit - eps:
        s += 1
        if s > 10_000_000:
            raise ValueError("cap grid threshold scan diverged")
    return s


class ActionBlock:
    """Numeric image of one cached enumeration sublist.

    Column ``j`` describes ``sub[j]``: the edited VM's catalog slot
    (``-1`` for an action moving no VM), the destination host slot
    (``-1`` for a removal), the new cap and its exact grid step count,
    the resolver's validity verdict, and the delta tuple the resolver
    would build (``None`` when invalid, ``()`` for host-power actions).
    ``remove_checks`` lists the removals whose validity still depends on
    the parent's replica count (only tiers allowed to scale to zero);
    everything else is constant under the sublist's cache key.
    """

    __slots__ = (
        "n",
        "vm",
        "host",
        "cap",
        "steps",
        "valid",
        "deltas",
        "remove_checks",
        "grid_ok",
    )

    def __init__(self, n, vm, host, cap, steps, valid, deltas, remove_checks, grid_ok):
        self.n = n
        self.vm = vm
        self.host = host
        self.cap = cap
        self.steps = steps
        self.valid = valid
        self.deltas = deltas
        self.remove_checks = remove_checks
        self.grid_ok = grid_ok


class ArrayStatics:
    """Search-instance constants of the array core (shared across
    searches; everything here depends only on catalog, limits and the
    host universe)."""

    __slots__ = (
        "codec",
        "catalog",
        "limits",
        "host_set",
        "vm_mem",
        "step",
        "max_cpu_steps",
        "min_cap_steps",
        "max_mem",
        "max_vms",
        "power_block",
        "_grid",
    )

    def __init__(
        self,
        catalog: VmCatalog,
        limits: ConstraintLimits,
        host_ids,
    ) -> None:
        self.codec = ConfigCodec(catalog.vm_ids(), host_ids)
        self.catalog = catalog
        self.limits = limits
        self.host_set = frozenset(self.codec.host_ids)
        self.vm_mem = np.array(
            [catalog.get(vm_id).memory_mb for vm_id in self.codec.vm_ids],
            dtype=np.int64,
        )
        self.step = limits.cpu_cap_step
        self.max_cpu_steps = _grid_threshold_gt(
            limits.max_total_cpu_cap, 1e-9, self.step
        )
        self.min_cap_steps = _grid_threshold_lt(
            limits.min_vm_cpu_cap, 1e-9, self.step
        )
        self.max_mem = limits.guest_memory_mb
        self.max_vms = limits.max_vms_per_host
        #: Memo: cap float -> exact grid step count (-1 when off-grid).
        self._grid: dict[float, int] = {}
        #: Shared single-column block for host power actions: no VM
        #: moves, the delta is the resolver's empty tuple, and validity
        #: is pinned by enumeration (only unpowered hosts are offered
        #: power-on, only idle powered hosts power-off).
        self.power_block = ActionBlock(
            n=1,
            vm=np.array([-1], dtype=np.int64),
            host=np.array([-1], dtype=np.int64),
            cap=np.zeros(1, dtype=np.float64),
            steps=np.zeros(1, dtype=np.int64),
            valid=np.ones(1, dtype=bool),
            deltas=[()],
            remove_checks=(),
            grid_ok=True,
        )

    def steps_of(self, value: float) -> int:
        """Exact grid step count of ``value``, or ``-1`` off-grid.

        A value is on-grid when ``round(k*step, 10)`` reproduces it
        bit-exactly — the invariant caps and host loads maintain (both
        are built by ``round(.., 10)`` chains over grid caps).  The
        check is what licenses the integer constraint arithmetic; any
        off-grid value routes the round to the scalar fallback.
        """
        steps = self._grid.get(value)
        if steps is None:
            k = int(round(value / self.step))
            steps = k if k >= 0 and round(k * self.step, 10) == value else -1
            self._grid[value] = steps
        return steps


def vm_block(
    statics: ArrayStatics,
    catalog: VmCatalog,
    sub: list,
    vm_id: str,
    src_host: str,
    src_cap: float,
    min_replicas: int,
) -> ActionBlock:
    """Encode one placed VM's cached action sublist.

    The sublist's cache key pins the VM, its placement (host, cap), the
    powered set and the remove permission, so every resolver check is
    evaluated here once: cap changes get the resolver's exact
    ``round(cap + signed*count, 10)`` bounds verdict, migrations and
    removals are valid by the pinned facts — except a removal of a tier
    allowed to scale to zero, whose last-replica check depends on the
    parent's replica count and is deferred to ``remove_checks``.
    """
    n = len(sub)
    limits = statics.limits
    codec = statics.codec
    vm = np.full(n, -1, dtype=np.int64)
    host = np.full(n, -1, dtype=np.int64)
    cap = np.zeros(n, dtype=np.float64)
    steps = np.zeros(n, dtype=np.int64)
    valid = np.ones(n, dtype=bool)
    deltas: list = [None] * n
    remove_checks: list = []
    slot = codec.vm_index[vm_id]
    src_slot = codec.host_index[src_host]
    grid_ok = True
    for j, action in enumerate(sub):
        kind = type(action)
        if kind is IncreaseCpu or kind is DecreaseCpu:
            new_cap = round(src_cap + action._signed_step() * action.count, 10)
            vm[j] = slot
            host[j] = src_slot
            cap[j] = new_cap
            if (
                new_cap < limits.min_vm_cpu_cap - 1e-9
                or new_cap > limits.max_total_cpu_cap + 1e-9
            ):
                valid[j] = False
                continue
            s = statics.steps_of(new_cap)
            steps[j] = s
            grid_ok = grid_ok and s >= 0
            deltas[j] = ((vm_id, Placement(src_host, new_cap)),)
        elif kind is MigrateVm:
            vm[j] = slot
            host[j] = codec.host_index[action.target_host]
            cap[j] = src_cap
            s = statics.steps_of(src_cap)
            steps[j] = s
            grid_ok = grid_ok and s >= 0
            deltas[j] = ((vm_id, Placement(action.target_host, src_cap)),)
        elif kind is RemoveReplica:
            vm[j] = slot  # host stays -1, cap 0.0: the removal image
            deltas[j] = ((vm_id, None),)
            if min_replicas < 1:
                descriptor = catalog.get(vm_id)
                remove_checks.append(
                    (j, (descriptor.app_name, descriptor.tier_name))
                )
        else:  # pragma: no cover - enumeration emits only the above
            raise TypeError(f"unexpected action in VM sublist: {action!r}")
    return ActionBlock(
        n, vm, host, cap, steps, valid, deltas, tuple(remove_checks), grid_ok
    )


def add_block(
    statics: ArrayStatics, sub: list, dormant_vm: Optional[str]
) -> ActionBlock:
    """Encode one tier's cached add-replica sublist.

    The cache key pins the dormant VM the resolver would activate (the
    first unplaced replica in catalog order — the identical scan), so
    validity is constant: a dormant VM exists and the replica cap
    clears the minimum.
    """
    n = len(sub)
    limits = statics.limits
    codec = statics.codec
    vm = np.full(n, -1, dtype=np.int64)
    host = np.full(n, -1, dtype=np.int64)
    cap = np.zeros(n, dtype=np.float64)
    steps = np.zeros(n, dtype=np.int64)
    valid = np.ones(n, dtype=bool)
    deltas: list = [None] * n
    slot = codec.vm_index[dormant_vm] if dormant_vm is not None else -1
    grid_ok = True
    for j, action in enumerate(sub):
        host[j] = codec.host_index[action.target_host]
        cap[j] = action.cpu_cap
        if dormant_vm is None or (
            action.cpu_cap < limits.min_vm_cpu_cap - 1e-9
        ):
            valid[j] = False
            continue
        vm[j] = slot
        s = statics.steps_of(action.cpu_cap)
        steps[j] = s
        grid_ok = grid_ok and s >= 0
        deltas[j] = (
            (dormant_vm, Placement(action.target_host, action.cpu_cap)),
        )
    return ActionBlock(n, vm, host, cap, steps, valid, deltas, (), grid_ok)


_EMPTY_I64 = np.zeros(0, dtype=np.int64)
_EMPTY_F64 = np.zeros(0, dtype=np.float64)
_EMPTY_BOOL = np.zeros(0, dtype=bool)


class RoundPlan:
    """One round's action columns: the blocks' arrays concatenated in
    enumeration order (``column j`` describes ``possible[j]``)."""

    __slots__ = (
        "n",
        "vm",
        "host",
        "cap",
        "steps",
        "valid_const",
        "deltas",
        "remove_checks",
        "blocks",
        "grid_ok",
    )

    def __init__(self, blocks: list, expected: int) -> None:
        self.blocks = blocks
        if len(blocks) == 1:
            block = blocks[0]
            self.n = block.n
            self.vm = block.vm
            self.host = block.host
            self.cap = block.cap
            self.steps = block.steps
            self.valid_const = block.valid
            self.deltas = list(block.deltas)
            self.remove_checks = list(block.remove_checks)
            self.grid_ok = block.grid_ok
        elif blocks:
            self.vm = np.concatenate([b.vm for b in blocks])
            self.host = np.concatenate([b.host for b in blocks])
            self.cap = np.concatenate([b.cap for b in blocks])
            self.steps = np.concatenate([b.steps for b in blocks])
            self.valid_const = np.concatenate([b.valid for b in blocks])
            deltas: list = []
            remove_checks: list = []
            offset = 0
            grid_ok = True
            for block in blocks:
                deltas.extend(block.deltas)
                for pos, tier_key in block.remove_checks:
                    remove_checks.append((offset + pos, tier_key))
                offset += block.n
                grid_ok = grid_ok and block.grid_ok
            self.n = offset
            self.deltas = deltas
            self.remove_checks = remove_checks
            self.grid_ok = grid_ok
        else:
            self.n = 0
            self.vm = _EMPTY_I64
            self.host = _EMPTY_I64
            self.cap = _EMPTY_F64
            self.steps = _EMPTY_I64
            self.valid_const = _EMPTY_BOOL
            self.deltas = []
            self.remove_checks = []
            self.grid_ok = True
        if self.n != expected:  # pragma: no cover - alignment invariant
            raise AssertionError(
                f"round plan covers {self.n} actions, enumeration "
                f"produced {expected}"
            )

    def valid_mask(self, counts: Optional[dict]) -> np.ndarray:
        """The resolver's accept/reject verdict per column.

        ``counts`` (``replica_tier_counts`` of the parent) is only
        consulted for the deferred last-replica checks; rounds without
        any share the constant mask.
        """
        if not self.remove_checks:
            return self.valid_const
        valid = self.valid_const.copy()
        for pos, tier_key in self.remove_checks:
            if counts.get(tier_key, 0) <= 1:
                valid[pos] = False
        return valid


class _ParentRows:
    """The expansion parent's codec rows plus exact grid steps."""

    __slots__ = ("host16", "host64", "caps", "steps", "powered_bytes", "grid_ok")

    def __init__(self, host16, host64, caps, steps, powered_bytes, grid_ok):
        self.host16 = host16
        self.host64 = host64
        self.caps = caps
        self.steps = steps
        self.powered_bytes = powered_bytes
        self.grid_ok = grid_ok


class ArrayBasis:
    """Per-search tables and kernels of the array expansion core.

    Wraps the search's ``_SearchBasis`` (per-VM ideal placement facts)
    with the codec universe.  Scatter values are memoized per block —
    computed by the *scalar* legacy expressions, see the module
    docstring — so steady-state rounds perform no per-action Python
    arithmetic at all.
    """

    __slots__ = (
        "statics",
        "basis",
        "total",
        "on_dur",
        "off_dur",
        "_block_vals",
        "_plan_vals",
    )

    def __init__(self, statics: ArrayStatics, basis) -> None:
        self.statics = statics
        self.basis = basis
        self.total = basis.total
        self.on_dur = basis.durations.get(("power_on", "-"), 90.0)
        self.off_dur = basis.durations.get(("power_off", "-"), 30.0)
        #: id(block) -> (block, dist_vals, match_vals, togo_vals).  The
        #: block reference keeps the id stable for the basis' lifetime
        #: (one search), so eviction of the enumeration cache cannot
        #: alias a recycled id onto stale values.
        self._block_vals: dict[int, tuple] = {}
        #: id(plan) -> (plan, concatenated per-plan value arrays) —
        #: plans are cached across rounds by the search, so most rounds
        #: skip even the concatenation.
        self._plan_vals: dict[int, tuple] = {}

    # -- per-block scatter values (legacy scalar expressions) -----------

    def _vals_of(self, block: ActionBlock) -> tuple:
        cached = self._block_vals.get(id(block))
        if cached is not None and cached[0] is block:
            return cached
        basis = self.basis
        limits = basis.limits
        step = limits.cpu_cap_step
        min_cap = limits.min_vm_cpu_cap
        index = basis.index
        weights = basis.weights
        ideal_caps = basis.ideal_caps
        ideal_hosts = basis.ideal_hosts
        dist_vals = np.zeros(block.n, dtype=np.float64)
        match_vals = np.zeros(block.n, dtype=np.float64)
        togo_vals = np.zeros(block.n, dtype=np.float64)
        for j, delta in enumerate(block.deltas):
            if not delta:  # power action or invalid column: never read
                continue
            ((vm_id, new),) = delta
            i = index[vm_id]
            cap = new.cpu_cap if new is not None else 0.0
            dist_vals[j] = weights[i] * (cap - ideal_caps[i]) ** 2
            host = new.host_id if new is not None else None
            match_vals[j] = 1 if host == ideal_hosts[i] else 0
            togo_vals[j] = _togo_vm_term(
                new,
                basis.ideal_placements[i],
                basis.tiers[i],
                basis.durations,
                step,
                min_cap,
            )
        cached = (block, dist_vals, match_vals, togo_vals)
        self._block_vals[id(block)] = cached
        return cached

    def round_values(self, plan: RoundPlan) -> tuple:
        """(dist, match, togo) scatter values per plan column."""
        cached = self._plan_vals.get(id(plan))
        if cached is not None and cached[0] is plan:
            return cached[1]
        blocks = plan.blocks
        if len(blocks) == 1:
            _, dist_vals, match_vals, togo_vals = self._vals_of(blocks[0])
            values = (dist_vals, match_vals, togo_vals)
        elif not blocks:
            values = (
                np.zeros(0, dtype=np.float64),
                np.zeros(0, dtype=np.float64),
                np.zeros(0, dtype=np.float64),
            )
        else:
            vals = [self._vals_of(block) for block in blocks]
            values = (
                np.concatenate([v[1] for v in vals]),
                np.concatenate([v[2] for v in vals]),
                np.concatenate([v[3] for v in vals]),
            )
        self._plan_vals[id(plan)] = (plan, values)
        return values

    # -- round kernels ---------------------------------------------------

    def distances(self, state, plan: RoundPlan, values: tuple) -> np.ndarray:
        """Per-column distances over the whole plan — bit-identical to
        the legacy ``batch_distances`` (same scatter values, same
        ``column_sums`` reduction, same final expression).

        The whole kernel is the array core's ranking work, so it
        attributes to the search's ``score`` phase (a no-op without an
        active profile — see :mod:`repro.telemetry.phases`)."""
        with _phases.phase("score"):
            n = plan.n
            dist_vals, match_vals, _ = values
            has = plan.vm >= 0
            cols = np.flatnonzero(has)
            vms = plan.vm[has]
            total = self.total
            if not total:
                cap_m = np.repeat(
                    np.array(state.cap_terms, dtype=np.float64)[:, None],
                    n,
                    axis=1,
                )
                cap_m[vms, cols] = dist_vals[has]
                return np.sqrt(column_sums(cap_m))  # placement term is 0.0
            # One fused (rows, 2n) matrix — cap columns then match
            # columns.  ``column_sums`` reduces every column
            # independently in row order, so each fused column's
            # addition chain is the chain the two separate reductions
            # would have run.
            rows = len(state.cap_terms)
            fused = np.empty((rows, 2 * n), dtype=np.float64)
            fused[:, :n] = np.array(state.cap_terms, dtype=np.float64)[
                :, None
            ]
            fused[:, n:] = np.array(state.host_matches, dtype=np.float64)[
                :, None
            ]
            fused[vms, cols] = dist_vals[has]
            fused[vms, n + cols] = match_vals[has]
            sums = column_sums(fused)
            return np.sqrt(sums[:n]) + (1.0 - sums[n:] / total)

    def sel_reductions(
        self,
        state,
        plan: RoundPlan,
        sel: np.ndarray,
        values: tuple,
        dist_sel: Optional[np.ndarray],
        n_on: int,
        n_off: int,
    ) -> tuple[list, list]:
        """(distance, cost-to-go) per selected column, as exact float
        lists — the column reductions of ``build_children_batched``."""
        dist_vals, match_vals, togo_vals = values
        k = sel.size
        if k < 24:
            # Narrow (pruned) rounds: replay each column's reduction as
            # the scalar addition chain ``column_sums`` runs — a shared
            # exact prefix up to the substituted row, then the
            # remaining rows in order — which beats the kernels' fixed
            # setup at this size and is bit-identical by construction.
            return self._sel_reductions_scalar(
                state, plan, sel, values, dist_sel, n_on, n_off
            )
        togo_m = np.repeat(
            np.array(state.togo_terms, dtype=np.float64)[:, None], k, axis=1
        )
        vm_sel = plan.vm[sel]
        has = vm_sel >= 0
        cols = np.flatnonzero(has)
        vms = vm_sel[has]
        togo_m[vms, cols] = togo_vals[sel][has]
        if dist_sel is None:
            cap_m = np.repeat(
                np.array(state.cap_terms, dtype=np.float64)[:, None],
                k,
                axis=1,
            )
            match_m = np.repeat(
                np.array(state.host_matches, dtype=np.float64)[:, None],
                k,
                axis=1,
            )
            cap_m[vms, cols] = dist_vals[sel][has]
            match_m[vms, cols] = match_vals[sel][has]
            cap_sum = column_sums(cap_m)
            total = self.total
            if total:
                match_sum = column_sums(match_m)
                dist_vec = np.sqrt(cap_sum) + (1.0 - match_sum / total)
            else:
                dist_vec = np.sqrt(cap_sum)
        else:
            dist_vec = dist_sel
        togo_sum = column_sums(togo_m)
        # Power legs chained in the serial order (float addition is
        # order-sensitive; see build_children_batched).
        togo_vec = togo_sum
        for _ in range(n_on):
            togo_vec = togo_vec + self.on_dur
        for _ in range(n_off):
            togo_vec = togo_vec + self.off_dur
        return dist_vec.tolist(), togo_vec.tolist()

    def _sel_reductions_scalar(
        self, state, plan, sel, values, dist_sel, n_on, n_off
    ) -> tuple[list, list]:
        """Scalar replay of :meth:`sel_reductions` for narrow rounds.

        A column's sum substitutes at most one row of the base terms,
        so its addition chain is an exact prefix of the base chain,
        then the substituted value, then the remaining rows in order —
        sharing the prefixes across columns changes no operation.
        Power columns (no substitution) take the full base chain.
        """
        dist_vals, match_vals, togo_vals = values
        sel_l = sel.tolist()
        vm_l = plan.vm[sel].tolist()
        togo_terms = state.togo_terms
        n_rows = len(togo_terms)
        tpref = [0.0] * (n_rows + 1)
        acc = 0.0
        for i, term in enumerate(togo_terms):
            tpref[i] = acc
            acc = acc + term
        tpref[n_rows] = acc
        togo_vals_l = togo_vals[sel].tolist()
        on_dur = self.on_dur
        off_dur = self.off_dur
        togo_list = [0.0] * len(sel_l)
        for j, vm in enumerate(vm_l):
            if vm >= 0:
                acc = tpref[vm] + togo_vals_l[j]
                for i in range(vm + 1, n_rows):
                    acc = acc + togo_terms[i]
            else:
                acc = tpref[n_rows]
            for _ in range(n_on):
                acc = acc + on_dur
            for _ in range(n_off):
                acc = acc + off_dur
            togo_list[j] = acc
        if dist_sel is not None:
            return dist_sel.tolist(), togo_list
        cap_terms = state.cap_terms
        host_matches = state.host_matches
        cpref = [0.0] * (n_rows + 1)
        acc = 0.0
        for i, term in enumerate(cap_terms):
            cpref[i] = acc
            acc = acc + term
        cpref[n_rows] = acc
        total = self.total
        if total:
            mpref = [0.0] * (n_rows + 1)
            acc = 0.0
            for i, term in enumerate(host_matches):
                mpref[i] = acc
                acc = acc + term
            mpref[n_rows] = acc
        dist_vals_l = dist_vals[sel].tolist()
        match_vals_l = match_vals[sel].tolist()
        dist_list = [0.0] * len(sel_l)
        for j, vm in enumerate(vm_l):
            if vm >= 0:
                cap_sum = cpref[vm] + dist_vals_l[j]
                for i in range(vm + 1, n_rows):
                    cap_sum = cap_sum + cap_terms[i]
            else:
                cap_sum = cpref[n_rows]
            if total:
                if vm >= 0:
                    match_sum = mpref[vm] + match_vals_l[j]
                    for i in range(vm + 1, n_rows):
                        match_sum = match_sum + host_matches[i]
                else:
                    match_sum = mpref[n_rows]
                dist_list[j] = math.sqrt(cap_sum) + (
                    1.0 - match_sum / total
                )
            else:
                dist_list[j] = math.sqrt(cap_sum)
        return dist_list, togo_list

    def parent_rows(
        self, configuration: Configuration, key: Optional[bytes] = None
    ) -> _ParentRows:
        """Codec rows of the expansion parent plus exact cap steps.

        When the parent's dedup ``key`` is on hand it is decoded
        directly — the key *is* the codec rows' concatenated bytes
        (host int16 | caps float64 | powered uint8), so slicing it back
        into arrays skips re-encoding the ``Configuration`` and is
        byte-identical by construction."""
        statics = self.statics
        if key is not None:
            n_vms = len(statics.codec.vm_ids)
            host16 = np.frombuffer(key, dtype=np.int16, count=n_vms)
            caps = np.frombuffer(
                key, dtype=np.float64, count=n_vms, offset=2 * n_vms
            )
            powered_bytes = key[10 * n_vms :]
        else:
            arrays = statics.codec.encode(configuration)
            host16 = arrays.host_index
            caps = arrays.cpu_caps
            powered_bytes = arrays.powered.tobytes()
        host64 = host16.astype(np.int64)
        steps = np.zeros(caps.size, dtype=np.int64)
        grid_ok = True
        steps_of = statics.steps_of
        caps_list = caps.tolist()
        for i, slot in enumerate(host64.tolist()):
            if slot >= 0:
                s = steps_of(caps_list[i])
                if s < 0:
                    grid_ok = False
                    break
                steps[i] = s
        return _ParentRows(
            host16, host64, caps, steps, powered_bytes, grid_ok
        )

    def candidacy(
        self,
        state,
        plan: RoundPlan,
        sel: np.ndarray,
        parent: _ParentRows,
    ) -> Optional[np.ndarray]:
        """Candidate verdict per selected column, or ``None`` when any
        cap/load is off the decimal grid (callers then use the scalar
        ``child_candidate`` per child).

        Replays the single-edit host-entry arithmetic of the scalar
        path in exact integer cap steps: on-grid floats map bijectively
        to step counts (verified per value), decimal ``round`` add/
        subtract chains map to integer add/subtract, and the float
        threshold comparisons map to integer thresholds built by
        scanning the same ``round`` expressions.  Columns moving no VM
        get an arbitrary verdict (the caller uses the parent's)."""
        statics = self.statics
        if not plan.grid_ok or not parent.grid_ok:
            return None
        host_index = statics.codec.host_index
        n_hosts = len(statics.codec.host_ids)
        load = np.zeros(n_hosts, dtype=np.int64)
        mem = np.zeros(n_hosts, dtype=np.int64)
        cnt = np.zeros(n_hosts, dtype=np.int64)
        steps_of = statics.steps_of
        for host, (cpu, host_mem, host_vms) in state.hosts.items():
            s = steps_of(cpu)
            if s < 0:
                return None
            slot = host_index[host]
            load[slot] = s
            mem[slot] = host_mem
            cnt[slot] = host_vms
        max_cpu = statics.max_cpu_steps
        max_mem = statics.max_mem
        max_vms = statics.max_vms
        was_bad = (load > max_cpu) | (mem > max_mem) | (cnt > max_vms)
        vm_sel = plan.vm[sel]
        dst = plan.host[sel]
        new_steps = plan.steps[sel]
        has = vm_sel >= 0
        vmc = np.where(has, vm_sel, 0)
        vm_mem = statics.vm_mem[vmc]
        # Source-host leg (the VM's current entry loses it).
        src = parent.host64[vmc]
        has_src = has & (src >= 0)
        srcc = np.where(has_src, src, 0)
        old_steps = parent.steps[vmc]
        s_cpu = load[srcc]
        s_mem = mem[srcc]
        s_cnt = cnt[srcc]
        s_bad = was_bad[srcc].astype(np.int64)
        remaining = s_cnt - 1
        emptied = remaining == 0
        cpu2 = s_cpu - old_steps
        mem2 = s_mem - vm_mem
        src2_bad = (
            (cpu2 > max_cpu) | (mem2 > max_mem) | (remaining > max_vms)
        ).astype(np.int64)
        bad = state.bad_hosts + np.where(
            has_src, np.where(emptied, -s_bad, src2_bad - s_bad), 0
        )
        # Destination-host leg; a same-host edit reads the source leg's
        # intermediate entry (zeros when the source emptied — exactly
        # the scalar path's fresh-entry branch, since an emptied source
        # leaves cpu2 == mem2 == remaining == 0 in exact integers).
        has_dst = has & (dst >= 0)
        dstc = np.where(has_dst, dst, 0)
        same = has_src & (dst == src)
        b_cpu = np.where(same, cpu2, load[dstc])
        b_mem = np.where(same, mem2, mem[dstc])
        b_cnt = np.where(same, remaining, cnt[dstc])
        b_bad = np.where(same, src2_bad, was_bad[dstc].astype(np.int64))
        cpu3 = b_cpu + new_steps
        mem3 = b_mem + vm_mem
        cnt3 = b_cnt + 1
        d_bad = (
            (cpu3 > max_cpu) | (mem3 > max_mem) | (cnt3 > max_vms)
        ).astype(np.int64)
        bad = bad + np.where(has_dst, d_bad - b_bad, 0)
        # Under-cap VM accounting.
        under = has_dst & (new_steps < statics.min_cap_steps)
        bad_vm_count = len(state.bad_vms)
        if bad_vm_count:
            index = self.basis.index
            bad_idx = np.array(
                [index[vm_id] for vm_id in state.bad_vms], dtype=np.int64
            )
            in_bad = np.isin(vmc, bad_idx) & has
        else:
            in_bad = np.zeros(sel.size, dtype=bool)
        bad_vms = (
            bad_vm_count
            + np.where(under & ~in_bad, 1, 0)
            + np.where(~under & in_bad, -1, 0)
        )
        return (bad == 0) & (bad_vms == 0)

    def child_keys(
        self,
        plan: RoundPlan,
        sel: np.ndarray,
        parent: _ParentRows,
        parent_key: Optional[bytes] = None,
    ) -> list:
        """Dedup key per selected column (``None`` where no VM moves):
        the parent's codec rows with the action's single cell edited —
        byte-identical to encoding the materialized child.

        With the parent's own ``parent_key`` bytes on hand, each child
        key is spliced directly out of them — the edited VM's int16
        host cell lives at byte ``2*vm`` and its float64 cap cell at
        ``2*n_vms + 8*vm``, so three slices plus the two packed cells
        reproduce the row-scatter result byte for byte without the
        matrix materialization."""
        k = sel.size
        vm_sel = plan.vm[sel]
        keys: list = [None] * k
        if parent_key is not None:
            caps_off = 2 * parent.host16.size
            pack_host = _PACK_INT16
            pack_cap = _PACK_FLOAT64
            join = b"".join
            # Columns cluster by VM (a VM's actions are contiguous in
            # enumeration order), so the three parent slices around
            # each VM's cells are computed once per VM.
            slices: dict[int, tuple] = {}
            host_l = plan.host[sel].tolist()
            cap_l = plan.cap[sel].tolist()
            for row, vm in enumerate(vm_sel.tolist()):
                if vm < 0:
                    continue
                parts = slices.get(vm)
                if parts is None:
                    o1 = 2 * vm
                    o2 = caps_off + 8 * vm
                    parts = (
                        parent_key[:o1],
                        parent_key[o1 + 2 : o2],
                        parent_key[o2 + 8 :],
                    )
                    slices[vm] = parts
                keys[row] = join(
                    (
                        parts[0],
                        pack_host(host_l[row]),
                        parts[1],
                        pack_cap(cap_l[row]),
                        parts[2],
                    )
                )
            return keys
        has = vm_sel >= 0
        host_rows = np.tile(parent.host16, (k, 1))
        cap_rows = np.tile(parent.caps, (k, 1))
        rows = np.flatnonzero(has)
        vms = vm_sel[has]
        host_rows[rows, vms] = plan.host[sel][has]  # int64 -> int16 cast
        cap_rows[rows, vms] = plan.cap[sel][has]
        powered = parent.powered_bytes
        for row in rows.tolist():
            keys[row] = (
                host_rows[row].tobytes() + cap_rows[row].tobytes() + powered
            )
        return keys
