"""The Mistral controller (paper Fig. 2).

One controller owns a workload monitor (bands + ARMA stability-interval
prediction), the predictor modules (performance, power, cost — bundled
in the estimator and cost manager), and the Optimal Adaptation Search.
On every monitoring sample it checks its bands; on an escape it runs
the search over the predicted control window and emits a decision: the
action sequence, the decision delay (search duration), and the power
drawn while deciding.  The testbed executes decisions against the
cluster.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.core.actions import AdaptationAction
from repro.core.config import Configuration
from repro.core.search import AdaptationSearch, SearchOutcome
from repro.telemetry import runtime as _telemetry
from repro.workload.monitor import BandEscape, WorkloadMonitor


@dataclass
class Decision:
    """One controller decision, ready for execution."""

    time: float
    controller: str
    actions: tuple[AdaptationAction, ...]
    control_window: float
    decision_seconds: float
    search_watts: float
    #: Search details; None for baselines that plan without the A*.
    outcome: Optional[SearchOutcome]
    escape: BandEscape

    @property
    def is_null(self) -> bool:
        """Whether the controller decided to keep the configuration."""
        return not self.actions


@dataclass
class ControllerStats:
    """Bookkeeping for Table I / Fig. 10."""

    invocations: int = 0
    escapes: int = 0
    skipped_busy: int = 0
    decisions: int = 0
    null_decisions: int = 0
    actions_issued: int = 0
    search_seconds: list[float] = field(default_factory=list)
    expansions: list[int] = field(default_factory=list)
    wall_seconds: list[float] = field(default_factory=list)

    def mean_search_seconds(self) -> float:
        """Average decision delay over all searches."""
        if not self.search_seconds:
            return 0.0
        return sum(self.search_seconds) / len(self.search_seconds)


class MistralController:
    """A single Mistral controller instance (one node of the hierarchy)."""

    def __init__(
        self,
        name: str,
        search: AdaptationSearch,
        monitor: WorkloadMonitor,
        min_control_window: float = 120.0,
        utility_history: int = 8,
    ) -> None:
        self.name = name
        self.search = search
        self.monitor = monitor
        self.min_control_window = min_control_window
        self.stats = ControllerStats()
        self._recent_utilities: deque[float] = deque(maxlen=utility_history)
        #: Optional online model-feedback calibration (see
        #: :mod:`repro.core.feedback`); wired by the scenario builder.
        self.feedback = None
        #: One-step workload trend extrapolation (Eq. 1 plans for the
        #: "measured or predicted request rate"): during a ramp, plan
        #: for where the workload is heading, not where it was when the
        #: plan started.  Trends below the threshold are treated as
        #: ripple and ignored.
        self.trend_extrapolation = True
        self.trend_threshold = 2.0
        self._last_workloads: Optional[dict[str, float]] = None

    def record_interval_utility(self, utility: float) -> None:
        """Feed the measured utility of one monitoring interval.

        The self-aware search's expected-utility budget ``UH`` is the
        lowest of these recent measurements (a pessimistic estimate,
        paper §IV-B).
        """
        self._recent_utilities.append(utility)

    def record_measurements(
        self,
        workloads: Mapping[str, float],
        measured_response_times: Mapping[str, float],
        configuration: Configuration,
    ) -> None:
        """Feed one interval's measured response times to the feedback
        loop, against the model's prediction for the same state."""
        if self.feedback is None:
            return
        predicted = self.search.estimator.estimate(
            configuration, dict(workloads)
        ).response_times
        self.feedback.observe(measured_response_times, predicted)

    def _planning_workloads(
        self, workloads: dict[str, float]
    ) -> dict[str, float]:
        """Workloads to plan for: extrapolate strong monotone trends."""
        if not self.trend_extrapolation or self._last_workloads is None:
            return workloads
        planned = {}
        for app, rate in workloads.items():
            trend = rate - self._last_workloads.get(app, rate)
            if abs(trend) > self.trend_threshold:
                planned[app] = min(100.0, max(0.0, rate + trend))
            else:
                planned[app] = rate
        return planned

    def expected_utility(self, control_window: float) -> Optional[float]:
        """Pessimistic expected utility over a control window."""
        if not self._recent_utilities:
            return None
        per_interval = min(self._recent_utilities)
        interval = self.search.estimator.utility.parameters.monitoring_interval
        return per_interval * control_window / interval

    def on_sample(
        self,
        now: float,
        workloads: Mapping[str, float],
        configuration: Configuration,
        busy: bool = False,
    ) -> Optional[Decision]:
        """Process one monitoring sample; maybe return a decision.

        ``busy`` indicates an adaptation plan is already executing, in
        which case the controller re-centers its bands but does not
        search (the system is mid-transition and estimates would be
        stale).
        """
        self.stats.invocations += 1
        escape = self.monitor.observe(now, workloads)
        planning_workloads = self._planning_workloads(dict(workloads))
        self._last_workloads = dict(workloads)
        if escape is None:
            return None
        self.stats.escapes += 1
        if busy:
            self.stats.skipped_busy += 1
            return None

        window = max(escape.estimated_next_interval, self.min_control_window)
        expected = self.expected_utility(window)
        expected_rate = (
            expected / window if expected is not None else None
        )
        with _telemetry.span(
            "controller.decision",
            controller=self.name,
            t_sim=now,
            escaped_apps=sorted(escape.escaped_apps),
            measured_interval=escape.measured_interval,
            control_window=window,
        ) as decision_span:
            outcome = self.search.search(
                configuration,
                planning_workloads,
                control_window=window,
                expected_utility=expected,
                expected_rate=expected_rate,
            )
            decision_span.set(
                actions=[type(a).__name__ for a in outcome.actions],
                null=outcome.is_null,
                expansions=outcome.expansions,
                decision_seconds=outcome.decision_seconds,
                search_watts=self.search.settings.search_watts_delta,
                predicted_utility=outcome.predicted_utility,
            )
        if _telemetry.enabled:
            _telemetry.registry.counter("controller.decisions").inc()
            if outcome.is_null:
                _telemetry.registry.counter("controller.null_decisions").inc()
        self.stats.decisions += 1
        self.stats.search_seconds.append(outcome.decision_seconds)
        self.stats.expansions.append(outcome.expansions)
        self.stats.wall_seconds.append(outcome.wall_seconds)
        if outcome.is_null:
            self.stats.null_decisions += 1
        self.stats.actions_issued += len(outcome.actions)
        return Decision(
            time=now,
            controller=self.name,
            actions=outcome.actions,
            control_window=window,
            decision_seconds=outcome.decision_seconds,
            search_watts=self.search.settings.search_watts_delta,
            outcome=outcome,
            escape=escape,
        )
