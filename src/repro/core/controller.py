"""The Mistral controller (paper Fig. 2).

One controller owns a workload monitor (bands + ARMA stability-interval
prediction), the predictor modules (performance, power, cost — bundled
in the estimator and cost manager), and the Optimal Adaptation Search.
On every monitoring sample it checks its bands; on an escape it runs
the search over the predicted control window and emits a decision: the
action sequence, the decision delay (search duration), and the power
drawn while deciding.  The testbed executes decisions against the
cluster.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.core.actions import AdaptationAction
from repro.core.config import Configuration
from repro.core.search import AdaptationSearch, SearchOutcome
from repro.faults import DegradationLadder, DegradationSettings
from repro.telemetry import runtime as _telemetry
from repro.workload.monitor import BandEscape, WorkloadMonitor


@dataclass
class Decision:
    """One controller decision, ready for execution."""

    time: float
    controller: str
    actions: tuple[AdaptationAction, ...]
    control_window: float
    decision_seconds: float
    search_watts: float
    #: Search details; None for baselines that plan without the A*.
    outcome: Optional[SearchOutcome]
    escape: BandEscape

    @property
    def is_null(self) -> bool:
        """Whether the controller decided to keep the configuration."""
        return not self.actions


@dataclass
class ControllerStats:
    """Bookkeeping for Table I / Fig. 10."""

    invocations: int = 0
    escapes: int = 0
    skipped_busy: int = 0
    decisions: int = 0
    null_decisions: int = 0
    actions_issued: int = 0
    search_seconds: list[float] = field(default_factory=list)
    expansions: list[int] = field(default_factory=list)
    wall_seconds: list[float] = field(default_factory=list)
    # -- resilience (all zero unless enable_resilience was called) --
    faults_observed: int = 0
    degradations: int = 0
    recoveries: int = 0
    noop_decisions: int = 0
    replans: int = 0
    #: Searches the watchdog aborted at their wall-clock deadline.
    watchdog_aborts: int = 0
    #: Worker pools respawned after a supervised executor failure
    #: (bounded backoff, before the pin-to-serial fallback).
    worker_respawns: int = 0
    #: Executor failures that exhausted the respawn budget and pinned
    #: the search to the serial path.
    executor_failures: int = 0
    #: Anytime walkers that blew up mid-run and fell back to the exact
    #: A* incumbent path.
    strategy_failures: int = 0

    def mean_search_seconds(self) -> float:
        """Average decision delay over all searches."""
        if not self.search_seconds:
            return 0.0
        return sum(self.search_seconds) / len(self.search_seconds)


class MistralController:
    """A single Mistral controller instance (one node of the hierarchy)."""

    def __init__(
        self,
        name: str,
        search: AdaptationSearch,
        monitor: WorkloadMonitor,
        min_control_window: float = 120.0,
        utility_history: int = 8,
    ) -> None:
        self.name = name
        self.search = search
        self.monitor = monitor
        self.min_control_window = min_control_window
        self.stats = ControllerStats()
        self._recent_utilities: deque[float] = deque(maxlen=utility_history)
        #: Optional online model-feedback calibration (see
        #: :mod:`repro.core.feedback`); wired by the scenario builder.
        self.feedback = None
        #: One-step workload trend extrapolation (Eq. 1 plans for the
        #: "measured or predicted request rate"): during a ramp, plan
        #: for where the workload is heading, not where it was when the
        #: plan started.  Trends below the threshold are treated as
        #: ripple and ignored.
        self.trend_extrapolation = True
        self.trend_threshold = 2.0
        self._last_workloads: Optional[dict[str, float]] = None
        #: Search degradation ladder; ``None`` (the default) keeps every
        #: decision on the normal path — resilience must be opted into
        #: via :meth:`enable_resilience` so fault-free runs stay
        #: bit-identical to the pre-resilience controller.
        self.resilience: Optional[DegradationLadder] = None
        #: Eq. 3 utility wasted by aborted plans, charged against the
        #: next decision's expected-utility budget ``UH``.
        self._fault_debt: float = 0.0
        self._replan_requested: bool = False
        #: Simulation time of the latest sample — executor failures
        #: surface asynchronously from inside the search, which has no
        #: notion of simulation time, so the controller timestamps them
        #: with the sample it was processing.
        self._last_now: float = 0.0
        search.on_executor_failure = self._on_executor_failure

    def _on_executor_failure(self, kind: str) -> None:
        """A resilience signal surfaced from inside the search — a pool
        respawn (``"worker_respawn"``), a permanent pin-to-serial
        demotion (``"executor_failure"``), or a walker falling back to
        the exact A* (``"strategy_failure"``).  Tallied per kind and
        fed to the degradation ladder like any other execution fault."""
        if kind == "worker_respawn":
            self.stats.worker_respawns += 1
        elif kind == "executor_failure":
            self.stats.executor_failures += 1
        elif kind == "strategy_failure":
            self.stats.strategy_failures += 1
        self.record_execution_fault(self._last_now, kind)

    def shutdown_parallel(self) -> None:
        """Release the search's worker pool, if one is running."""
        self.search.close_executor()

    # -- resilience -------------------------------------------------------

    def enable_resilience(
        self, settings: Optional[DegradationSettings] = None
    ) -> None:
        """Attach the degradation ladder (normal → pruned → noop)."""
        self.resilience = DegradationLadder(settings)

    def record_execution_fault(self, now: float, kind: str) -> None:
        """Note one execution fault (failed action, host crash, ...).

        Feeds the degradation ladder; repeated faults within its window
        push the search down one rung.  No-op without resilience.
        """
        if self.resilience is None:
            return
        self.stats.faults_observed += 1
        new_level = self.resilience.record_fault(now, kind)
        if new_level is not None:
            self._note_degraded(now, new_level, kind)

    def charge_fault_cost(self, wasted_utility: float) -> None:
        """Charge the Eq. 3 utility wasted by an aborted plan.

        The debt tightens the next decision's pessimistic budget ``UH``
        (paper §IV-B): the self-aware search prunes sooner, preferring
        cheap plans while the cluster is misbehaving.  Consumed by the
        next search.  No-op without resilience.
        """
        if self.resilience is None:
            return
        self._fault_debt += max(0.0, wasted_utility)

    def request_replan(self, reason: str = "") -> None:
        """Force a decision at the next sample even without an escape.

        Called after an aborted plan: the bands may not have moved, but
        the cluster is not in the configuration the last decision
        assumed.  No-op without resilience.
        """
        if self.resilience is None:
            return
        self._replan_requested = True
        self.stats.replans += 1
        if _telemetry.enabled:
            _telemetry.registry.counter("resilience.replans").inc()
            _telemetry.tracer.event(
                "resilience.replan", controller=self.name, reason=reason
            )

    def _note_degraded(self, now: float, level: str, kind: str) -> None:
        self.stats.degradations += 1
        if _telemetry.enabled:
            _telemetry.registry.counter("resilience.degradations").inc()
            _telemetry.tracer.event(
                "resilience.degraded",
                controller=self.name,
                level=level,
                cause=kind,
                t_sim=now,
            )

    def _search_settings_for_level(self, level: str):
        """Per-run settings override for the current ladder rung.

        The pruned rung also pins the strategy to the exact A*: the
        ladder degrades under faults, and the stochastic walkers are
        exactly the machinery whose failures (injected solver faults,
        watchdog-tripping stalls) may have put us here — the pruned
        self-aware A* with a reduced expansion budget is the known-good
        incumbent path.
        """
        if level != "pruned":
            return None
        assert self.resilience is not None
        return dataclasses.replace(
            self.search.settings,
            self_aware=True,
            strategy="astar",
            max_expansions=self.resilience.settings.pruned_max_expansions,
        )

    def record_interval_utility(self, utility: float) -> None:
        """Feed the measured utility of one monitoring interval.

        The self-aware search's expected-utility budget ``UH`` is the
        lowest of these recent measurements (a pessimistic estimate,
        paper §IV-B).
        """
        self._recent_utilities.append(utility)

    def record_measurements(
        self,
        workloads: Mapping[str, float],
        measured_response_times: Mapping[str, float],
        configuration: Configuration,
    ) -> None:
        """Feed one interval's measured response times to the feedback
        loop, against the model's prediction for the same state."""
        if self.feedback is None:
            return
        predicted = self.search.estimator.estimate(
            configuration, dict(workloads)
        ).response_times
        self.feedback.observe(measured_response_times, predicted)

    def _planning_workloads(
        self, workloads: dict[str, float]
    ) -> dict[str, float]:
        """Workloads to plan for: extrapolate strong monotone trends."""
        if not self.trend_extrapolation or self._last_workloads is None:
            return workloads
        planned = {}
        for app, rate in workloads.items():
            trend = rate - self._last_workloads.get(app, rate)
            if abs(trend) > self.trend_threshold:
                planned[app] = min(100.0, max(0.0, rate + trend))
            else:
                planned[app] = rate
        return planned

    def expected_utility(self, control_window: float) -> Optional[float]:
        """Pessimistic expected utility over a control window."""
        if not self._recent_utilities:
            return None
        per_interval = min(self._recent_utilities)
        interval = self.search.estimator.utility.parameters.monitoring_interval
        return per_interval * control_window / interval

    def on_sample(
        self,
        now: float,
        workloads: Mapping[str, float],
        configuration: Configuration,
        busy: bool = False,
    ) -> Optional[Decision]:
        """Process one monitoring sample; maybe return a decision.

        ``busy`` indicates an adaptation plan is already executing, in
        which case the controller re-centers its bands but does not
        search (the system is mid-transition and estimates would be
        stale).
        """
        self.stats.invocations += 1
        self._last_now = now
        escape = self.monitor.observe(now, workloads)
        planning_workloads = self._planning_workloads(dict(workloads))
        self._last_workloads = dict(workloads)
        level = "normal"
        if self.resilience is not None:
            recovered = self.resilience.observe(now)
            if recovered is not None:
                self.stats.recoveries += 1
                if _telemetry.enabled:
                    _telemetry.registry.counter("resilience.recoveries").inc()
                    _telemetry.tracer.event(
                        "resilience.recovered",
                        controller=self.name,
                        level=recovered,
                        t_sim=now,
                    )
            level = self.resilience.level
            if escape is None and self._replan_requested and not busy:
                escape = self.monitor.force_escape(now, workloads)
        if escape is None:
            return None
        self._replan_requested = False
        self.stats.escapes += 1
        if busy:
            self.stats.skipped_busy += 1
            return None
        if level == "noop":
            # Bottom of the ladder: keep the configuration until the
            # cluster quiets down; the escape still re-centered bands.
            self.stats.noop_decisions += 1
            if _telemetry.enabled:
                _telemetry.registry.counter("resilience.noop_decisions").inc()
                _telemetry.tracer.event(
                    "resilience.noop_decision",
                    controller=self.name,
                    t_sim=now,
                )
            return None

        window = max(escape.estimated_next_interval, self.min_control_window)
        expected = self.expected_utility(window)
        debt_consumed = 0.0
        if expected is not None and self._fault_debt > 0.0:
            # Charge the utility wasted by aborted plans against the
            # pessimistic budget, consumed by this one decision.
            debt_consumed = self._fault_debt
            expected -= self._fault_debt
            self._fault_debt = 0.0
        expected_rate = (
            expected / window if expected is not None else None
        )
        with _telemetry.span(
            "controller.decision",
            controller=self.name,
            t_sim=now,
            escaped_apps=sorted(escape.escaped_apps),
            measured_interval=escape.measured_interval,
            control_window=window,
        ) as decision_span:
            outcome = self.search.search(
                configuration,
                planning_workloads,
                control_window=window,
                expected_utility=expected,
                expected_rate=expected_rate,
                settings_override=self._search_settings_for_level(level),
            )
            decision_span.set(
                actions=[type(a).__name__ for a in outcome.actions],
                null=outcome.is_null,
                expansions=outcome.expansions,
                decision_seconds=outcome.decision_seconds,
                search_watts=self.search.settings.search_watts_delta,
                predicted_utility=outcome.predicted_utility,
            )
            if outcome.provenance is not None:
                # Emitted inside the span so the event's ``parent``
                # links it to this decision.  Children pruned under a
                # fault-debited budget are relabelled first.
                outcome.provenance.apply_fault_debit(debt_consumed)
                _telemetry.tracer.event(
                    "decision.provenance",
                    controller=self.name,
                    t_sim=now,
                    **outcome.provenance.to_attrs(),
                )
        if _telemetry.enabled:
            _telemetry.registry.counter("controller.decisions").inc()
            if outcome.is_null:
                _telemetry.registry.counter("controller.null_decisions").inc()
        self.stats.decisions += 1
        self.stats.search_seconds.append(outcome.decision_seconds)
        self.stats.expansions.append(outcome.expansions)
        self.stats.wall_seconds.append(outcome.wall_seconds)
        if outcome.is_null:
            self.stats.null_decisions += 1
        self.stats.actions_issued += len(outcome.actions)
        if outcome.deadline_aborted:
            # The watchdog cut the search off at its wall-clock
            # deadline: the plan is the best incumbent, not the
            # converged optimum.  Feed the resilience ladder — repeated
            # aborts mean the search budget no longer fits this host
            # and the ladder should force the pruned (then noop) rung.
            self.stats.watchdog_aborts += 1
            if _telemetry.enabled:
                _telemetry.tracer.event(
                    "watchdog.search_aborted",
                    controller=self.name,
                    t_sim=now,
                    actions=len(outcome.actions),
                )
            self.record_execution_fault(now, "watchdog")
        if self.resilience is not None:
            deadline = self.resilience.settings.deadline_fraction * window
            if outcome.decision_seconds > deadline:
                # The decision overran its share of the control window;
                # escalate immediately — the plan may already be stale.
                self.stats.faults_observed += 1
                new_level = self.resilience.record_fault(now, "deadline")
                if new_level is not None:
                    self._note_degraded(now, new_level, "deadline")
        return Decision(
            time=now,
            controller=self.name,
            actions=outcome.actions,
            control_window=window,
            decision_seconds=outcome.decision_seconds,
            search_watts=self.search.settings.search_watts_delta,
            outcome=outcome,
            escape=escape,
        )
