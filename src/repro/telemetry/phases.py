"""Phase-attributed wall/CPU profiling for the adaptation search.

One search spends its time in a handful of distinguishable phases —
enumerating actions, scoring rounds (executor dispatch or array
kernels), solving LQN batches, merging scored children into vertices,
and frontier bookkeeping (push/pop on the open set).  A
:class:`PhaseProfile` accumulates wall and CPU seconds per phase; the
search emits the totals as one ``profile.phases`` event per run (see
``docs/TRACE_SCHEMA.md``).

The active profile is **thread-local**: ``AdaptationSearch.search``
installs one for its own thread when telemetry is enabled, and the
instrumented callees (``LqnSolver.solve_batch``, the array kernels in
``core/rounds``) attribute into whatever profile their calling thread
carries.  Work dispatched to pool threads/processes is attributed at
the dispatch site (the ``score`` phase wraps the whole round trip), so
nothing is double counted.  With telemetry disabled no profile is ever
installed and every instrumentation site costs one thread-local read
and a ``None`` check — the same contract as ``runtime.enabled``.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

#: Canonical phase names, in reporting order.  Profiles may carry other
#: names (callees are free to attribute new phases), but the toolkit
#: sorts these first.
PHASES = ("enumerate", "score", "solve", "merge", "frontier")

_tls = threading.local()


class PhaseProfile:
    """Per-phase wall/CPU accumulators for one search run.

    Additions are tiny and per-round (not per-child), so a plain lock
    keeps concurrent attributions from in-process worker threads safe
    without measurable cost.
    """

    __slots__ = ("_lock", "_acc")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # name -> [wall_seconds, cpu_seconds, calls]
        self._acc: dict[str, list] = {}

    def add(self, name: str, wall: float, cpu: float) -> None:
        """Attribute one timed region to ``name``."""
        with self._lock:
            entry = self._acc.get(name)
            if entry is None:
                self._acc[name] = [wall, cpu, 1]
            else:
                entry[0] += wall
                entry[1] += cpu
                entry[2] += 1

    def snapshot(self) -> dict[str, dict[str, float]]:
        """``{phase: {"wall": s, "cpu": s, "calls": n}}``, canonical
        phases first, extras in insertion order."""
        with self._lock:
            items = dict(self._acc)
        ordered = [name for name in PHASES if name in items]
        ordered += [name for name in items if name not in PHASES]
        return {
            name: {
                "wall": items[name][0],
                "cpu": items[name][1],
                "calls": items[name][2],
            }
            for name in ordered
        }

    def __bool__(self) -> bool:
        return bool(self._acc)


def set_profile(profile: Optional[PhaseProfile]) -> None:
    """Install (or clear, with ``None``) this thread's active profile."""
    _tls.profile = profile


def get_profile() -> Optional[PhaseProfile]:
    """This thread's active profile, or ``None`` when not profiling."""
    return getattr(_tls, "profile", None)


class _Timed:
    """Context manager timing one region into the active profile.

    Resolves the profile at ``__enter__`` so a region spanning a
    profile swap attributes to the profile that was active when it
    started.  A no-op (two attribute reads) when no profile is active.
    """

    __slots__ = ("_name", "_profile", "_wall", "_cpu")

    def __init__(self, name: str) -> None:
        self._name = name
        self._profile = None

    def __enter__(self) -> "_Timed":
        profile = get_profile()
        self._profile = profile
        if profile is not None:
            self._wall = time.perf_counter()
            self._cpu = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        profile = self._profile
        if profile is not None:
            profile.add(
                self._name,
                time.perf_counter() - self._wall,
                time.process_time() - self._cpu,
            )


def phase(name: str) -> _Timed:
    """Time a ``with`` block into the active profile (no-op without one)."""
    return _Timed(name)
