"""Decision provenance: why the controller chose the plan it chose.

Mistral's contribution is the *trade-off* — Eq. 3 balances the steady
utility a plan reaches against the transient perf/power utility and
the time spent adapting — yet a bare ``controller.decision`` span only
records that a decision happened.  This module assembles, per search,
a schema-versioned provenance record carrying:

* the chosen plan's per-term utility breakdown (steady term, transient
  perf/power accrual per action, adaptation seconds) whose terms sum
  to the decision's reported ``predicted_utility``;
* the top-k rejected candidates with scores and a rejection reason —
  ``dominated`` (a complete candidate that lost on utility),
  ``pruned`` (children discarded by the self-aware width pruning),
  ``deadline-aborted`` (frontier abandoned when the watchdog fired),
  or ``fault-debited`` (pruning under a budget debited by fault
  waste);
* the search stats that produced the plan.

Collection is **observational**: the collector only reads values the
search computed anyway, so decisions are bit-identical whether
provenance is on or off.  It activates only when telemetry is enabled
*and* ``runtime.provenance`` is set; with telemetry disabled no
collector is ever constructed (the <2% overhead contract of
DESIGN.md §9 is untouched).

The record reaches the trace as one ``decision.provenance`` event
emitted inside the ``controller.decision`` span, and reaches
experiment results via ``RunMetrics.decision_provenance``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

#: Version of the provenance record layout.  Bump on breaking changes;
#: readers (``scripts/trace_query.py``) reject versions they do not
#: know.
PROVENANCE_SCHEMA = 1

#: How many rejected-candidate records a provenance record retains.
TOP_K = 5

#: Candidate notes kept in memory during one search before compaction.
_NOTE_LIMIT = 64


@dataclass
class RejectedCandidate:
    """One rejected rival of the chosen plan.

    ``score_kind`` names what ``score`` measures: complete candidates
    carry their Eq. 3 ``utility``; pruned children were ranked (and
    discarded) by ``distance`` to the ideal; abandoned frontier entries
    carry the heap ``priority``.
    """

    reason: str
    score: float
    score_kind: str
    actions: tuple[str, ...] = ()
    #: Aggregated records (``pruned``) cover this many children.
    count: int = 1

    def to_attrs(self) -> dict:
        return {
            "reason": self.reason,
            "score": self.score,
            "score_kind": self.score_kind,
            "actions": list(self.actions),
            "count": self.count,
        }


@dataclass
class DecisionProvenance:
    """The full provenance record for one decision."""

    utility: dict
    chosen_actions: tuple[str, ...]
    rejected: list[RejectedCandidate]
    search: dict
    fault_debit: float = 0.0
    per_action: list = field(default_factory=list)

    def apply_fault_debit(self, debit: float) -> None:
        """Note the fault debt the controller charged against this
        decision's budget.  Children pruned under a debited budget were
        rejected *because of* the debt, so their record is relabelled."""
        if debit <= 0.0:
            return
        self.fault_debit = debit
        for candidate in self.rejected:
            if candidate.reason == "pruned":
                candidate.reason = "fault-debited"

    def to_attrs(self) -> dict:
        """The event payload (plain JSON-encodable dict)."""
        return {
            "schema": PROVENANCE_SCHEMA,
            "utility": dict(self.utility),
            "chosen_actions": list(self.chosen_actions),
            "rejected": [candidate.to_attrs() for candidate in self.rejected],
            "search": dict(self.search),
            "fault_debit": self.fault_debit,
            "per_action": list(self.per_action),
        }


def plan_breakdown(
    estimator,
    catalog,
    limits,
    cost_manager,
    workloads: Mapping[str, float],
    wkey: tuple,
    window: float,
    ideal_rate: float,
    start,
    actions: Sequence,
) -> tuple[dict, list]:
    """Replay the chosen action chain and decompose its Eq. 3 utility.

    Reproduces exactly the accrual the search performed per child —
    ``effective_duration * min(perf_rate + power_rate, ideal_rate)``,
    accumulated left to right — so ``steady + transient`` matches the
    vertex utility the search committed to (within float tolerance;
    the steady estimate may travel the delta path inside the search
    and the full path here, which are bit-compatible by the PR 1
    contract).

    Returns ``(totals, per_action)`` where ``totals`` carries the
    summable terms and ``per_action`` one record per chain action.
    """
    configuration = start
    elapsed = 0.0
    transient = 0.0
    transient_perf = 0.0
    transient_power = 0.0
    per_action: list[dict] = []
    for action in actions:
        steady = estimator.estimate(configuration, workloads, key=wkey)
        predicted = cost_manager.predict(action, configuration, workloads)
        perf_rate, power_rate = estimator.transient_rates(
            steady,
            workloads,
            predicted.rt_delta,
            predicted.power_delta_watts,
        )
        effective = min(predicted.duration, max(0.0, window - elapsed))
        rate = min(perf_rate + power_rate, ideal_rate)
        contribution = effective * rate
        per_action.append(
            {
                "action": type(action).__name__,
                "duration": predicted.duration,
                "effective_seconds": effective,
                "perf_rate": perf_rate,
                "power_rate": power_rate,
                "transient_rate": rate,
                "utility": contribution,
            }
        )
        configuration = action.apply(configuration, catalog, limits)
        elapsed += predicted.duration
        transient += contribution
        transient_perf += effective * perf_rate
        transient_power += effective * power_rate
    remaining = max(0.0, window - elapsed)
    steady_rate = estimator.estimate(
        configuration, workloads, key=wkey
    ).total_rate
    steady_term = remaining * steady_rate
    totals = {
        "steady": steady_term,
        "transient": transient,
        "total": steady_term + transient,
        "transient_perf": transient_perf,
        "transient_power": transient_power,
        "steady_rate": steady_rate,
        "adaptation_seconds": elapsed,
        "remaining_seconds": remaining,
    }
    return totals, per_action


class ProvenanceCollector:
    """Accumulates rejection evidence during one search run.

    The search calls the ``note_*`` hooks from its existing control
    points; every hook only *reads* already-computed values.  ``build``
    assembles the final record once the winner is known.
    """

    __slots__ = (
        "top_k",
        "_candidates",
        "_pruned_count",
        "_pruned_best",
        "_deadline_note",
    )

    def __init__(self, top_k: int = TOP_K) -> None:
        self.top_k = top_k
        #: ``(utility, action-name tuple)`` per candidate push.
        self._candidates: list[tuple[float, tuple[str, ...]]] = []
        self._pruned_count = 0
        self._pruned_best: Optional[float] = None
        self._deadline_note: Optional[tuple[int, Optional[float]]] = None

    # -- hooks (called from the search hot path, gated by the caller) --

    def note_candidate(self, utility: float, actions: Sequence) -> None:
        """One complete candidate (terminal twin) entered the frontier."""
        notes = self._candidates
        notes.append(
            (utility, tuple(type(action).__name__ for action in actions))
        )
        if len(notes) > _NOTE_LIMIT:
            # Keep the strongest rivals; the winner is by definition
            # among the top utilities, so compaction never loses it.
            notes.sort(key=lambda note: note[0], reverse=True)
            del notes[_NOTE_LIMIT // 2:]

    def note_pruned(self, count: int, best_score: Optional[float]) -> None:
        """``count`` children were discarded by width pruning;
        ``best_score`` is the best (lowest) distance among them."""
        self._pruned_count += count
        if best_score is not None and (
            self._pruned_best is None or best_score < self._pruned_best
        ):
            self._pruned_best = float(best_score)

    def note_deadline(
        self, frontier: int, best_priority: Optional[float]
    ) -> None:
        """The watchdog fired with ``frontier`` entries abandoned."""
        self._deadline_note = (frontier, best_priority)

    # -- assembly ------------------------------------------------------

    def build(
        self,
        utility: dict,
        chosen_actions: Sequence[str],
        predicted_utility: float,
        search: dict,
        per_action: Optional[list] = None,
    ) -> DecisionProvenance:
        chosen = tuple(chosen_actions)
        rejected: list[RejectedCandidate] = []
        ranked = sorted(
            self._candidates, key=lambda note: note[0], reverse=True
        )
        winner_seen = False
        for value, names in ranked:
            if (
                not winner_seen
                and abs(value - predicted_utility) <= 1e-9
                and tuple(
                    name for name in names if name != "NullAction"
                ) == chosen
            ):
                winner_seen = True  # the winner itself is not a rival
                continue
            rejected.append(
                RejectedCandidate(
                    reason="dominated",
                    score=value,
                    score_kind="utility",
                    actions=names,
                )
            )
            if len(rejected) >= self.top_k:
                break
        if self._pruned_count:
            rejected.append(
                RejectedCandidate(
                    reason="pruned",
                    score=(
                        self._pruned_best
                        if self._pruned_best is not None
                        else float("nan")
                    ),
                    score_kind="distance",
                    count=self._pruned_count,
                )
            )
        if self._deadline_note is not None:
            frontier, best_priority = self._deadline_note
            rejected.append(
                RejectedCandidate(
                    reason="deadline-aborted",
                    score=(
                        best_priority if best_priority is not None else 0.0
                    ),
                    score_kind="priority",
                    count=max(frontier, 1),
                )
            )
        return DecisionProvenance(
            utility=utility,
            chosen_actions=chosen,
            rejected=rejected,
            search=search,
            per_action=per_action or [],
        )
