"""Span-based structured tracing with pluggable JSONL sinks.

A trace is a flat stream of JSON-encodable event dicts.  Every event
carries the telemetry schema version so readers can refuse traces they
do not understand (``scripts/telemetry_report.py`` does exactly that).

Event shape (schema version 1)::

    {"v": 1, "kind": "span",  "name": "controller.decision",
     "seq": 7, "parent": 3, "depth": 1, "t": 0.0123, "dur": 0.0009,
     "attrs": {...}}
    {"v": 1, "kind": "event", "name": "sim.tick", "seq": 8,
     "parent": 3, "depth": 1, "t": 0.0141, "attrs": {...}}
    {"v": 1, "kind": "meta",  "schema": 1, "attrs": {...}}

``t`` is seconds on a *monotonic* clock relative to the tracer's epoch
(its creation or last ``reset``); ``dur`` is the span's wall duration
on the same clock.  ``seq`` numbers events in emission order;
``parent`` is the ``seq`` of the enclosing open span (or ``None`` at
the top level) and ``depth`` the nesting level.  Spans are emitted
when they *close*, so a child span appears in the stream before its
parent — readers reconstruct nesting from ``parent``/``depth``, not
from file order.

Sinks receive finished event dicts:

- :class:`NullSink` — drops everything (metrics-only telemetry);
- :class:`RingBufferSink` — keeps the most recent N events in memory
  (tests, interactive inspection);
- :class:`JsonlFileSink` — appends one JSON object per line to a file,
  starting with a ``meta`` header line.

The tracer keeps one open-span stack *per thread*: spans opened on a
worker thread (the parallel evaluation stage, concurrent 1st-level
controllers) nest under that thread's own spans, never under another
thread's, while ``seq`` stays globally ordered across threads.  Sinks
serialize their writes, so interleaved emissions from planning threads
produce valid JSONL.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from typing import IO, Optional, Union

#: Version of the event schema above.  Bump on any breaking change to
#: event fields; readers reject versions they do not know.
SCHEMA_VERSION = 1


class NullSink:
    """Discards every event."""

    def emit(self, event: dict) -> None:
        pass

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


class RingBufferSink:
    """Keeps the most recent ``capacity`` events in memory."""

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self._buffer: deque[dict] = deque(maxlen=capacity)

    def emit(self, event: dict) -> None:
        self._buffer.append(event)

    def events(self) -> list[dict]:
        """All retained events, oldest first."""
        return list(self._buffer)

    def clear(self) -> None:
        self._buffer.clear()

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass

    def __len__(self) -> int:
        return len(self._buffer)


class JsonlFileSink:
    """Appends events as JSON lines to ``path``.

    The first line written is a ``meta`` header carrying the schema
    version, so even an empty trace identifies itself.  ``autoflush``
    pushes every line straight to the OS — the mode worker-segment
    sinks run in, because a forked pool worker is terminated (not
    shut down) and would otherwise lose its buffered tail.  ``meta``
    merges extra attributes into the header line (e.g. the worker
    pid a segment belongs to).
    """

    def __init__(
        self,
        path: Union[str, "os.PathLike[str]"],
        autoflush: bool = False,
        meta: Optional[dict] = None,
    ) -> None:
        self._path = str(path)
        self._lock = threading.Lock()
        self._autoflush = autoflush
        self._file: Optional[IO[str]] = open(self._path, "w", encoding="utf-8")
        header = {"writer": "repro.telemetry", "path": self._path}
        if meta:
            header.update(meta)
        self.emit(
            {
                "v": SCHEMA_VERSION,
                "kind": "meta",
                "schema": SCHEMA_VERSION,
                "attrs": header,
            }
        )

    @property
    def path(self) -> str:
        """Where the trace is being written."""
        return self._path

    def emit(self, event: dict) -> None:
        # Serialize under the lock so events emitted from concurrent
        # planning threads land as whole lines.
        line = json.dumps(event, separators=(",", ":"), default=str) + "\n"
        with self._lock:
            if self._file is None:
                raise ValueError(f"sink for {self._path!r} is closed")
            self._file.write(line)
            if self._autoflush:
                self._file.flush()

    def flush(self) -> None:
        """Push buffered lines to the OS (teardown safety: a run that
        dies mid-window still leaves a complete trace on disk)."""
        with self._lock:
            if self._file is not None:
                self._file.flush()

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None


def merge_worker_segments(tracer: "Tracer", directory: str) -> int:
    """Merge every ``worker-<pid>.jsonl`` segment under ``directory``
    into ``tracer``'s stream (see :meth:`Tracer.merge_segment`).

    Segments are visited in sorted filename order so the merge is
    deterministic for a given set of files.  Truncated trailing lines
    (a worker terminated mid-write) are skipped, not fatal.  Returns
    the number of records merged; missing directories merge nothing.
    """
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return 0
    merged = 0
    for name in names:
        if not (name.startswith("worker-") and name.endswith(".jsonl")):
            continue
        try:
            pid = int(name[len("worker-"):-len(".jsonl")])
        except ValueError:
            continue
        records: list[dict] = []
        try:
            with open(
                os.path.join(directory, name), "r", encoding="utf-8"
            ) as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        records.append(json.loads(line))
                    except ValueError:
                        continue  # torn tail of a terminated worker
        except OSError:
            continue
        merged += tracer.merge_segment(records, worker=pid)
    return merged


class Span:
    """One open span; use via ``Tracer.span`` as a context manager.

    Attributes set during the span (``span["key"] = value`` or
    ``span.set(key, value)``) land in the emitted event's ``attrs``.
    """

    __slots__ = ("name", "attrs", "_tracer", "_start", "seq", "parent", "depth")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        attrs: dict,
        seq: int,
        parent: Optional[int],
        depth: int,
        start: float,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.seq = seq
        self.parent = parent
        self.depth = depth
        self._start = start

    def set(self, *args, **attrs) -> None:
        """Attach attributes: ``set(key, value)`` or ``set(k=v, ...)``."""
        if args:
            key, value = args
            self.attrs[key] = value
        self.attrs.update(attrs)

    def __setitem__(self, key: str, value) -> None:
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._close_span(self)


class _NullSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def set(self, *args, **attrs) -> None:
        pass

    def __setitem__(self, key: str, value) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Emits nested spans and point events to one sink."""

    def __init__(
        self,
        sink: Optional[object] = None,
        epoch: Optional[float] = None,
    ) -> None:
        self._sink = sink if sink is not None else NullSink()
        # ``epoch`` pins the timeline to another tracer's: forked pool
        # workers inherit the parent's ``perf_counter`` origin (Linux
        # CLOCK_MONOTONIC is process-independent), so worker tracers
        # built with the parent's epoch emit ``t`` values directly
        # comparable to — and mergeable into — the parent trace.
        self._epoch = epoch if epoch is not None else time.perf_counter()
        # ``next()`` on an iterator is atomic under the GIL, so seq
        # numbers stay unique and globally ordered without a lock.
        self._seq = itertools.count()
        self._local = threading.local()

    @property
    def epoch(self) -> float:
        """The raw ``perf_counter`` value ``t`` fields are relative to."""
        return self._epoch

    @property
    def sink(self):
        """The sink receiving this tracer's events."""
        return self._sink

    def set_sink(self, sink) -> None:
        """Swap the sink (closing the old one)."""
        self._sink.close()
        self._sink = sink

    def reset(self) -> None:
        """Restart the epoch, sequence numbers, and this thread's
        open-span stack (call between runs, not mid-trace: other
        threads' stacks reset lazily when they next touch the tracer
        after their spans close)."""
        self._epoch = time.perf_counter()
        self._seq = itertools.count()
        self._stack().clear()

    # -- emission ----------------------------------------------------------

    def _stack(self) -> list:
        """The calling thread's open-span stack (created on demand)."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _next_seq(self) -> int:
        return next(self._seq)

    def span(self, name: str, **attrs) -> Span:
        """Open a span; closing it (context-manager exit) emits it."""
        stack = self._stack()
        span = Span(
            self,
            name,
            attrs,
            seq=self._next_seq(),
            parent=stack[-1].seq if stack else None,
            depth=len(stack),
            start=time.perf_counter(),
        )
        stack.append(span)
        return span

    def _close_span(self, span: Span) -> None:
        end = time.perf_counter()
        stack = self._stack()
        # Tolerate mispaired exits (an inner span leaked open): close
        # everything above the exiting span as well.
        while stack and stack[-1] is not span:
            stack.pop()
        if stack:
            stack.pop()
        self._sink.emit(
            {
                "v": SCHEMA_VERSION,
                "kind": "span",
                "name": span.name,
                "seq": span.seq,
                "parent": span.parent,
                "depth": span.depth,
                "t": span._start - self._epoch,
                "dur": end - span._start,
                "attrs": span.attrs,
            }
        )

    def event(self, name: str, **attrs) -> None:
        """Emit one instantaneous event at the current nesting level."""
        stack = self._stack()
        self._sink.emit(
            {
                "v": SCHEMA_VERSION,
                "kind": "event",
                "name": name,
                "seq": self._next_seq(),
                "parent": stack[-1].seq if stack else None,
                "depth": len(stack),
                "t": time.perf_counter() - self._epoch,
                "attrs": attrs,
            }
        )

    def merge_segment(self, records, worker: Optional[int] = None) -> int:
        """Splice another tracer's records into this trace.

        ``records`` is an iterable of parsed event dicts (a worker
        segment file, in its original emission order).  Every span and
        event is re-numbered from this tracer's sequence — so merged
        ``seq`` values are unique and monotone within the combined
        stream — and intra-segment ``parent`` references are rewritten
        through the same mapping.  A record whose parent falls outside
        the segment (or a top-level worker span) becomes a root
        (``parent: null``).  ``worker`` lands in every merged record's
        attrs so readers can tell worker-side spans apart.  ``meta``
        lines and unknown schema versions are skipped.  Returns the
        number of records merged.

        ``t``/``dur`` are copied verbatim: segments are written by
        tracers sharing this tracer's epoch (see ``Tracer(epoch=...)``),
        so their timeline is already the parent's.
        """
        usable = [
            record
            for record in records
            if isinstance(record, dict)
            and record.get("kind") in ("span", "event")
            and record.get("v") == SCHEMA_VERSION
        ]
        # Two passes: spans are emitted on *close*, so a child precedes
        # its parent in segment order and parent references point
        # forward — every new seq must exist before any is rewritten.
        seq_map: dict[int, int] = {}
        new_seqs: list[int] = []
        for record in usable:
            new_seq = self._next_seq()
            new_seqs.append(new_seq)
            old_seq = record.get("seq")
            if isinstance(old_seq, int):
                seq_map[old_seq] = new_seq
        for record, new_seq in zip(usable, new_seqs):
            out = dict(record)
            out["seq"] = new_seq
            out["parent"] = seq_map.get(record.get("parent"))
            attrs = dict(out.get("attrs") or {})
            if worker is not None:
                attrs["worker"] = worker
            out["attrs"] = attrs
            self._sink.emit(out)
        return len(usable)
