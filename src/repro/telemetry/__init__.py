"""Telemetry: metrics registry, structured tracing, profiling hooks.

Mistral's defining claim is that the controller accounts for the cost
of its own decision procedure (paper Fig. 10, Table I).  This package
makes that cost — and everything else the optimizers do — observable:

- :mod:`repro.telemetry.metrics` — counters, gauges, fixed-bucket
  histograms in a :class:`MetricsRegistry`, plus aggregated
  hit/miss/evict stats for every named LRU cache;
- :mod:`repro.telemetry.trace` — a span-based tracer emitting
  schema-versioned JSONL events to pluggable sinks (in-memory ring
  buffer, JSONL file, null);
- :mod:`repro.telemetry.runtime` — the process-global enabled flag,
  registry, and tracer that the instrumented hot layers (search,
  solver, caches, controller, simulation engine) consult.

Usage::

    from repro import telemetry

    telemetry.enable(jsonl_path="trace.jsonl")
    ...  # run searches / experiments
    telemetry.emit_metrics_snapshot()
    telemetry.disable()
    # then: python scripts/telemetry_report.py trace.jsonl

Telemetry is **off by default** and instrumented code guards every
instrument touch behind ``runtime.enabled``, so the disabled overhead
is one attribute read and a branch per site (< 2% end to end; see
DESIGN.md §9 for the contract and the event schema).
"""

from repro.telemetry.metrics import (
    DEFAULT_TIME_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.runtime import (
    disable,
    emit_metrics_snapshot,
    enable,
    event,
    flush,
    register_cache,
    registry,
    span,
    tracer,
)
from repro.telemetry.trace import (
    SCHEMA_VERSION,
    JsonlFileSink,
    NullSink,
    RingBufferSink,
    Span,
    Tracer,
)
from repro.telemetry import runtime

__all__ = [
    "DEFAULT_TIME_BOUNDS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SCHEMA_VERSION",
    "JsonlFileSink",
    "NullSink",
    "RingBufferSink",
    "Span",
    "Tracer",
    "disable",
    "emit_metrics_snapshot",
    "enable",
    "enabled",
    "event",
    "flush",
    "register_cache",
    "registry",
    "runtime",
    "span",
    "tracer",
]


def enabled() -> bool:
    """Whether telemetry is currently on (live view of the flag)."""
    return runtime.enabled
