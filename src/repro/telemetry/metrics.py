"""Zero-dependency metric instruments and their registry.

Three instrument kinds, mirroring the usual time-series vocabulary:

- :class:`Counter` — monotonically increasing integer (``inc``).
  Python integers are arbitrary-precision, so counters accumulate
  without overflow for any run length.
- :class:`Gauge` — last-written float (``set``).
- :class:`Histogram` — fixed upper-bound buckets chosen at creation
  (``observe``).  Bucket ``i`` counts observations in
  ``(bounds[i-1], bounds[i]]`` — a value landing exactly on a bound is
  counted in that bound's bucket — and one overflow bucket catches
  everything above the last bound.

The :class:`MetricsRegistry` hands out instruments by dotted name
(``search.expansions``) and snapshots them all into one plain dict.
It also aggregates the hit/miss/eviction counters of registered
:class:`~repro.core.lru.LruDict` caches by cache name (instances are
held by weak reference, so registering never extends a cache's life).

Instruments are deliberately *not* guarded by the global telemetry
flag themselves: the flag check belongs at the instrumentation site
(``if _telemetry.enabled: ...``), so that disabled code paths never
even touch an instrument — see ``repro.telemetry.runtime``.
"""

from __future__ import annotations

import weakref
from bisect import bisect_left
from typing import Iterable, Optional, Sequence

#: Default histogram bounds, in seconds — spans microseconds (one
#: incremental child evaluation) to whole seconds (a naive full-eval
#: expansion wave).
DEFAULT_TIME_BOUNDS: tuple[float, ...] = (
    0.0001,
    0.0003,
    0.001,
    0.003,
    0.01,
    0.03,
    0.1,
    0.3,
    1.0,
)


class Counter:
    """Monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1); negative increments are rejected."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


class Gauge:
    """Last-written float metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge with ``value``."""
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with an overflow bucket."""

    __slots__ = ("name", "bounds", "counts", "count", "sum")

    def __init__(
        self, name: str, bounds: Sequence[float] = DEFAULT_TIME_BOUNDS
    ) -> None:
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bound")
        ordered = tuple(float(bound) for bound in bounds)
        if list(ordered) != sorted(set(ordered)):
            raise ValueError(
                f"histogram {name!r} bounds must be strictly increasing"
            )
        self.name = name
        self.bounds = ordered
        self.counts = [0] * (len(ordered) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation.

        ``bisect_left`` implements the upper-bound convention: a value
        equal to ``bounds[i]`` falls in bucket ``i``, anything above
        the last bound in the overflow bucket.
        """
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    @property
    def mean(self) -> float:
        """Mean of all observations (0.0 before the first)."""
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 < q <= 1``) from buckets.

        Linear interpolation inside the bucket holding the target
        rank, the standard fixed-bucket estimator: the true value is
        somewhere in ``(lo, hi]``, and observations are assumed spread
        evenly across it.  The first bucket interpolates up from 0;
        ranks landing in the overflow bucket clamp to the last bound
        (there is no upper edge to interpolate toward).  Returns 0.0
        before the first observation.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q!r}")
        if not self.count:
            return 0.0
        target = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if not bucket_count:
                continue
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= target:
                if index >= len(self.bounds):
                    return self.bounds[-1]
                lo = self.bounds[index - 1] if index else 0.0
                hi = self.bounds[index]
                return lo + (hi - lo) * (target - previous) / bucket_count
        return self.bounds[-1]

    def percentiles(self) -> dict[str, float]:
        """The standard p50/p90/p99 summary (see :meth:`percentile`)."""
        return {
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
        }


class MetricsRegistry:
    """Named instruments plus registered caches, snapshot-able as a dict."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        # name -> weak refs to LruDict-shaped objects (hits / misses /
        # evictions / __len__ / capacity).  Several instances may share
        # a name (one estimator cache per testbed); stats aggregate.
        self._caches: dict[str, list[weakref.ref]] = {}

    # -- instruments -------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use."""
        instrument = self._counters.get(name)
        if instrument is None:
            self._check_free(name, self._counters)
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created on first use."""
        instrument = self._gauges.get(name)
        if instrument is None:
            self._check_free(name, self._gauges)
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        """The histogram called ``name``, created on first use.

        ``bounds`` only applies at creation; later callers get the
        existing instrument whatever bounds they pass.
        """
        instrument = self._histograms.get(name)
        if instrument is None:
            self._check_free(name, self._histograms)
            instrument = self._histograms[name] = Histogram(
                name, bounds if bounds is not None else DEFAULT_TIME_BOUNDS
            )
        return instrument

    def _check_free(self, name: str, owner: dict) -> None:
        for kind in (self._counters, self._gauges, self._histograms):
            if kind is not owner and name in kind:
                raise ValueError(
                    f"metric name {name!r} already used by another kind"
                )

    # -- caches ------------------------------------------------------------

    def register_cache(self, name: str, cache: object) -> None:
        """Surface a cache's hit/miss/evict counters under ``name``."""
        self._caches.setdefault(name, []).append(weakref.ref(cache))

    def _live_caches(self, refs: Iterable[weakref.ref]) -> list[object]:
        return [cache for ref in refs for cache in (ref(),) if cache is not None]

    def cache_stats(self) -> dict[str, dict[str, int]]:
        """Aggregated per-name cache counters (dead instances dropped)."""
        stats: dict[str, dict[str, int]] = {}
        for name, refs in sorted(self._caches.items()):
            live = self._live_caches(refs)
            if not live:
                continue
            stats[name] = {
                "instances": len(live),
                "hits": sum(cache.hits for cache in live),
                "misses": sum(cache.misses for cache in live),
                "evictions": sum(cache.evictions for cache in live),
                "entries": sum(len(cache) for cache in live),
            }
        return stats

    # -- snapshot ----------------------------------------------------------

    def snapshot(self) -> dict:
        """Everything the registry knows, as one JSON-friendly dict."""
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: gauge.value
                for name, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    "bounds": list(histogram.bounds),
                    "counts": list(histogram.counts),
                    "count": histogram.count,
                    "sum": histogram.sum,
                    "mean": histogram.mean,
                    **histogram.percentiles(),
                }
                for name, histogram in sorted(self._histograms.items())
            },
            "caches": self.cache_stats(),
        }

    def reset(self) -> None:
        """Drop every instrument and forget dead cache references.

        Live caches stay registered (their own counters are not
        zeroed — they belong to the cache), so a reset starts a fresh
        measurement window for instruments while cache totals remain
        cumulative.
        """
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        for name, refs in list(self._caches.items()):
            live = [ref for ref in refs if ref() is not None]
            if live:
                self._caches[name] = live
            else:
                del self._caches[name]
