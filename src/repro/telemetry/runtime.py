"""Global telemetry state: the enabled flag, registry, and tracer.

Instrumented hot paths import this module once and guard every
instrument touch behind the module-level flag::

    from repro.telemetry import runtime as _telemetry

    if _telemetry.enabled:
        _telemetry.registry.counter("search.expansions").inc()

When ``enabled`` is ``False`` (the default) the cost of an
instrumentation site is one module-attribute read and a branch — no
instrument is looked up, no counter attribute is touched, no event is
built.  That is the repository's overhead contract: telemetry off must
stay within noise (< 2%) of an uninstrumented build (see DESIGN.md §9).

Cooler paths (one call per controller escape, per experiment run) may
use the :func:`span` / :func:`event` helpers, which collapse to a
shared no-op span / an early return while disabled.

The module is process-global on purpose: the searches, estimators, and
controllers of one experiment are wired across many objects, and
threading a telemetry handle through every constructor would distort
the reproduction's API for no benefit in a single-threaded simulator.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.trace import (
    NULL_SPAN,
    JsonlFileSink,
    NullSink,
    RingBufferSink,
    Span,
    Tracer,
)

#: The one flag every instrumentation site checks.
enabled: bool = False

#: Whether decision-provenance collection rides along while telemetry
#: is enabled (see :mod:`repro.telemetry.provenance`).  Only consulted
#: behind ``enabled`` — with telemetry off this flag costs nothing.
provenance: bool = True

#: Process-wide instrument registry.
registry = MetricsRegistry()

#: Process-wide tracer (sink swapped by :func:`enable`).
tracer = Tracer(NullSink())


def enable(
    jsonl_path: Optional[str] = None,
    sink: Optional[object] = None,
    reset_metrics: bool = True,
    collect_provenance: bool = True,
) -> None:
    """Turn telemetry on.

    ``jsonl_path`` routes trace events to a JSONL file;  ``sink``
    installs any object with ``emit(dict)``/``close()`` (mutually
    exclusive with ``jsonl_path``); with neither, events go to an
    in-memory :class:`RingBufferSink`.  ``reset_metrics`` starts the
    registry from zero so one enable/disable pair brackets one
    measurement window.  ``collect_provenance`` attaches a
    ``decision.provenance`` record to every controller decision (see
    :mod:`repro.telemetry.provenance`); decisions themselves are
    bit-identical either way.
    """
    global enabled, provenance
    if jsonl_path is not None and sink is not None:
        raise ValueError("pass jsonl_path or sink, not both")
    if jsonl_path is not None:
        sink = JsonlFileSink(jsonl_path)
    elif sink is None:
        sink = RingBufferSink()
    if reset_metrics:
        registry.reset()
    tracer.set_sink(sink)
    tracer.reset()
    provenance = collect_provenance
    enabled = True


def disable() -> None:
    """Turn telemetry off and close the active sink."""
    global enabled
    enabled = False
    tracer.set_sink(NullSink())


def flush() -> None:
    """Flush the active sink's buffered events to their destination.

    Safe whether or not telemetry is enabled; the testbed calls this in
    its teardown path so an interrupted run still leaves a complete
    JSONL trace behind.
    """
    sink_flush = getattr(tracer.sink, "flush", None)
    if sink_flush is not None:
        sink_flush()


def span(name: str, **attrs) -> Union[Span, object]:
    """A tracer span, or a shared no-op span while disabled."""
    if not enabled:
        return NULL_SPAN
    return tracer.span(name, **attrs)


def event(name: str, **attrs) -> None:
    """Emit a point event (dropped while disabled)."""
    if enabled:
        tracer.event(name, **attrs)


def register_cache(name: str, cache: object) -> None:
    """Surface an LRU cache's counters in metric snapshots."""
    registry.register_cache(name, cache)


def emit_metrics_snapshot(**attrs) -> None:
    """Emit the full registry snapshot as one ``metrics.snapshot`` event.

    Call at the end of a run so the trace carries the counters that
    explain it (cache hit ratios, solver delta/full split, prune
    counts); ``scripts/telemetry_report.py`` reads the last snapshot.
    """
    if enabled:
        tracer.event("metrics.snapshot", metrics=registry.snapshot(), **attrs)
