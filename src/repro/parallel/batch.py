"""Round-scoring kernels shared by every executor (DESIGN.md §11).

One expansion round of the adaptation search turns a parent vertex and
its enumerated actions into scored children.  The per-action work that
parallelizes cleanly — validating the action's placement delta and
predicting its transient cost — lives here as plain functions over a
:class:`ScoreContext`, so the serial executor calls them inline, the
thread executor calls them from a pool sharing the same objects, and
the process executor calls them in forked workers that inherited the
context as a module global (fork-safe: nothing but the small per-round
payload ever crosses the pickle boundary).

Cost predictions are memoized: a prediction depends on the parent
configuration only through the action's affected-application set and
affected-host count, so across the thousands of children one search
generates the distinct-key count is small.  Predictions are pure table
lookups — a memo hit returns float-identical values, keeping every
executor bit-identical to the serial path.

:func:`column_sums` is the bit-identity workhorse of the vectorized
scoring in ``core/search``: reducing a ``[terms, children]`` matrix by
accumulating one row at a time reproduces, per child, the exact
left-to-right float additions of the serial ``sum(list)`` — unlike
``numpy.sum``, whose pairwise summation rounds differently.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.core.actions import (
    ActionError,
    AdaptationAction,
    AddReplica,
    MigrateVm,
    RemoveReplica,
    RoundDeltaResolver,
)
from repro.core.config import (
    ConfigArray,
    Configuration,
    ConstraintLimits,
    VmCatalog,
)
from repro.costmodel.manager import CostManager, PredictedCost

#: An entry of a scored round: the action's placement delta plus its
#: predicted cost, or None when the action is inapplicable.
ScoredAction = Optional[tuple[tuple, PredictedCost]]


class ShmCorruptionError(RuntimeError):
    """A shared-memory snapshot failed its integrity checks in a worker.

    Raised when the published sequence number does not match the
    payload's (a torn publish) or the payload bytes fail the published
    CRC (a flipped byte).  Defined here — not in ``executors`` — so the
    exception pickles cleanly across the process-pool boundary; the
    executor catches it, republishes the full snapshot, and retries the
    round once before giving up.
    """


class StaleWorkerError(RuntimeError):
    """A pool worker served a payload from a different executor epoch.

    ``multiprocessing.Pool`` silently respawns workers that die, and a
    respawned worker forks with whatever module globals are installed
    *at respawn time* — which, with several executors alive (one per
    search in a hierarchy), may be another executor's context.  Every
    payload therefore carries its executor's epoch and workers refuse
    mismatches instead of scoring against the wrong catalog.
    """


@dataclass(frozen=True)
class ScoreContext:
    """Everything a worker needs to score actions (picklable, and
    installed into process workers before the fork).

    ``host_ids`` is the testbed's host universe in order.  It is not
    read by the scoring kernels themselves; the process executor uses
    it to pin the :class:`~repro.core.config.ConfigCodec` universes of
    its shared-memory configuration channel.  Empty means "unknown" and
    simply disables the channel (rounds fall back to pickling the
    parent configuration, exactly the pre-channel behaviour).
    """

    catalog: VmCatalog
    limits: ConstraintLimits
    cost_manager: CostManager
    host_ids: tuple = ()


#: Keep per-executor prediction memos bounded; a search run cycles
#: through few distinct (workload, action, neighbourhood) keys, but an
#: executor reused across thousands of searches should not grow without
#: limit.
_MEMO_LIMIT = 100_000


_EMPTY_APPS: frozenset = frozenset()


def apps_by_host(
    context: ScoreContext, configuration: Configuration
) -> dict:
    """Host id -> frozenset of application names placed on it.

    One O(placements) pass replaces the per-action host scans of
    ``AdaptationAction.affected_apps`` when a whole round is scored at
    once; hosts with no VMs are simply absent (look up with
    ``_EMPTY_APPS`` as the default).
    """
    get = context.catalog.get
    collected: dict[str, set] = {}
    for vm_id, placement in configuration.placement_items():
        collected.setdefault(placement.host_id, set()).add(get(vm_id).app_name)
    return {host: frozenset(apps) for host, apps in collected.items()}


def predict_key(
    context: ScoreContext,
    action: AdaptationAction,
    configuration: Configuration,
    wkey: tuple,
    host_apps: Optional[dict] = None,
) -> tuple:
    """Memo key capturing everything a cost prediction reads.

    :meth:`CostManager.predict` consults the configuration only through
    ``affected_apps`` (which applications' response times move) and
    ``len(affected_hosts)`` (the power-delta scaling of migrations and
    replica changes); the workload vector enters via the table lookup
    rate.  Two calls with equal keys return float-identical costs.

    ``host_apps`` (the round's :func:`apps_by_host` map) enables
    per-kind fast keys that skip building the affected-app union —
    sound because every prediction on this path follows a successful
    ``placement_delta``, which pins the facts the generic key spells
    out.  Per kind:

    * cap changes, power toggles, null: the affected set ({the VM's
      app}, or empty) and host count are constants of the action, so
      ``(wkey, action)`` suffices;
    * migrate: the VM is placed (delta validated) and source != target
      (same-host migrations raise), so the affected set is exactly
      ``apps(src) | apps(dst)`` (the VM's own app is in ``apps(src)``)
      and the host count is always 2 — keying the two sets separately
      is at worst finer than their union;
    * add/remove replica: one affected host, and the affected set is
      the target/source host's apps plus the action's own app.

    Fast keys and generic keys are tuples of different shapes, so the
    two schemes never collide within one memo.
    """
    if host_apps is not None:
        kind = type(action)
        if kind is MigrateVm:
            placement = configuration.placement_of(action.vm_id)
            src = (
                host_apps.get(placement.host_id, _EMPTY_APPS)
                if placement is not None
                else _EMPTY_APPS
            )
            return (
                wkey,
                action,
                src,
                host_apps.get(action.target_host, _EMPTY_APPS),
            )
        if kind is AddReplica:
            return (
                wkey,
                action,
                host_apps.get(action.target_host, _EMPTY_APPS),
            )
        if kind is RemoveReplica:
            placement = configuration.placement_of(action.vm_id)
            src = (
                host_apps.get(placement.host_id, _EMPTY_APPS)
                if placement is not None
                else _EMPTY_APPS
            )
            return (wkey, action, src)
        return (wkey, action)
    return (
        wkey,
        action,
        action.affected_apps(configuration, context.catalog),
        len(action.affected_hosts(configuration)),
    )


def predict_cached(
    context: ScoreContext,
    action: AdaptationAction,
    configuration: Configuration,
    workloads: Mapping[str, float],
    memo: Optional[dict],
    wkey: tuple,
    host_apps: Optional[dict] = None,
) -> PredictedCost:
    """Predict one action's cost through the memo."""
    if memo is None:
        return context.cost_manager.predict(action, configuration, workloads)
    key = predict_key(context, action, configuration, wkey, host_apps)
    predicted = memo.get(key)
    if predicted is None:
        if len(memo) >= _MEMO_LIMIT:
            memo.clear()
        predicted = context.cost_manager.predict(
            action, configuration, workloads
        )
        memo[key] = predicted
    return predicted


def score_actions(
    context: ScoreContext,
    configuration: Configuration,
    actions: Sequence[AdaptationAction],
    workloads: Mapping[str, float],
    memo: Optional[dict] = None,
    wkey: tuple = (),
) -> list[ScoredAction]:
    """Delta + predicted cost per action, ``None`` for inapplicable ones.

    Results are positional: ``out[i]`` corresponds to ``actions[i]``,
    which is what makes chunked parallel execution mergeable into the
    exact serial order.
    """
    out: list[ScoredAction] = []
    host_apps = apps_by_host(context, configuration) if memo is not None else None
    resolver = RoundDeltaResolver(
        configuration, context.catalog, context.limits
    )
    for action in actions:
        try:
            delta = resolver.delta(action)
        except ActionError:
            out.append(None)
            continue
        out.append(
            (
                delta,
                predict_cached(
                    context,
                    action,
                    configuration,
                    workloads,
                    memo,
                    wkey,
                    host_apps,
                ),
            )
        )
    return out


def predict_actions(
    context: ScoreContext,
    configuration: Configuration,
    actions: Sequence[AdaptationAction],
    workloads: Mapping[str, float],
    memo: Optional[dict] = None,
    wkey: tuple = (),
) -> list[PredictedCost]:
    """Predicted cost per action (all already validated by their delta)."""
    host_apps = apps_by_host(context, configuration) if memo is not None else None
    return [
        predict_cached(
            context, action, configuration, workloads, memo, wkey, host_apps
        )
        for action in actions
    ]


# ----------------------------------------------------------------------
# process-pool side (fork-inherited context, pickle-light payloads)
# ----------------------------------------------------------------------

#: Installed by :func:`install_worker_context` before the process pool
#: forks; workers read it instead of receiving it per task.
_WORKER_CONTEXT: Optional[ScoreContext] = None
#: Per-worker prediction memo (each forked process owns one).
_WORKER_MEMO: dict = {}
#: The executor's shared-memory configuration channel (or None), also
#: fork-inherited.  Workers only ever *read* it.
_WORKER_CHANNEL = None
#: Per-worker decode cache: ``(seq, Configuration)`` of the last shared
#: snapshot this worker decoded.  One round publishes one sequence
#: number, so every chunk of the round after the first is a cache hit.
_WORKER_SNAPSHOT: Optional[tuple] = None
#: The executor epoch the worker context was installed under (see
#: :class:`StaleWorkerError`); payloads carry the dispatching
#: executor's epoch and workers reject mismatches.
_WORKER_EPOCH: int = 0
#: Worker trace staging: ``(segment_dir, parent_epoch)`` installed
#: before the pool forks (or None — tracing off).  Each forked worker
#: lazily opens its own JSONL segment in ``segment_dir`` and emits
#: spans on the parent's epoch; the executor merges the segments back
#: into the main trace on close (see ``Tracer.merge_segment``).
_WORKER_TRACE_SPEC: Optional[tuple] = None
#: The forked worker's lazily-built tracer (one per process).
_WORKER_TRACER = None


def install_worker_context(context: ScoreContext, epoch: int = 0) -> None:
    """Stage the context for forked workers (call before pool creation).

    ``epoch`` identifies the installing executor; workers echo-check it
    against each payload so a pool-respawned worker that forked under a
    *different* executor's globals fails loudly instead of scoring
    against the wrong context.
    """
    global _WORKER_CONTEXT, _WORKER_EPOCH
    _WORKER_CONTEXT = context
    _WORKER_EPOCH = epoch
    _WORKER_MEMO.clear()


def install_worker_channel(channel) -> None:
    """Stage the shared-memory configuration channel (call before the
    pool forks; pass ``None`` to clear a previous executor's channel)."""
    global _WORKER_CHANNEL, _WORKER_SNAPSHOT
    _WORKER_CHANNEL = channel
    _WORKER_SNAPSHOT = None


def install_worker_trace(spec: Optional[tuple]) -> None:
    """Stage worker trace segments (call before the pool forks).

    ``spec`` is ``(segment_dir, parent_epoch)`` — workers append their
    spans to ``segment_dir/worker-<pid>.jsonl`` with ``t`` relative to
    the parent tracer's epoch (sound under ``fork`` on Linux, where
    ``perf_counter`` reads the shared CLOCK_MONOTONIC) — or ``None``
    to clear a previous executor's staging.
    """
    global _WORKER_TRACE_SPEC, _WORKER_TRACER
    _WORKER_TRACE_SPEC = spec
    _WORKER_TRACER = None


def _worker_tracer():
    """This worker process's segment tracer, opened on first use."""
    global _WORKER_TRACER
    tracer = _WORKER_TRACER
    if tracer is None and _WORKER_TRACE_SPEC is not None:
        from repro.telemetry.trace import JsonlFileSink, Tracer

        directory, epoch = _WORKER_TRACE_SPEC
        pid = os.getpid()
        sink = JsonlFileSink(
            os.path.join(directory, f"worker-{pid}.jsonl"),
            # A pool worker is terminated, never shut down: every line
            # must reach the OS as soon as its span closes.
            autoflush=True,
            meta={"worker": pid, "segment": True},
        )
        tracer = _WORKER_TRACER = Tracer(sink, epoch=epoch)
    return tracer


def shm_payload_checksum(
    caps: np.ndarray, hosts: np.ndarray, powered: np.ndarray
) -> int:
    """CRC-32 over the channel payload, in layout order.

    Shared by the publisher (which stamps it into the channel's CRC
    slot) and the workers (which verify their copy against the stamp).
    """
    crc = zlib.crc32(caps.tobytes())
    crc = zlib.crc32(hosts.tobytes(), crc)
    return zlib.crc32(powered.tobytes(), crc)


def _shared_configuration(seq: int) -> Configuration:
    """Decode and verify the parent configuration published under ``seq``.

    The executor guarantees publishes never overlap in-flight tasks
    (rounds that might race a straggler pickle the configuration
    instead), so the snapshot this worker reads is always the one the
    payload's sequence number names; the checks below are integrity
    tripwires, not a synchronization mechanism.  A mismatch — torn
    sequence number or failed payload CRC — raises
    :class:`ShmCorruptionError`, which the executor answers with a full
    republish and one retry of the round.
    """
    global _WORKER_SNAPSHOT
    snapshot = _WORKER_SNAPSHOT
    if snapshot is not None and snapshot[0] == seq:
        return snapshot[1]
    channel = _WORKER_CHANNEL
    if channel is None:
        raise RuntimeError("shared-memory payload but no channel installed")
    published = int(channel.seq_slot[0])
    if published != seq:
        raise ShmCorruptionError(
            f"shared snapshot out of sync: payload seq {seq}, shm {published}"
        )
    caps = channel.caps.copy()
    hosts = channel.hosts.copy()
    powered = channel.powered.copy()
    expected = int(channel.crc_slot[0])
    actual = shm_payload_checksum(caps, hosts, powered)
    if actual != expected:
        raise ShmCorruptionError(
            f"shared snapshot seq {seq} failed its checksum: "
            f"crc {actual:#010x} != published {expected:#010x}"
        )
    configuration = channel.codec.decode(ConfigArray(hosts, caps, powered))
    _WORKER_SNAPSHOT = (seq, configuration)
    return configuration


def _payload_configuration(configuration) -> Configuration:
    """Resolve a payload's configuration slot: an ``int`` is a shared
    snapshot's sequence number, anything else the pickled object."""
    if type(configuration) is int:
        return _shared_configuration(configuration)
    return configuration


def _check_worker_epoch(epoch: int) -> None:
    if epoch != _WORKER_EPOCH:
        raise StaleWorkerError(
            f"worker forked under executor epoch {_WORKER_EPOCH}, "
            f"payload from epoch {epoch}"
        )


def _process_score_chunk(payload: tuple) -> list[ScoredAction]:
    """Pool task: score one chunk of a round in a forked worker."""
    configuration, actions, workloads, wkey, epoch = payload
    _check_worker_epoch(epoch)
    assert _WORKER_CONTEXT is not None, "worker context never installed"
    tracer = _worker_tracer() if _WORKER_TRACE_SPEC is not None else None
    if tracer is not None:
        with tracer.span("worker.score_chunk", actions=len(actions)):
            return score_actions(
                _WORKER_CONTEXT,
                _payload_configuration(configuration),
                actions,
                workloads,
                _WORKER_MEMO,
                wkey,
            )
    return score_actions(
        _WORKER_CONTEXT,
        _payload_configuration(configuration),
        actions,
        workloads,
        _WORKER_MEMO,
        wkey,
    )


def _process_predict_chunk(payload: tuple) -> list[PredictedCost]:
    """Pool task: predict one chunk of survivor actions."""
    configuration, actions, workloads, wkey, epoch = payload
    _check_worker_epoch(epoch)
    assert _WORKER_CONTEXT is not None, "worker context never installed"
    tracer = _worker_tracer() if _WORKER_TRACE_SPEC is not None else None
    if tracer is not None:
        with tracer.span("worker.predict_chunk", actions=len(actions)):
            return predict_actions(
                _WORKER_CONTEXT,
                _payload_configuration(configuration),
                actions,
                workloads,
                _WORKER_MEMO,
                wkey,
            )
    return predict_actions(
        _WORKER_CONTEXT,
        _payload_configuration(configuration),
        actions,
        workloads,
        _WORKER_MEMO,
        wkey,
    )


# ----------------------------------------------------------------------
# bit-identical vectorized reductions
# ----------------------------------------------------------------------


def column_sums(matrix: np.ndarray) -> np.ndarray:
    """Per-column sums accumulated row by row.

    For a ``[terms, children]`` matrix this performs, in every column,
    the identical sequence of scalar float additions the serial path's
    ``sum(term_list)`` performs — same operands, same order, starting
    from zero — so the results are bit-identical per child.  (``np.sum``
    would use pairwise summation and round differently.)

    When the reduction axis is strided (a C-contiguous matrix with two
    or more columns), ``np.add.reduce`` over axis 0 accumulates the
    rows in the same top-to-bottom order — numpy's pairwise summation
    only reorders reductions over contiguous memory — so the single
    ufunc call replaces the Python row loop.  Single-column and
    non-contiguous inputs keep the explicit loop; the bit-identity
    suite pins the equivalence.
    """
    if matrix.shape[1] > 1 and matrix.flags.c_contiguous:
        return np.add.reduce(matrix, axis=0, initial=0.0)
    total = np.zeros(matrix.shape[1], dtype=np.float64)
    for row in matrix:
        total = total + row
    return total
