"""Worker-count resolution for the parallel evaluation stage.

:class:`~repro.core.search.SearchSettings.parallel_workers` is the
authoritative knob; when it is left at ``None`` the search consults
:func:`default_workers`, which reads the ``MISTRAL_PARALLEL_WORKERS``
environment variable.  This is how CI runs the whole tier-1 suite with
the parallel stage forced on (the outcomes are bit-identical, so every
test must still pass) without touching any test code.
"""

from __future__ import annotations

import os
from typing import Optional

#: Environment variable supplying the default worker count.
ENV_WORKERS = "MISTRAL_PARALLEL_WORKERS"


def default_workers() -> Optional[int]:
    """Worker count from ``MISTRAL_PARALLEL_WORKERS``, if set and sane.

    Returns ``None`` (parallel stage off) when the variable is unset,
    empty, non-numeric, or below 1 — a misconfigured environment must
    degrade to the serial path, never crash the controller.
    """
    raw = os.environ.get(ENV_WORKERS, "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        return None
    return value if value >= 1 else None
