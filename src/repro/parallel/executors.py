"""Pluggable executors for the worker-pool expansion stage.

An executor scores one expansion round — ``score`` returns each
action's (delta, predicted cost) and ``predict`` just the costs of
already-validated survivors — behind one of three backings:

``SerialExecutor``
    inline, zero overhead; the reference everything else must match.
``ThreadExecutor``
    a thread pool sharing the context and memo (GIL-bound for this
    pure-Python workload, but contention-free and always available).
``ProcessExecutor``
    a forked ``multiprocessing`` pool.  The :class:`ScoreContext` is
    installed as a module global *before* the fork so workers inherit
    it; per-round payloads carry only the action chunk, the workload
    vector, and — when the shared-memory configuration channel is live
    — a plain integer naming the parent configuration instead of the
    pickled object itself (see :class:`ShmConfigChannel`).

Every backing splits a round into contiguous chunks and concatenates
the results in chunk order, so the merged list is positionally
identical to the serial result: the **deterministic merge** that keeps
parallel search outcomes bit-identical (children are consumed in
action-enumeration order downstream, preserving heap tie-breakers).

``score``/``predict`` accept an optional ``timeout`` (seconds) — the
search watchdog's hard timer over a pool round.  The thread backing
bounds each future's ``result`` by the remaining budget; the process
backing uses ``map_async`` with a bounded ``get``.  A round that blows
its budget raises the standard ``TimeoutError`` family, which the
search maps to a deadline abort (the pool stays usable — straggling
chunks finish in the background and are discarded).  The serial
backing ignores the timeout: inline rounds are covered by the search's
own cooperative per-expansion deadline check.

``make_executor`` resolves the ``"auto"`` policy: fork-backed processes
when the machine has more than one CPU, the inline serial path
otherwise — on a single core any pool only adds dispatch overhead on
top of the batch path's vectorization, so "auto" refuses to pretend.

Fault tolerance (DESIGN.md §10): the process backing supervises its
workers — it keeps the pool's worker handles, polls their liveness
while a round is in flight, and raises :class:`WorkerCrashError` when
one dies (SIGKILLed by the chaos injector, OOM-killed, segfaulted)
instead of hanging on the lost task; the search answers with a bounded
exponential-backoff executor respawn before its pin-to-serial fallback.
The shared-memory channel stamps every published snapshot with a CRC-32
that workers verify before decoding; a corrupt snapshot (flipped byte,
torn sequence number) raises ``ShmCorruptionError`` in the worker, and
the executor resyncs by republishing the full image and retrying the
round once.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import signal
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.core.actions import AdaptationAction
from repro.core.config import ConfigCodec, Configuration
from repro.costmodel.manager import PredictedCost
from repro.parallel.batch import (
    ScoreContext,
    ScoredAction,
    ShmCorruptionError,
    _process_predict_chunk,
    _process_score_chunk,
    install_worker_channel,
    install_worker_context,
    install_worker_trace,
    predict_actions,
    score_actions,
    shm_payload_checksum,
)
from repro.telemetry import runtime as _telemetry
from repro.telemetry.trace import merge_worker_segments

#: Recognized executor kinds (``SearchSettings.parallel_executor``).
EXECUTOR_KINDS = ("auto", "serial", "thread", "process")

#: Liveness-poll granularity while a process round is in flight: the
#: longest a dead worker can stall a round before detection.
_POLL_SECONDS = 0.2


class WorkerCrashError(RuntimeError):
    """A pool worker process died (was killed or crashed) mid-flight.

    Raised by the supervising :class:`ProcessExecutor` in the parent —
    never pickled — when a saved worker handle reports an exit code.
    The search treats it like any executor failure: bounded-backoff
    respawn first, pin-to-serial when the respawn budget is exhausted.
    """


def _chunks(items: Sequence, parts: int) -> list[Sequence]:
    """Split into at most ``parts`` contiguous, order-preserving chunks."""
    count = len(items)
    parts = max(1, min(parts, count))
    size, extra = divmod(count, parts)
    out = []
    start = 0
    for index in range(parts):
        end = start + size + (1 if index < extra else 0)
        out.append(items[start:end])
        start = end
    return out


class SerialExecutor:
    """Inline scoring — the reference implementation."""

    kind = "serial"

    def __init__(self, context: ScoreContext, workers: int = 1) -> None:
        self.context = context
        self.workers = 1
        self._memo: dict = {}

    def score(
        self,
        configuration: Configuration,
        actions: Sequence[AdaptationAction],
        workloads: Mapping[str, float],
        wkey: tuple,
        timeout: Optional[float] = None,
    ) -> list[ScoredAction]:
        return score_actions(
            self.context, configuration, actions, workloads, self._memo, wkey
        )

    def predict(
        self,
        configuration: Configuration,
        actions: Sequence[AdaptationAction],
        workloads: Mapping[str, float],
        wkey: tuple,
        timeout: Optional[float] = None,
    ) -> list[PredictedCost]:
        return predict_actions(
            self.context, configuration, actions, workloads, self._memo, wkey
        )

    def close(self) -> None:
        self._memo.clear()


class ThreadExecutor:
    """Thread-pool scoring sharing the in-process context and memo."""

    kind = "thread"

    def __init__(self, context: ScoreContext, workers: int) -> None:
        if workers < 2:
            raise ValueError(f"thread executor needs >= 2 workers, got {workers}")
        self.context = context
        self.workers = workers
        # Shared memo: predictions are pure, so a racing double-compute
        # stores the same value twice — benign under the GIL.
        self._memo: dict = {}
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-score"
        )

    def _map(
        self, fn, configuration, actions, workloads, wkey, timeout=None
    ) -> list:
        futures = [
            self._pool.submit(
                fn, self.context, configuration, chunk, workloads, self._memo, wkey
            )
            for chunk in _chunks(actions, self.workers)
        ]
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        merged: list = []
        for future in futures:  # chunk order == action order
            merged.extend(
                future.result(
                    timeout=(
                        max(0.0, deadline - time.monotonic())
                        if deadline is not None
                        else None
                    )
                )
            )
        return merged

    def score(self, configuration, actions, workloads, wkey, timeout=None):
        return self._map(
            score_actions, configuration, actions, workloads, wkey, timeout
        )

    def predict(self, configuration, actions, workloads, wkey, timeout=None):
        return self._map(
            predict_actions, configuration, actions, workloads, wkey, timeout
        )

    def close(self) -> None:
        self._pool.shutdown(wait=True)
        self._memo.clear()


class ShmConfigChannel:
    """One-writer shared-memory mailbox for a round's parent configuration.

    Layout (one fork-inherited byte buffer, naturally aligned):
    ``[cpu_caps f64 x n_vms][seq u64][crc u64][host_index i16 x n_vms]
    [powered u8 x n_hosts]`` — the
    :class:`~repro.core.config.ConfigArray` image of the configuration
    under the channel's codec, plus a monotonically increasing sequence
    number naming the published snapshot and a CRC-32 of the payload
    that workers verify before decoding (see
    ``repro.parallel.batch.shm_payload_checksum``).

    The parent *publishes* by diffing the fresh encode against what the
    buffer already holds and writing only the changed cells — between
    consecutive search rounds the parent configuration differs by one
    placement delta, so a publish is a handful of bytes where pickling
    shipped the whole object per chunk.  Workers decode the snapshot at
    most once per sequence number (the per-worker cache in
    ``repro.parallel.batch``) into a ``Configuration`` that compares,
    hashes and pickles identically to the original, keeping scoring
    bit-identical to the pickled path.

    There is no locking: the executor only publishes when no task is in
    flight (see ``ProcessExecutor._publish`` — rounds that might race a
    timed-out round's stragglers pickle the configuration instead).
    """

    __slots__ = (
        "codec",
        "_buffer",
        "caps",
        "seq_slot",
        "crc_slot",
        "hosts",
        "powered",
        "_seq",
    )

    def __init__(self, codec: ConfigCodec) -> None:
        self.codec = codec
        n_vms = len(codec.vm_ids)
        n_hosts = len(codec.host_ids)
        size = n_vms * 8 + 16 + n_vms * 2 + n_hosts
        buffer = multiprocessing.get_context("fork").RawArray("B", size)
        self._buffer = buffer
        self.caps = np.frombuffer(buffer, dtype=np.float64, count=n_vms)
        self.seq_slot = np.frombuffer(
            buffer, dtype=np.uint64, count=1, offset=n_vms * 8
        )
        self.crc_slot = np.frombuffer(
            buffer, dtype=np.uint64, count=1, offset=n_vms * 8 + 8
        )
        self.hosts = np.frombuffer(
            buffer, dtype=np.int16, count=n_vms, offset=n_vms * 8 + 16
        )
        self.powered = np.frombuffer(
            buffer, dtype=np.uint8, count=n_hosts, offset=n_vms * 10 + 16
        )
        self._seq = 0

    def checksum(self) -> int:
        """CRC-32 of the payload the buffer currently holds."""
        return shm_payload_checksum(self.caps, self.hosts, self.powered)

    def publish(self, configuration: Configuration) -> tuple[int, int]:
        """Write ``configuration``'s delta against the buffer; returns
        ``(seq, bytes_written)``.  Raises ``KeyError`` when the
        configuration leaves the codec's universes (caller falls back
        to pickling)."""
        arrays = self.codec.encode(configuration)
        written = 0
        for shared, fresh in (
            (self.caps, arrays.cpu_caps),
            (self.hosts, arrays.host_index),
            (self.powered, arrays.powered),
        ):
            changed = np.flatnonzero(shared != fresh)
            if changed.size:
                shared[changed] = fresh[changed]
                written += int(changed.size) * shared.itemsize
        # Payload first, then its checksum, then the naming sequence
        # number — a reader that sees the new seq sees a stamped payload.
        self.crc_slot[0] = self.checksum()
        self._seq += 1
        self.seq_slot[0] = self._seq
        return self._seq, written

    def republish(self, configuration: Configuration) -> tuple[int, int]:
        """Unconditionally rewrite the full snapshot under a fresh
        sequence number — the detect→resync answer to a corrupt buffer
        (no diffing: every cell is restored, whatever was flipped)."""
        arrays = self.codec.encode(configuration)
        self.caps[:] = arrays.cpu_caps
        self.hosts[:] = arrays.host_index
        self.powered[:] = arrays.powered
        written = (
            self.caps.nbytes + self.hosts.nbytes + self.powered.nbytes
        )
        self.crc_slot[0] = self.checksum()
        self._seq += 1
        self.seq_slot[0] = self._seq
        return self._seq, written

    def corrupt(self, mode: str) -> None:
        """Damage the published snapshot in place (chaos injection).

        ``"flip"`` inverts one payload byte without restamping the CRC
        (workers see a checksum mismatch); ``"torn"`` advances the
        sequence number without touching the payload (workers see a
        torn publish).  Either way every worker of the round raises
        ``ShmCorruptionError`` and the executor must resync.
        """
        if mode == "torn":
            self._seq += 1
            self.seq_slot[0] = self._seq
        elif mode == "flip":
            if len(self.caps):
                self._buffer[0] ^= 0xFF
        else:
            raise ValueError(f"unknown shm corruption mode {mode!r}")


class ProcessExecutor:
    """Forked process-pool scoring with shared-memory config payloads.

    The executor supervises its pool: worker handles are kept from
    creation, checked before each round, and polled while a round is in
    flight, so a dead worker surfaces as :class:`WorkerCrashError`
    within ``_POLL_SECONDS`` instead of hanging the round on its lost
    task.  ``fault_injector`` (attached by the search in chaos mode)
    may SIGKILL a worker or corrupt the shared channel per round.
    """

    kind = "process"

    #: Monotonic executor epochs (see ``batch.StaleWorkerError``).
    _epochs = itertools.count(1)

    def __init__(self, context: ScoreContext, workers: int) -> None:
        if workers < 2:
            raise ValueError(
                f"process executor needs >= 2 workers, got {workers}"
            )
        self.context = context
        self.workers = workers
        self.fault_injector = None
        self._epoch = next(self._epochs)
        self._straggler = None
        channel = None
        if context.host_ids:
            try:
                channel = ShmConfigChannel(
                    ConfigCodec(context.catalog.vm_ids(), context.host_ids)
                )
            except ValueError:  # universe too large for the codec
                channel = None
        self._channel = channel
        # Workers inherit the context (and channel) through fork, not
        # pickling — both staged as module globals before pool creation.
        install_worker_context(context, self._epoch)
        install_worker_channel(channel)
        # Worker trace segments: when the main trace goes to a JSONL
        # file, stage a sibling segment directory (and the parent
        # tracer's epoch) so forked workers emit their spans instead of
        # silently dropping them; ``close`` merges the segments back.
        trace_dir = None
        if _telemetry.enabled:
            trace_path = getattr(_telemetry.tracer.sink, "path", None)
            if trace_path is not None:
                trace_dir = f"{trace_path}.workers"
                os.makedirs(trace_dir, exist_ok=True)
        self._trace_dir = trace_dir
        install_worker_trace(
            (trace_dir, _telemetry.tracer.epoch)
            if trace_dir is not None
            else None
        )
        self._pool = multiprocessing.get_context("fork").Pool(
            processes=workers
        )
        # The supervised handles: ``Pool`` silently replaces dead
        # workers, but the saved Process objects keep their exit codes,
        # so a death is detected deterministically even after the pool
        # has papered over it.
        self._workers = list(self._pool._pool)

    # -- supervision -------------------------------------------------------

    def _check_workers(self) -> None:
        """Raise :class:`WorkerCrashError` if any original worker died."""
        for worker in self._workers:
            code = worker.exitcode
            if code is not None:
                if _telemetry.enabled:
                    _telemetry.registry.counter(
                        "parallel.worker_crashes"
                    ).inc()
                    _telemetry.tracer.event(
                        "fault.worker.crash", pid=worker.pid, exitcode=code
                    )
                raise WorkerCrashError(
                    f"pool worker pid {worker.pid} died with exit code {code}"
                )

    def kill_worker(self) -> Optional[int]:
        """SIGKILL one live worker (chaos injection); returns its pid."""
        for worker in self._workers:
            if worker.exitcode is None:
                os.kill(worker.pid, signal.SIGKILL)
                worker.join()
                if _telemetry.enabled:
                    _telemetry.tracer.event(
                        "fault.worker.kill", pid=worker.pid
                    )
                return worker.pid
        return None

    def _publish(self, configuration: Configuration):
        """The payload's configuration slot for this round: the shared
        snapshot's sequence number when the channel can take the
        round's parent, else the configuration itself (pickled per
        chunk, the pre-channel behaviour).

        A publish mutates the buffer in place, so it must never overlap
        a straggling task from a timed-out round that could still read
        it; until such a round's tasks finish, rounds pickle.
        """
        channel = self._channel
        if channel is None:
            return configuration
        if self._straggler is not None:
            if not self._straggler.ready():
                return configuration
            self._straggler = None
        try:
            seq, written = channel.publish(configuration)
        except KeyError:  # configuration outside the codec universes
            return configuration
        if _telemetry.enabled:
            registry = _telemetry.registry
            registry.counter("parallel.shm_rounds").inc()
            registry.counter("parallel.shm_bytes").inc(written)
        return seq

    def _map(
        self, chunk_fn, configuration, actions, workloads, wkey, timeout=None
    ) -> list:
        self._check_workers()
        injector = self.fault_injector
        if injector is not None and injector.worker_kill():
            self.kill_worker()
            # Surface the death before dispatch: the pool would lose
            # the dead worker's task (a silent hang), and its silent
            # replacement may have forked under another executor's
            # globals — the search rebuilds this executor instead.
            self._check_workers()
        marker = self._publish(configuration)
        if injector is not None and type(marker) is int:
            mode = injector.shm_corruption()
            if mode is not None:
                self._channel.corrupt(mode)
                if _telemetry.enabled:
                    _telemetry.tracer.event(
                        "fault.shm.corrupt", mode=mode, seq=int(marker)
                    )
        payloads = [
            (marker, chunk, workloads, wkey, self._epoch)
            for chunk in _chunks(actions, self.workers)
        ]
        try:
            return self._collect(chunk_fn, payloads, timeout)
        except ShmCorruptionError as error:
            if type(marker) is not int:
                raise
            # Detect → resync: restore the full snapshot under a fresh
            # sequence number and retry the round once.  In-flight
            # stragglers of the failed round hold an older marker, so
            # they fail the seq check rather than decode a half-written
            # buffer; their results were already discarded.
            seq, written = self._channel.republish(configuration)
            if _telemetry.enabled:
                registry = _telemetry.registry
                registry.counter("parallel.shm_resyncs").inc()
                registry.counter("parallel.shm_bytes").inc(written)
                _telemetry.tracer.event(
                    "parallel.shm_resync",
                    seq=seq,
                    bytes=written,
                    error=str(error),
                )
            payloads = [
                (seq, chunk, workloads, wkey, self._epoch)
                for (_, chunk, workloads, wkey, _) in payloads
            ]
            return self._collect(chunk_fn, payloads, timeout)

    def _collect(self, chunk_fn, payloads, timeout) -> list:
        """Dispatch one round and gather its chunks, supervising the
        workers: liveness is polled every ``_POLL_SECONDS`` while the
        round is in flight, so a worker death raises instead of hanging
        on the task the pool silently lost with it."""
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        pending = self._pool.map_async(chunk_fn, payloads)
        while True:
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    # Stragglers may still read the shared buffer;
                    # block publishes until they finish (discarded).
                    self._straggler = pending
                    raise multiprocessing.TimeoutError(
                        "pool round blew its deadline budget"
                    )
                wait = min(_POLL_SECONDS, remaining)
            else:
                wait = _POLL_SECONDS
            try:
                chunks = pending.get(wait)
                break
            except multiprocessing.TimeoutError:
                self._check_workers()
        merged: list = []
        for result in chunks:
            merged.extend(result)
        return merged

    def score(self, configuration, actions, workloads, wkey, timeout=None):
        return self._map(
            _process_score_chunk, configuration, actions, workloads, wkey,
            timeout,
        )

    def predict(self, configuration, actions, workloads, wkey, timeout=None):
        return self._map(
            _process_predict_chunk, configuration, actions, workloads, wkey,
            timeout,
        )

    def close(self) -> None:
        if any(worker.exitcode is not None for worker in self._workers):
            # Closing a crashed pool: a worker killed while blocked in
            # ``inqueue.get()`` died *holding* the task queue's read
            # lock, and ``Pool.terminate``'s drain helper would block
            # on that lock forever.  None of this pool's results are
            # reusable, so kill the remaining workers outright and
            # force the orphaned lock released before terminating.
            for worker in list(self._pool._pool):
                if worker.exitcode is None:
                    try:
                        os.kill(worker.pid, signal.SIGKILL)
                        worker.join()
                    except OSError:
                        pass
            try:
                self._pool._inqueue._rlock.release()
            except (ValueError, AttributeError, AssertionError):
                pass  # lock was not held — nothing to unstick
        self._pool.terminate()
        self._pool.join()
        # Workers are gone; their autoflushed segments are complete.
        # Merge them into the main trace with re-numbered seq/parent
        # linkage, provided the trace is still open to receive them.
        if self._trace_dir is not None and _telemetry.enabled:
            merged = merge_worker_segments(_telemetry.tracer, self._trace_dir)
            _telemetry.registry.counter("parallel.worker_records").inc(merged)
            _telemetry.tracer.event(
                "parallel.worker_segments_merged",
                records=merged,
                directory=self._trace_dir,
            )
        install_worker_trace(None)


def resolve_executor_kind(kind: str, workers: int) -> str:
    """Resolve ``"auto"`` (and degenerate worker counts) to a backing.

    One worker is always serial.  ``auto`` picks forked processes when
    the host actually has CPUs to fan out over, and the serial inline
    path otherwise — the batch path's vectorized scoring is where a
    single-core host's speedup comes from, and pretending a pool helps
    there would only hide dispatch overhead in every round.
    """
    if kind not in EXECUTOR_KINDS:
        raise ValueError(
            f"unknown executor kind {kind!r}; expected one of {EXECUTOR_KINDS}"
        )
    if workers <= 1 or kind == "serial":
        return "serial"
    if kind != "auto":
        return kind
    if (os.cpu_count() or 1) <= 1:
        return "serial"
    if hasattr(os, "fork"):
        return "process"
    return "thread"


def make_executor(kind: str, workers: int, context: ScoreContext):
    """Build the executor backing ``kind`` resolves to."""
    resolved = resolve_executor_kind(kind, workers)
    if resolved == "serial":
        return SerialExecutor(context)
    if resolved == "thread":
        return ThreadExecutor(context, workers)
    return ProcessExecutor(context, workers)
