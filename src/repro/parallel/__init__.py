"""Parallel candidate evaluation (DESIGN.md §11).

Three cooperating layers let the adaptation search evaluate many
candidate configurations per expansion round instead of one at a time:

- :mod:`repro.parallel.runtime` — worker-count resolution (the
  ``MISTRAL_PARALLEL_WORKERS`` environment variable supplies a default
  when :class:`~repro.core.search.SearchSettings` leaves it unset);
- :mod:`repro.parallel.batch` — the scoring kernels shared by every
  executor: action deltas + cost predictions per round, plus the
  column-accumulated numpy reductions whose results are bit-identical
  to the serial Python sums;
- :mod:`repro.parallel.executors` — the pluggable executor pool
  (serial / thread / forked process) the search dispatches each
  round's scoring to, with deterministic chunk-ordered merges.

The contract, enforced by ``tests/test_parallel.py``: every executor
produces bit-identical :class:`~repro.core.search.SearchOutcome`\\ s.
Parallelism is a throughput lever, never a behaviour change.
"""

from repro.parallel.batch import ScoreContext, column_sums
from repro.parallel.executors import (
    ProcessExecutor,
    SerialExecutor,
    ShmConfigChannel,
    ThreadExecutor,
    make_executor,
    resolve_executor_kind,
)
from repro.parallel.runtime import ENV_WORKERS, default_workers

__all__ = [
    "ENV_WORKERS",
    "ProcessExecutor",
    "ScoreContext",
    "SerialExecutor",
    "ShmConfigChannel",
    "ThreadExecutor",
    "column_sums",
    "default_workers",
    "make_executor",
    "resolve_executor_kind",
]
