"""Scenario and strategy builders (paper §V).

``make_testbed`` assembles the 2-app (10 VMs / 4 hosts), 3-app (15 / 6),
or 4-app (20 / 8) scenarios with the paper's traces.  The ``build_*``
factories construct each control strategy wired to a testbed's
calibrated artifacts, returning the controller together with the
initial configuration it starts from.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.apps.application import ApplicationSet
from repro.apps.rubis import make_rubis_application
from repro.baselines.perf_cost import AppScopedPerfPwr, PerfCostController
from repro.baselines.perf_pwr import PerfPwrController
from repro.baselines.pwr_cost import PwrCostController
from repro.core.config import Configuration, Placement, VmCatalog
from repro.core.controller import MistralController
from repro.core.estimator import FeedbackUtilityEstimator, UtilityEstimator
from repro.core.feedback import ModelFeedback
from repro.core.hierarchy import ControllerHierarchy
from repro.core.perf_pwr import PerfPwrOptimizer
from repro.core.search import (
    ALL_ACTION_KINDS,
    AdaptationSearch,
    SearchSettings,
)
from repro.core.utility import UtilityModel
from repro.faults import FaultConfig, HostCrash, ScriptedActionFault
from repro.perfmodel.solver import LqnSolver
from repro.testbed.testbed import Testbed, TestbedSettings
from repro.workload.monitor import WorkloadMonitor
from repro.workload.traces import standard_traces

#: Hosts per scenario size.  1-4 apps match Table I; the 5- and 6-app
#: rows extrapolate the paper's 2-hosts-per-app ratio to give the
#: parallel-evaluation benchmarks a size where rounds are wide enough
#: to amortize batching.  The 10-25-app tier (20-50 hosts, the ROADMAP
#: north-star scale) exists for the anytime strategies: the exact A*
#: frontier explodes there and only returns a plan by deadline abort,
#: while the stochastic walkers keep improving an incumbent
#: (docs/SEARCH_STRATEGIES.md).
HOSTS_FOR_APPS = {
    1: 2, 2: 4, 3: 6, 4: 8, 5: 10, 6: 12,
    10: 20, 16: 32, 25: 50,
}

#: The paper's workload bands per controller level (req/s).
LEVEL1_BAND = 0.0
LEVEL2_BAND = 8.0

#: 1st-level controllers use the quick, local actions (paper §V-E:
#: "uses CPU tuning and VM migrations within its managed subset");
#: replication and host power cycling belong to the 2nd level with its
#: wider band and longer control windows.
LEVEL1_ACTION_KINDS = frozenset({"increase_cpu", "decrease_cpu", "migrate"})


def make_testbed(
    app_count: int = 2,
    seed: int = 0,
    settings: Optional[TestbedSettings] = None,
) -> Testbed:
    """The paper's n-application scenario on its matching host count."""
    if app_count not in HOSTS_FOR_APPS:
        raise ValueError(f"unsupported app_count {app_count}")
    applications = ApplicationSet(
        [
            make_rubis_application(f"RUBiS-{index + 1}")
            for index in range(app_count)
        ]
    )
    traces = standard_traces(applications.names())
    host_ids = [f"host-{index}" for index in range(HOSTS_FOR_APPS[app_count])]
    return Testbed(
        applications,
        traces,
        host_ids,
        seed=seed,
        settings=settings,
    )


def demo_fault_config(
    seed: int = 0, crash_time: float = 3600.0, crash_host: str = "host-3"
) -> FaultConfig:
    """The canonical fault scenario (docs/OPERATIONS.md walkthrough).

    Deterministically fails the first two migration attempts of the run
    (exercising retry + rollback during the controllers' scale-out) and
    crashes one host an hour in, stranding whatever it serves.  No
    random faults, so the run is fully scripted regardless of seed.
    """
    return FaultConfig(
        seed=seed,
        scripted=(
            ScriptedActionFault(kind="migrate", occurrence=0),
            ScriptedActionFault(kind="migrate", occurrence=1),
        ),
        host_crashes=(HostCrash(time=crash_time, host_id=crash_host),),
    )


def level1_host_groups(host_ids: tuple[str, ...]) -> list[tuple[str, ...]]:
    """Partition hosts into 1st-level controller subsets (<=4 hosts)."""
    if len(host_ids) <= 4:
        return [tuple(host_ids)]
    groups = []
    half = (len(host_ids) + 1) // 2
    groups.append(tuple(host_ids[:half]))
    groups.append(tuple(host_ids[half:]))
    return groups


def initial_configuration(testbed: Testbed) -> Configuration:
    """Common starting point: the cost-free optimum at t = 0."""
    optimizer = _global_perf_pwr(testbed)
    return optimizer.optimize(testbed.workloads_at(0.0)).configuration


def _global_perf_pwr(testbed: Testbed) -> PerfPwrOptimizer:
    return PerfPwrOptimizer(
        testbed.applications,
        testbed.catalog,
        testbed.limits,
        testbed.estimator,
        testbed.host_ids,
    )


# ----------------------------------------------------------------------
# Mistral
# ----------------------------------------------------------------------


def build_mistral(
    testbed: Testbed,
    hierarchical: bool = True,
    self_aware: bool = True,
    search_settings: Optional[SearchSettings] = None,
    enable_feedback: bool = True,
    enable_trend: bool = True,
    parallel_workers: Optional[int] = None,
    search_strategy: Optional[str] = None,
) -> tuple[object, Configuration]:
    """Mistral: two-level hierarchy (or a single global controller).

    ``self_aware=False`` builds the Naive-A* variant of Fig. 10;
    ``enable_feedback`` / ``enable_trend`` switch off the online
    model-feedback calibration and the workload-trend extrapolation
    (the ablation benchmarks exercise these).

    ``search_strategy`` selects the search backend every controller
    plans with (``"astar"``/``"mcts"``/``"annealing"``, DESIGN.md §14);
    ``None`` defers to ``SearchSettings.strategy`` and the
    ``MISTRAL_SEARCH_STRATEGY`` environment variable.

    ``parallel_workers >= 2`` additionally (a) lets every search score
    expansion rounds through the batched evaluator (DESIGN.md §11) and
    (b) plans the 1st-level controllers concurrently on a thread pool.
    Concurrent 1st-level controllers each get a *private* estimator
    and ideal-configuration optimizer — their memo caches are plain
    dicts, unsafe to share across planning threads — while the
    stateless solver, power model, cost tables, and catalog stay
    shared.
    """
    interval = testbed.utility.parameters.monitoring_interval

    # Online model-feedback calibration: Mistral plans against per-app
    # targets tightened by the measured/predicted response-time bias
    # (see repro.core.feedback) — the monitor feeds it measurements
    # every interval, so a persistent model bias cannot park an app
    # just above its target.  Dedicated estimator + optimizer so the
    # feedback never leaks into the baselines.
    if enable_feedback:
        feedback = ModelFeedback()
        base_target = testbed.planning_utility.parameters.target_response_time
        feedback_utility = UtilityModel(
            testbed.planning_utility.parameters,
            target_rt_fn=lambda app, rate: feedback.corrected_target(
                app, base_target
            ),
        )
        estimator = FeedbackUtilityEstimator(
            feedback,
            testbed.model_solver,
            testbed.model_power,
            feedback_utility,
            testbed.catalog,
        )
        optimizer = PerfPwrOptimizer(
            testbed.applications,
            testbed.catalog,
            testbed.limits,
            estimator,
            testbed.host_ids,
        )
    else:
        feedback = None
        feedback_utility = None
        estimator = testbed.estimator
        optimizer = _global_perf_pwr(testbed)

    groups = level1_host_groups(testbed.host_ids)
    concurrent_level1 = (
        hierarchical
        and parallel_workers is not None
        and parallel_workers > 1
        and len(groups) > 1
    )

    def private_estimator():
        """A fresh estimator (own memo caches) over the shared,
        stateless solver / power / utility / catalog artifacts."""
        if feedback is not None:
            return FeedbackUtilityEstimator(
                feedback,
                testbed.model_solver,
                testbed.model_power,
                feedback_utility,
                testbed.catalog,
            )
        return UtilityEstimator(
            testbed.model_solver,
            testbed.model_power,
            testbed.planning_utility,
            testbed.catalog,
        )

    def make_search(kinds, hosts, scope, private=False) -> AdaptationSearch:
        base = search_settings or SearchSettings()
        settings = replace(
            base, allowed_kinds=frozenset(kinds), self_aware=self_aware
        )
        if not self_aware and search_settings is None:
            # The naive variant has no self-imposed stopping rule; cap
            # its expansions so experiment wall time stays bounded (its
            # virtual search durations still dwarf the self-aware ones).
            settings = replace(settings, max_expansions=2500)
        if parallel_workers is not None and search_settings is None:
            settings = replace(settings, parallel_workers=parallel_workers)
        if search_strategy is not None:
            settings = replace(settings, strategy=search_strategy)
        search_estimator = estimator
        search_optimizer = optimizer
        if private:
            # Concurrent L1 planning threads must not share memo
            # caches; the ideal-configuration optimizer stays global
            # over all hosts (parity with the shared one) but caches
            # into this controller's private estimator.
            search_estimator = private_estimator()
            search_optimizer = PerfPwrOptimizer(
                testbed.applications,
                testbed.catalog,
                testbed.limits,
                search_estimator,
                testbed.host_ids,
            )
        search = AdaptationSearch(
            testbed.applications,
            testbed.catalog,
            testbed.limits,
            search_estimator,
            testbed.cost_manager,
            search_optimizer,
            hosts,
            settings,
        )
        if scope is not None:
            search.scope_hosts = frozenset(scope)
        return search

    # The 2nd-level controller plans against at least a few monitoring
    # intervals: during monotone ramps the band escapes every interval
    # and the ARMA estimate collapses to one interval, under which no
    # scale-up would ever recoup its cost.
    level2 = MistralController(
        name="mistral-L2",
        search=make_search(ALL_ACTION_KINDS, testbed.host_ids, None),
        monitor=WorkloadMonitor(band_width=LEVEL2_BAND),
        min_control_window=3.0 * interval,
    )
    level2.feedback = feedback
    level2.trend_extrapolation = enable_trend
    if not hierarchical:
        level2.monitor = WorkloadMonitor(band_width=LEVEL1_BAND)
        return level2, initial_configuration(testbed)

    level1 = [
        MistralController(
            name=f"mistral-L1-{index}",
            search=make_search(
                LEVEL1_ACTION_KINDS, group, group, private=concurrent_level1
            ),
            monitor=WorkloadMonitor(band_width=LEVEL1_BAND),
            min_control_window=interval,
        )
        for index, group in enumerate(groups)
    ]
    for controller in level1:
        controller.trend_extrapolation = enable_trend
    hierarchy = ControllerHierarchy(
        level1, level2, parallel_workers=parallel_workers
    )
    hierarchy.feedback = feedback
    return hierarchy, initial_configuration(testbed)


# ----------------------------------------------------------------------
# Baselines
# ----------------------------------------------------------------------


def build_perf_pwr(testbed: Testbed) -> tuple[PerfPwrController, Configuration]:
    """Perf-Pwr baseline: chase the cost-free optimum every interval.

    Uses the paper's plain gradient optimizer (without the
    minimal-candidate enhancement reserved for Mistral's heuristic).
    """
    controller = PerfPwrController(
        name="perf-pwr",
        optimizer=PerfPwrOptimizer(
            testbed.applications,
            testbed.catalog,
            testbed.limits,
            testbed.estimator,
            testbed.host_ids,
            consider_minimal_candidate=False,
        ),
        monitor=WorkloadMonitor(band_width=LEVEL1_BAND),
    )
    return controller, initial_configuration(testbed)


def perf_cost_host_assignment(
    testbed: Testbed,
) -> dict[str, tuple[str, ...]]:
    """Two dedicated hosts per application (paper §V-C)."""
    hosts = testbed.host_ids
    assignment = {}
    for index, app_name in enumerate(testbed.applications.names()):
        assignment[app_name] = (hosts[2 * index], hosts[2 * index + 1])
    return assignment


def build_perf_cost(
    testbed: Testbed,
    search_settings: Optional[SearchSettings] = None,
) -> tuple[PerfCostController, Configuration]:
    """Perf-Cost baseline: fixed pools, power-blind utility."""
    assignment = perf_cost_host_assignment(testbed)
    power_free = UtilityModel(
        replace(
            testbed.planning_utility.parameters, cost_per_watt_interval=0.0
        )
    )
    estimator = UtilityEstimator(
        testbed.model_solver, testbed.model_power, power_free, testbed.catalog
    )
    kinds = ALL_ACTION_KINDS - {"power_on", "power_off"}
    base = search_settings or SearchSettings()

    searches = {}
    placements: dict[str, Placement] = {}
    for app_name, app_hosts in assignment.items():
        app = testbed.applications.get(app_name)
        app_catalog = VmCatalog(app.vm_descriptors())
        app_solver = LqnSolver(app_catalog, testbed.model_parameters)
        app_estimator = UtilityEstimator(
            app_solver, testbed.model_power, power_free, app_catalog
        )
        app_optimizer = PerfPwrOptimizer(
            ApplicationSet([app]),
            app_catalog,
            testbed.limits,
            app_estimator,
            app_hosts,
        )
        search = AdaptationSearch(
            ApplicationSet([app]),
            testbed.catalog,
            testbed.limits,
            estimator,
            testbed.cost_manager,
            AppScopedPerfPwr(app_name, app_optimizer),
            app_hosts,
            replace(base, allowed_kinds=frozenset(kinds)),
        )
        search.scope_hosts = frozenset(app_hosts)
        searches[app_name] = search

        # Initial layout: front tiers on the first host, database on
        # the second, every cap at the default 40%.
        placements[f"{app_name}-web-0"] = Placement(app_hosts[0], 0.4)
        placements[f"{app_name}-app-0"] = Placement(app_hosts[0], 0.4)
        placements[f"{app_name}-db-0"] = Placement(app_hosts[1], 0.4)

    controller = PerfCostController(
        name="perf-cost",
        app_searches=searches,
        monitor=WorkloadMonitor(band_width=LEVEL1_BAND),
    )
    initial = Configuration(
        placements,
        frozenset(host for pair in assignment.values() for host in pair),
    )
    return controller, initial


def build_pwr_cost(testbed: Testbed) -> tuple[PwrCostController, Configuration]:
    """Pwr-Cost baseline: static per-rate capacities, cost-aware packing."""
    controller = PwrCostController(
        name="pwr-cost",
        oracle=_global_perf_pwr(testbed),
        catalog=testbed.catalog,
        limits=testbed.limits,
        estimator=testbed.estimator,
        cost_manager=testbed.cost_manager,
        host_ids=testbed.host_ids,
        monitor=WorkloadMonitor(band_width=LEVEL1_BAND),
    )
    return controller, initial_configuration(testbed)
