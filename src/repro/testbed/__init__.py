"""Experiment rig: testbed wiring, scenarios, and metrics."""

from repro.testbed.metrics import ActionRecord, RunMetrics, TimeSeries, summarize_runs
from repro.testbed.testbed import Testbed, TestbedSettings
from repro.testbed.scenarios import (
    HOSTS_FOR_APPS,
    build_mistral,
    build_perf_cost,
    build_perf_pwr,
    build_pwr_cost,
    demo_fault_config,
    initial_configuration,
    level1_host_groups,
    make_testbed,
)

__all__ = [
    "ActionRecord",
    "RunMetrics",
    "TimeSeries",
    "summarize_runs",
    "Testbed",
    "TestbedSettings",
    "HOSTS_FOR_APPS",
    "build_mistral",
    "build_perf_cost",
    "build_perf_pwr",
    "build_pwr_cost",
    "demo_fault_config",
    "initial_configuration",
    "level1_host_groups",
    "make_testbed",
]
