"""The simulated testbed (paper §V-A).

Wires the substrates into the experiment rig: applications driven by
workload traces on a cluster of simulated Xen hosts, with hidden true
performance/power/transient models, plus the calibrated artifacts the
controllers are allowed to see (offline-measured LQN parameters, fitted
power curves, cost tables).  ``run`` executes one strategy over the
experiment horizon, sampling measurements every monitoring interval,
invoking the controller, executing its decisions — including the
decision delay and the controller's own search power — and collecting
the metrics every figure of the paper is drawn from.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as replace_params
from typing import Mapping, Optional, Sequence, Union

import numpy as np

from repro.apps.application import ApplicationSet
from repro.checkpoint import CheckpointStore, capture
from repro.cluster.cluster import Cluster
from repro.cluster.host import HostSpec
from repro.cluster.power_meter import PowerMeter
from repro.cluster.transients import TransientModel, TransientModelParameters
from repro.core.config import Configuration, ConstraintLimits, Placement
from repro.core.controller import Decision
from repro.core.estimator import UtilityEstimator
from repro.core.utility import UtilityModel, UtilityParameters
from repro.costmodel.manager import CostManager
from repro.faults import (
    DegradationSettings,
    FaultConfig,
    FaultInjector,
    RecoveryPolicy,
    check_invariants,
)
from repro.costmodel.measurement import MeasurementCampaign, run_campaign
from repro.perfmodel.calibration import calibrate_parameters
from repro.perfmodel.lqn import LqnParameters, parameters_for
from repro.perfmodel.solver import LqnSolver
from repro.power.calibration import calibrate_power_model
from repro.power.model import HostPowerModel, SystemPowerModel
from repro.sim.engine import SimulationEngine
from repro.sim.rng import RandomStreams
from repro.telemetry import runtime as _telemetry
from repro.testbed.metrics import ActionRecord, RunMetrics, TimeSeries
from repro.workload.traces import EXPERIMENT_DURATION, Trace

#: Anything a strategy's control loop may return from ``on_sample``.
ControllerOutput = Union[None, Decision, Sequence[Decision]]


@dataclass(frozen=True)
class TestbedSettings:
    """Experiment-rig parameters (paper §V-A defaults)."""

    monitoring_interval: float = 120.0
    horizon: float = EXPERIMENT_DURATION
    #: Per-interval service-demand jitter of the true system.
    demand_noise: float = 0.03
    #: Relative noise on measured response times.
    rt_measurement_noise: float = 0.01
    meter_noise_watts: float = 1.0
    #: Relative error of a single offline demand measurement.
    calibration_noise: float = 0.05
    #: Extra metered draw of always-on infrastructure (storage, pool).
    infrastructure_watts: float = 0.0
    host_idle_watts: float = 60.0
    host_busy_watts: float = 100.0
    #: True power-curve exponents are drawn uniformly from this range.
    power_exponent_range: tuple[float, float] = (1.25, 1.55)
    cost_placements_per_point: int = 6
    #: Request rate per application used for the default-configuration
    #: anchors (target response time, reward calibration).
    reference_rate: float = 50.0
    #: CPU cap of every tier in the default configuration.
    default_cap: float = 0.4
    #: Session think time implied by the sessions = 8 x rate mapping:
    #: the finite client population bounds response times in overload
    #: (closed-loop saturation), so measured response times are capped
    #: at ``overload_base_response + think_time * (rho - 1)``.
    closed_loop_think_time: float = 8.0
    #: Base of the closed-loop cap, as a multiple of the target.
    overload_base_multiple: float = 3.0
    #: Controllers plan against this fraction of the true target so
    #: that ~5% model error does not park the system on the knife edge
    #: where predicted-met targets are actually missed.
    planning_target_margin: float = 0.75


class Testbed:
    """Builds the truth + calibrated artifacts and runs strategies."""

    def __init__(
        self,
        applications: ApplicationSet,
        traces: Mapping[str, Trace],
        host_ids: Sequence[str],
        limits: Optional[ConstraintLimits] = None,
        seed: int = 0,
        settings: Optional[TestbedSettings] = None,
    ) -> None:
        missing = set(applications.names()) - set(traces)
        if missing:
            raise ValueError(f"no trace for applications {sorted(missing)}")
        self.applications = applications
        self.traces = dict(traces)
        self.host_ids = tuple(host_ids)
        self.limits = limits or ConstraintLimits()
        self.settings = settings or TestbedSettings()
        self.streams = RandomStreams(seed)
        self.catalog = applications.build_catalog()

        # ---- hidden truth ------------------------------------------------
        self.truth_parameters: LqnParameters = parameters_for(applications)
        self.truth_solver = LqnSolver(self.catalog, self.truth_parameters)
        exponent_rng = self.streams.stream("power-exponents")
        low, high = self.settings.power_exponent_range
        self.truth_power = SystemPowerModel(
            {
                host_id: HostPowerModel(
                    idle_watts=self.settings.host_idle_watts,
                    busy_watts=self.settings.host_busy_watts,
                    exponent=float(exponent_rng.uniform(low, high)),
                )
                for host_id in self.host_ids
            }
        )
        self.transient_parameters = TransientModelParameters()

        # ---- calibrated artifacts (what controllers see) ------------------
        self.model_parameters = calibrate_parameters(
            self.truth_parameters,
            self.streams.stream("lqn-calibration"),
            measurement_noise=self.settings.calibration_noise,
        )
        self.model_solver = LqnSolver(self.catalog, self.model_parameters)
        self.model_power = SystemPowerModel(
            {
                host_id: calibrate_power_model(
                    self.truth_power.host_model(host_id),
                    self.streams.stream(f"power-calibration:{host_id}"),
                    meter_noise_watts=self.settings.meter_noise_watts,
                )
                for host_id in self.host_ids
            }
        )
        self.utility = self._calibrated_utility()
        planning_params = replace_params(
            self.utility.parameters,
            target_response_time=self.utility.parameters.target_response_time
            * self.settings.planning_target_margin,
        )
        #: What the controllers optimize with: same rewards/prices, but
        #: a margined response-time target (see TestbedSettings).
        self.planning_utility = UtilityModel(planning_params)
        self.estimator = UtilityEstimator(
            self.model_solver,
            self.model_power,
            self.planning_utility,
            self.catalog,
        )
        self.cost_table = self._measure_costs()
        self.cost_manager = CostManager(self.cost_table, self.catalog)

    # ------------------------------------------------------------------
    # calibration anchors
    # ------------------------------------------------------------------

    def default_configuration(self) -> Configuration:
        """The paper's default configuration: every tier at 40% cap.

        One replica per tier on a dedicated host pair per application
        (front tiers together, database alone) — the allocation that
        can serve the peak rate, matching the Perf-Cost pool.  Used to
        derive the target response time and the reward scale.
        """
        cap = self.settings.default_cap
        if len(self.host_ids) < 2 * len(self.applications):
            raise RuntimeError(
                "default configuration needs two hosts per application"
            )
        placements: dict[str, Placement] = {}
        for index, app in enumerate(self.applications):
            front, back = (
                self.host_ids[2 * index],
                self.host_ids[2 * index + 1],
            )
            tiers = app.tier_names()
            for tier_name in tiers[:-1]:
                placements[f"{app.name}-{tier_name}-0"] = Placement(front, cap)
            placements[f"{app.name}-{tiers[-1]}-0"] = Placement(back, cap)
        powered = frozenset(
            placement.host_id for placement in placements.values()
        )
        return Configuration(placements, powered)

    def reference_workloads(self) -> dict[str, float]:
        """Every application at the reference rate (50 req/s)."""
        return {
            app_name: self.settings.reference_rate
            for app_name in self.applications.names()
        }

    def _calibrated_utility(self) -> UtilityModel:
        """Derive target response time and reward scale (paper §V-A).

        The target is the mean response time of the default
        configuration at the reference rate; rewards are scaled for a
        ~20% net profit over that configuration's power cost.
        """
        default = self.default_configuration()
        reference = self.reference_workloads()
        performance = self.truth_solver.solve(default, reference)
        target = sum(performance.response_times.values()) / len(
            performance.response_times
        )
        watts = self.truth_power.total_watts(
            default.powered_hosts, performance.host_utilizations
        )
        base = UtilityModel(
            UtilityParameters(target_response_time=round(target, 3))
        )
        return base.calibrated(watts, app_count=len(self.applications))

    def _measure_costs(self):
        """Run the offline cost campaign on a dedicated rig."""
        apps = list(self.applications)
        background = apps[1] if len(apps) > 1 else apps[0]
        rig_hosts = [f"rig-{index}" for index in range(8)]
        campaign = MeasurementCampaign(
            target_app=apps[0],
            background_app=background,
            host_ids=rig_hosts,
            limits=self.limits,
            placements_per_point=self.settings.cost_placements_per_point,
        )
        return run_campaign(
            campaign,
            self.transient_parameters,
            self.streams.stream("cost-campaign"),
        )

    # ------------------------------------------------------------------
    # workloads
    # ------------------------------------------------------------------

    def workloads_at(self, time: float) -> dict[str, float]:
        """Offered request rates at experiment time ``time``."""
        return {
            app_name: self.traces[app_name].rate(time)
            for app_name in self.applications.names()
        }

    # ------------------------------------------------------------------
    # running a strategy
    # ------------------------------------------------------------------

    def run(
        self,
        controller,
        initial_configuration: Configuration,
        strategy: str,
        horizon: Optional[float] = None,
        faults: Optional[FaultConfig] = None,
        recovery: Optional[RecoveryPolicy] = None,
        resilience: Optional[DegradationSettings] = None,
        parallel: Optional[int] = None,
        checkpoint: Optional[object] = None,
        search_strategy: Optional[str] = None,
        array_core: Optional[bool] = None,
        invariants: bool = False,
    ) -> RunMetrics:
        """Run one strategy over the horizon and collect metrics.

        ``controller`` is any object with
        ``on_sample(now, workloads, configuration, busy)`` returning a
        decision, a list of decisions, or None, plus
        ``record_interval_utility(value)``.

        ``parallel`` (duck-typed, like the fault hooks) routes every
        search the controller owns through the batched evaluation
        stage with that worker count and — for hierarchies that
        support it — plans 1st-level controllers concurrently.  Worker
        pools the run started are always released before it returns,
        whether or not ``parallel`` was given (controllers built with
        their own ``parallel_workers`` rebuild pools on demand).

        ``search_strategy`` (``"astar"``/``"mcts"``/``"annealing"``)
        repoints every search the controller owns at that backend for
        this run (DESIGN.md §14); ``None`` leaves whatever the searches
        were built with.  Note this is the *search* backend — the
        positional ``strategy`` argument labels the controller variant
        in the metrics.

        ``faults`` attaches a seeded :class:`FaultInjector` to the run:
        scripted host crashes are scheduled, monitoring samples may be
        dropped or staled before reaching the controller, plans execute
        under the ``recovery`` policy (default :class:`RecoveryPolicy`)
        with retries and rollback, and resilience-capable controllers
        get the degradation ladder (tuned by ``resilience``) plus
        fault-cost charging and forced re-planning.  Without ``faults``
        the run is bit-identical to the pre-resilience testbed.

        ``checkpoint`` — a :class:`repro.checkpoint.CheckpointStore` or
        a path — persists a controller snapshot after every monitoring
        sample and again on teardown (even when the run dies to
        ``KeyboardInterrupt`` or an executor crash), so a restarted
        process can warm-start from the last completed window.  For
        hierarchies the store is also wired into the failover path:
        scripted ``controller_crashes`` in ``faults`` take the 2nd
        level down and restart it from the last pre-crash snapshot.
        Without ``checkpoint`` no snapshot is ever written and the run
        is bit-identical to the checkpoint-free testbed.

        ``array_core`` forces the array evaluation core on or off for
        every search the controller owns (``None`` keeps each search's
        own setting / the environment default).

        ``invariants`` turns on the chaos referee: after every
        controller decision the committed configuration is re-checked
        from first principles (:func:`repro.faults.check_invariants` —
        allocation limits, replica-0 placement, Eq. 3 conservation,
        codec round-trip) and any violations are collected on
        ``RunMetrics.invariant_violations``.  The check only *reads*
        the decision, so an invariant-checked run stays bit-identical
        to an unchecked one.

        When ``faults`` is given, the same injector also drives the
        process-chaos surfaces: it is attached to every search
        (worker kills, shm corruption, injected solver faults, walker
        stalls — all inert at their default zero probabilities) and,
        when ``checkpoint`` is given, to the store's
        ``corruption_hook``.
        """
        settings = self.settings
        span = horizon if horizon is not None else settings.horizon
        if parallel is not None:
            if hasattr(controller, "parallel_workers"):
                controller.parallel_workers = parallel
            for search in _searches_of(controller):
                search.settings = replace_params(
                    search.settings, parallel_workers=parallel
                )
        if search_strategy is not None:
            for search in _searches_of(controller):
                search.settings = replace_params(
                    search.settings, strategy=search_strategy
                )
        if array_core is not None:
            for search in _searches_of(controller):
                search.settings = replace_params(
                    search.settings, array_core=array_core
                )
        store = None
        if checkpoint is not None:
            store = (
                checkpoint
                if hasattr(checkpoint, "save")
                else CheckpointStore(checkpoint)
            )
            if hasattr(controller, "checkpoint_store"):
                controller.checkpoint_store = store
        injector = FaultInjector(faults) if faults is not None else None
        recovery_policy: Optional[RecoveryPolicy] = None
        if injector is not None:
            recovery_policy = (
                recovery if recovery is not None else RecoveryPolicy()
            )
            if hasattr(controller, "enable_resilience"):
                controller.enable_resilience(resilience)
            # Process-chaos surfaces: every search draws its worker
            # kills / shm corruption / solver faults / walker stalls
            # from the same seeded injector, and checkpoint writes may
            # rot through the store's corruption hook.  All surfaces
            # are draw-isolated — zero-probability knobs consume no
            # randomness — so an injector with only e.g. host crashes
            # configured perturbs nothing else.
            for search in _searches_of(controller):
                search.fault_injector = injector
            if store is not None and hasattr(store, "corruption_hook"):
                store.corruption_hook = injector.corrupt_checkpoint
        engine = SimulationEngine()
        run_streams = self.streams.fork(f"run:{strategy}")
        demand_rng = run_streams.stream("demand-noise")
        rt_rng = run_streams.stream("rt-noise")
        transients = TransientModel(
            self.catalog,
            self.transient_parameters,
            run_streams.stream("transients"),
        )
        cluster = Cluster(
            [HostSpec(host_id) for host_id in self.host_ids],
            self.catalog,
            self.limits,
            engine,
            transients,
            self.truth_power,
            workload_provider=lambda: self.workloads_at(engine.now),
        )
        cluster.deploy(initial_configuration)
        meter = PowerMeter(
            cluster,
            infrastructure_watts=settings.infrastructure_watts,
            noise_watts=settings.meter_noise_watts,
            rng=run_streams.stream("meter"),
        )

        metrics = RunMetrics(strategy=strategy)
        for app_name in self.applications.names():
            metrics.response_times[app_name] = TimeSeries(app_name)
            metrics.workloads[app_name] = TimeSeries(f"W:{app_name}")

        search_effects: list[tuple[float, float, float]] = []
        pending: list[tuple[Decision, object]] = []

        demand_keys = list(self.truth_parameters.tier_demands)
        sigma = float(np.sqrt(np.log(1.0 + settings.demand_noise**2)))

        def demand_multipliers() -> dict[tuple[str, str], float]:
            if settings.demand_noise <= 0:
                return {}
            draws = demand_rng.normal(
                -0.5 * sigma**2, sigma, size=len(demand_keys)
            )
            return {
                key: float(np.exp(draw))
                for key, draw in zip(demand_keys, draws)
            }

        def search_power_now(now: float) -> float:
            return sum(
                watts
                for start, end, watts in search_effects
                if start <= now < end
            )

        def on_execution_fault(kind: str, detail: str) -> None:
            if hasattr(controller, "record_execution_fault"):
                controller.record_execution_fault(engine.now, kind)

        def wasted_plan_utility(execution) -> float:
            """Eq. 3 utility an aborted plan burned for nothing.

            Every attempt of an aborted plan (forward and rollback) paid
            its transient perf/power penalty without buying a lasting
            configuration change; price each record's elapsed window at
            the gap between the steady utility rate and the transient
            rate while it ran.
            """
            workloads = self.workloads_at(engine.now)
            try:
                base = self.estimator.estimate(
                    cluster.configuration, workloads
                )
            except Exception:  # noqa: BLE001 - best-effort accounting
                return 0.0
            wasted = 0.0
            for record in execution.records:
                elapsed = max(0.0, record.end - record.start)
                if elapsed <= 0.0:
                    continue
                perf_rate, power_rate = self.estimator.transient_rates(
                    base,
                    workloads,
                    record.spec.rt_delta,
                    record.spec.total_power_delta(),
                )
                wasted += elapsed * max(
                    0.0, base.total_rate - (perf_rate + power_rate)
                )
            return wasted

        def on_plan_complete(execution) -> None:
            if injector is None or execution.aborted is None:
                return
            wasted = wasted_plan_utility(execution)
            if _telemetry.enabled:
                _telemetry.tracer.event(
                    "resilience.plan_waste",
                    wasted_utility=wasted,
                    reason=execution.aborted,
                    rolled_back=execution.rolled_back,
                    t_sim=engine.now,
                )
            if hasattr(controller, "charge_fault_cost"):
                controller.charge_fault_cost(wasted)
            if hasattr(controller, "request_replan"):
                controller.request_replan(execution.aborted)

        if injector is not None:
            for crash in injector.config.host_crashes:
                if crash.host_id not in cluster.hosts:
                    raise ValueError(
                        f"scripted crash names unknown host {crash.host_id!r}"
                    )

                def do_crash(event=crash) -> None:
                    cluster.crash_host(event.host_id, fault_injector=injector)
                    if hasattr(controller, "record_execution_fault"):
                        controller.record_execution_fault(
                            engine.now, "host_crash"
                        )
                    if hasattr(controller, "request_replan"):
                        controller.request_replan(
                            f"host crash: {event.host_id}"
                        )

                engine.schedule_at(
                    crash.time, do_crash, label=f"crash:{crash.host_id}"
                )

            for crash in injector.config.controller_crashes:
                if not hasattr(controller, "crash_controller"):
                    raise ValueError(
                        "controller_crashes require a failover-capable "
                        "controller (a ControllerHierarchy); "
                        f"{type(controller).__name__} cannot crash"
                    )

                def do_controller_crash(event=crash) -> None:
                    controller.crash_controller(
                        engine.now, event, fault_injector=injector
                    )

                engine.schedule_at(
                    crash.time,
                    do_controller_crash,
                    label=f"controller-crash:{crash.controller}",
                )

        def sample() -> None:
            now = engine.now
            workloads = self.workloads_at(now)
            configuration = cluster.configuration

            truth = self.truth_solver.solve(
                configuration, workloads, demand_multipliers()
            )
            target = self.utility.parameters.target_response_time
            measured_rt: dict[str, float] = {}
            for app_name in workloads:
                noise = 1.0 + float(
                    rt_rng.normal(0.0, settings.rt_measurement_noise)
                )
                response = truth.response_times[app_name] * noise
                # Closed-loop cap: a finite session population cannot
                # drive the open-model response time to infinity.
                rho = max(
                    (
                        value
                        for (app, _), value in truth.tier_utilizations.items()
                        if app == app_name and value != float("inf")
                    ),
                    default=0.0,
                )
                if rho > 1.0:
                    bound = (
                        settings.overload_base_multiple * target
                        + settings.closed_loop_think_time * (rho - 1.0)
                    )
                    response = min(response, bound)
                if not np.isfinite(response):
                    # A tier with zero replicas (host crash stranded
                    # them all) solves to an infinite open-model RT;
                    # the closed session population still bounds what a
                    # client measures.  Unreachable without faults.
                    response = (
                        settings.overload_base_multiple * target
                        + settings.closed_loop_think_time
                    )
                measured_rt[app_name] = max(
                    0.0,
                    response
                    + cluster.transient_rt_delta_mean(
                        app_name,
                        now - settings.monitoring_interval,
                        now,
                    ),
                )
            watts = meter.read_windowed(
                truth.host_utilizations,
                now - settings.monitoring_interval,
                now,
            ) + search_power_now(now)

            increment = self.utility.interval_utility(
                workloads,
                measured_rt,
                watts,
                duration=settings.monitoring_interval,
            )
            for app_name, value in measured_rt.items():
                metrics.response_times[app_name].append(now, value)
            for app_name, rate in workloads.items():
                metrics.workloads[app_name].append(now, rate)
            metrics.power_watts.append(now, watts)
            metrics.utility_increments.append(now, increment)
            metrics.hosts_powered.append(
                now, len(configuration.powered_hosts)
            )
            observed = workloads
            if injector is not None:
                observed, sample_fault = injector.perturb_sample(workloads)
                if sample_fault is not None:
                    if _telemetry.enabled:
                        _telemetry.registry.counter(
                            f"faults.samples_{sample_fault}"
                        ).inc()
                        _telemetry.tracer.event(
                            "fault.sample", mode=sample_fault, t_sim=now
                        )
                    if observed is None:
                        # Dropped: this interval never reaches the
                        # controller's monitor/bands/ARMA filter.
                        return
            controller.record_interval_utility(increment)
            if not cluster.is_adapting() and hasattr(
                controller, "record_measurements"
            ):
                # Feed measured response times to feedback-capable
                # controllers (skipped mid-adaptation: transient deltas
                # are not model bias).
                controller.record_measurements(
                    observed, measured_rt, configuration
                )

            decisions = _normalize(
                controller.on_sample(
                    now, observed, configuration, busy=cluster.is_adapting()
                )
            )
            for decision in decisions:
                provenance = getattr(decision.outcome, "provenance", None)
                if provenance is not None:
                    metrics.decision_provenance.append(
                        {
                            "t": now,
                            "controller": decision.controller,
                            **provenance.to_attrs(),
                        }
                    )
                if invariants:
                    committed = getattr(
                        decision.outcome, "final_configuration", None
                    )
                    if committed is not None:
                        metrics.invariant_violations.extend(
                            check_invariants(
                                committed,
                                self.catalog,
                                self.limits,
                                host_ids=self.host_ids,
                                utility=(
                                    provenance.utility
                                    if provenance is not None
                                    else None
                                ),
                                context=(
                                    f"{decision.controller}@t={now:g}"
                                ),
                            )
                        )
            if not decisions or cluster.is_adapting():
                return
            actions = []
            delay = 0.0
            for decision in decisions:
                actions.extend(decision.actions)
                delay = max(delay, decision.decision_seconds)
                search_effects.append(
                    (now, now + decision.decision_seconds, decision.search_watts)
                )
                metrics.search_seconds.append(now, decision.decision_seconds)
                metrics.search_power_watts.append(now, decision.search_watts)
            if not actions:
                return
            handle = cluster.execute_plan(
                actions,
                start_delay=delay,
                on_complete=on_plan_complete,
                fault_injector=injector,
                recovery=recovery_policy,
                on_fault=on_execution_fault,
            )
            pending.append((decisions[0], handle))

        def save_snapshot() -> None:
            store.save(
                capture(
                    controller,
                    configuration=cluster.configuration,
                    t_sim=engine.now,
                )
            )

        def sample_and_checkpoint() -> None:
            # Snapshot after every sample, even one that raised: the
            # pre-sample state a restart needs is already on disk from
            # the previous window, and a clean window must be persisted
            # before the next one can crash.
            try:
                sample()
            finally:
                save_snapshot()

        engine.schedule_periodic(
            settings.monitoring_interval,
            sample if store is None else sample_and_checkpoint,
            start=0.0,
            label="monitor",
        )
        try:
            with _telemetry.span(
                "testbed.run",
                strategy=strategy,
                horizon=span,
                monitoring_interval=settings.monitoring_interval,
                hosts=len(self.host_ids),
                applications=len(self.applications),
            ):
                engine.run_until(span)
        finally:
            # Teardown must survive any mid-window death
            # (KeyboardInterrupt, executor crash): release worker
            # pools, leave a loadable snapshot behind, and flush the
            # trace sink so the JSONL on disk is complete.
            if hasattr(controller, "shutdown_parallel"):
                controller.shutdown_parallel()
            if store is not None:
                try:
                    save_snapshot()
                except Exception:  # noqa: BLE001 - don't mask the run's error
                    _telemetry.event(
                        "checkpoint.save_failed", t_sim=engine.now
                    )
            _telemetry.flush()
        _telemetry.emit_metrics_snapshot(strategy=strategy)

        for decision, handle in pending:
            for record in handle.records:
                description = str(record.action)
                if record.phase != "plan":
                    description += f" [{record.phase}]"
                if record.outcome != "ok":
                    description += f" [{record.outcome}]"
                metrics.actions.append(
                    ActionRecord(
                        start=record.start,
                        end=record.end,
                        controller=decision.controller,
                        description=description,
                    )
                )
        metrics.actions.sort(key=lambda record: record.start)
        metrics.final_configuration = cluster.configuration
        if injector is not None:
            metrics.fault_stats = injector.stats
        return metrics


def _normalize(output: ControllerOutput) -> list[Decision]:
    """Controller outputs come in three shapes; flatten to a list."""
    if output is None:
        return []
    if isinstance(output, Decision):
        return [output]
    return [decision for decision in output if decision is not None]


def _searches_of(controller) -> list:
    """Every :class:`AdaptationSearch` a strategy's controller owns.

    Duck-typed over the three controller shapes: hierarchies expose
    ``controllers()``, single controllers a ``search``, and the
    Perf-Cost baseline a per-app ``app_searches`` map.
    """
    members = (
        controller.controllers()
        if hasattr(controller, "controllers")
        else [controller]
    )
    searches = []
    for member in members:
        if hasattr(member, "search"):
            searches.append(member.search)
        if hasattr(member, "app_searches"):
            searches.extend(member.app_searches.values())
    return searches
