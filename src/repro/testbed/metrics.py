"""Experiment metrics: time series and per-run summaries."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional


class TimeSeries:
    """An append-only (time, value) series with small analytics."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._times: list[float] = []
        self._values: list[float] = []

    def append(self, time: float, value: float) -> None:
        """Record one sample (times must be non-decreasing)."""
        if self._times and time < self._times[-1]:
            raise ValueError(
                f"{self.name}: time {time} before last {self._times[-1]}"
            )
        self._times.append(float(time))
        self._values.append(float(value))

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self):
        return iter(zip(self._times, self._values))

    @property
    def times(self) -> list[float]:
        """Sample times."""
        return list(self._times)

    @property
    def values(self) -> list[float]:
        """Sample values."""
        return list(self._values)

    def last(self) -> float:
        """Most recent value."""
        if not self._values:
            raise ValueError(f"{self.name}: empty series")
        return self._values[-1]

    def mean(self) -> float:
        """Arithmetic mean of the values."""
        if not self._values:
            return 0.0
        return sum(self._values) / len(self._values)

    def maximum(self) -> float:
        """Largest value."""
        return max(self._values) if self._values else 0.0

    def total(self) -> float:
        """Sum of the values."""
        return sum(self._values)

    def cumulative(self) -> "TimeSeries":
        """Running-total series (e.g. cumulative utility, Fig. 9)."""
        series = TimeSeries(f"{self.name}:cumulative")
        running = 0.0
        for time, value in self:
            running += value
            series.append(time, running)
        return series

    def fraction_above(self, threshold: float) -> float:
        """Fraction of samples strictly above a threshold."""
        if not self._values:
            return 0.0
        return sum(1 for value in self._values if value > threshold) / len(
            self._values
        )

    def window(self, start: float, end: float) -> "TimeSeries":
        """Sub-series with times in [start, end]."""
        series = TimeSeries(self.name)
        for time, value in self:
            if start <= time <= end:
                series.append(time, value)
        return series


@dataclass
class ActionRecord:
    """One executed adaptation action, for reporting."""

    start: float
    end: float
    controller: str
    description: str


@dataclass
class RunMetrics:
    """Everything one experiment run produced."""

    strategy: str
    response_times: dict[str, TimeSeries] = field(default_factory=dict)
    workloads: dict[str, TimeSeries] = field(default_factory=dict)
    power_watts: TimeSeries = field(default_factory=lambda: TimeSeries("power"))
    utility_increments: TimeSeries = field(
        default_factory=lambda: TimeSeries("utility")
    )
    hosts_powered: TimeSeries = field(default_factory=lambda: TimeSeries("hosts"))
    actions: list[ActionRecord] = field(default_factory=list)
    search_seconds: TimeSeries = field(
        default_factory=lambda: TimeSeries("search")
    )
    search_power_watts: TimeSeries = field(
        default_factory=lambda: TimeSeries("search-power")
    )
    #: One plain-dict ``decision.provenance`` record per controller
    #: decision (see ``repro.telemetry.provenance``); empty unless the
    #: run executed with telemetry + provenance collection enabled.
    decision_provenance: list = field(default_factory=list)
    #: Injected-fault tally (``repro.faults.FaultStats``) when the run
    #: was fault-injected; ``None`` for ordinary runs.
    fault_stats: Optional[object] = None
    #: Post-decision invariant violations
    #: (``repro.faults.InvariantViolation``) found by the chaos
    #: referee; empty unless the run executed with ``invariants=True``
    #: — and empty even then unless the hardening failed.
    invariant_violations: list = field(default_factory=list)
    #: The configuration deployed when the horizon ended.
    final_configuration: Optional[object] = None

    def cumulative_utility(self) -> float:
        """Total utility over the run (the Fig. 9 headline number)."""
        return self.utility_increments.total()

    def mean_power(self) -> float:
        """Average metered power over the run."""
        return self.power_watts.mean()

    def target_violation_fraction(
        self, app_name: str, target_seconds: float
    ) -> float:
        """Fraction of intervals an app missed its response-time target."""
        return self.response_times[app_name].fraction_above(target_seconds)

    def action_count(self) -> int:
        """Number of adaptation actions executed."""
        return len(self.actions)


def summarize_runs(
    runs: Iterable[RunMetrics], target_seconds: Optional[float] = None
) -> list[dict[str, object]]:
    """Comparison rows across strategies (used by the benchmarks)."""
    rows = []
    for run in runs:
        row: dict[str, object] = {
            "strategy": run.strategy,
            "cumulative_utility": round(run.cumulative_utility(), 1),
            "mean_power_watts": round(run.mean_power(), 1),
            "actions": run.action_count(),
        }
        if target_seconds is not None:
            for app_name, series in sorted(run.response_times.items()):
                row[f"viol_{app_name}"] = round(
                    series.fraction_above(target_seconds), 3
                )
        rows.append(row)
    return rows
