"""Utilization-based power model (paper §III-B).

Per-host power follows the empirical non-linear curve

    pwr = pwr_idle + (pwr_busy - pwr_idle) * (2*rho - rho**r)

with ``rho`` the host CPU utilization and ``r`` a tuning exponent
obtained in a calibration phase against power-meter readings.  The
testbed runs on hidden true exponents; the controller uses the fitted
copy, mirroring the paper's model-vs-meter split (Fig. 5c).
"""

from repro.power.model import HostPowerModel, SystemPowerModel
from repro.power.calibration import calibrate_power_model, fit_exponent

__all__ = [
    "HostPowerModel",
    "SystemPowerModel",
    "calibrate_power_model",
    "fit_exponent",
]
