"""Host and system power models."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping


@dataclass(frozen=True)
class HostPowerModel:
    """The paper's empirical non-linear host power curve.

    ``pwr(rho) = idle + (busy - idle) * (2*rho - rho**r)`` where
    ``idle`` is standby draw, ``busy`` the maximum observed draw, and
    ``r`` a calibration exponent minimizing the square error against
    meter readings.  ``rho`` is host CPU utilization in [0, 1].
    """

    idle_watts: float = 60.0
    busy_watts: float = 100.0
    exponent: float = 1.4

    def __post_init__(self) -> None:
        if self.idle_watts < 0:
            raise ValueError("idle_watts must be >= 0")
        if self.busy_watts < self.idle_watts:
            raise ValueError("busy_watts must be >= idle_watts")
        if not 1.0 <= self.exponent <= 2.0:
            raise ValueError(
                "exponent must be in [1, 2] so pwr(rho) stays within "
                "[idle, busy] and monotone over [0, 1]"
            )

    def watts(self, utilization: float) -> float:
        """Power draw at the given CPU utilization (clamped to [0, 1])."""
        rho = min(max(utilization, 0.0), 1.0)
        dynamic = 2.0 * rho - rho**self.exponent
        return self.idle_watts + (self.busy_watts - self.idle_watts) * dynamic


class SystemPowerModel:
    """Aggregate power of a host fleet.

    Total system power is the sum of the powered hosts' draws (paper:
    "the total power usage of the system is simply the sum of physical
    machines' power usages"); unpowered hosts draw nothing.  Cooling is
    not modeled explicitly, following the paper's argument that it is
    approximately a fixed percentage of compute power.
    """

    def __init__(self, host_models: Mapping[str, HostPowerModel]) -> None:
        if not host_models:
            raise ValueError("SystemPowerModel needs at least one host")
        self._host_models = dict(host_models)

    @classmethod
    def uniform(
        cls, host_ids: Iterable[str], model: HostPowerModel
    ) -> "SystemPowerModel":
        """Fleet where every host follows the same curve."""
        return cls({host_id: model for host_id in host_ids})

    def host_model(self, host_id: str) -> HostPowerModel:
        """Per-host curve; raises ``KeyError`` for unknown hosts."""
        return self._host_models[host_id]

    def host_ids(self) -> tuple[str, ...]:
        """All modeled hosts."""
        return tuple(self._host_models)

    def host_watts(self, host_id: str, utilization: float) -> float:
        """One host's draw at the given utilization."""
        return self._host_models[host_id].watts(utilization)

    def total_watts(
        self,
        powered_hosts: Iterable[str],
        host_utilizations: Mapping[str, float],
    ) -> float:
        """System draw: powered hosts at their utilization, others 0 W.

        Powered hosts missing from ``host_utilizations`` idle at
        utilization 0.
        """
        total = 0.0
        for host_id in powered_hosts:
            model = self._host_models.get(host_id)
            if model is None:
                raise KeyError(f"unknown host {host_id!r}")
            total += model.watts(host_utilizations.get(host_id, 0.0))
        return total
