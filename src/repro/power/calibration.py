"""Power model calibration (paper §III-B).

The paper obtains the tuning exponent ``r`` "at a model calibration
phase" from offline experiments against a power meter.  We reproduce
the phase mechanically: sample the testbed's true curve at a sweep of
utilizations with meter noise, then fit ``r`` by least squares with a
golden-section search (the objective is unimodal in ``r``).
"""

from __future__ import annotations

import numpy as np

from repro.power.model import HostPowerModel


def fit_exponent(
    utilizations: np.ndarray,
    watts: np.ndarray,
    idle_watts: float,
    busy_watts: float,
    bounds: tuple[float, float] = (1.0, 2.0),
    tolerance: float = 1e-5,
) -> float:
    """Least-squares fit of the power-curve exponent ``r``.

    Parameters
    ----------
    utilizations, watts:
        Paired observations from the calibration sweep.
    idle_watts, busy_watts:
        Endpoints of the curve (measured directly at standby and under
        saturation, so they are not free parameters of the fit).
    bounds:
        Search interval for ``r``.
    tolerance:
        Interval width at which the golden-section search stops.
    """
    rho = np.clip(np.asarray(utilizations, dtype=float), 0.0, 1.0)
    observed = np.asarray(watts, dtype=float)
    if rho.shape != observed.shape or rho.size == 0:
        raise ValueError("utilizations and watts must be equal-length, non-empty")
    span = busy_watts - idle_watts
    if span <= 0:
        raise ValueError("busy_watts must exceed idle_watts")

    def squared_error(r: float) -> float:
        predicted = idle_watts + span * (2.0 * rho - rho**r)
        return float(np.sum((predicted - observed) ** 2))

    low, high = bounds
    if low >= high:
        raise ValueError("bounds must be an increasing interval")
    inv_phi = (np.sqrt(5.0) - 1.0) / 2.0
    a, b = low, high
    c = b - inv_phi * (b - a)
    d = a + inv_phi * (b - a)
    fc, fd = squared_error(c), squared_error(d)
    while (b - a) > tolerance:
        if fc < fd:
            b, d, fd = d, c, fc
            c = b - inv_phi * (b - a)
            fc = squared_error(c)
        else:
            a, c, fc = c, d, fd
            d = a + inv_phi * (b - a)
            fd = squared_error(d)
    return (a + b) / 2.0


def calibrate_power_model(
    true_model: HostPowerModel,
    rng: np.random.Generator,
    meter_noise_watts: float = 1.5,
    sweep_points: int = 21,
    repetitions: int = 5,
) -> HostPowerModel:
    """Run the offline calibration sweep and return the fitted model.

    The sweep drives utilization from 0 to 1 in ``sweep_points`` steps,
    reads the meter ``repetitions`` times per step with additive
    Gaussian noise, and fits the exponent.  Idle and busy draws are
    taken as the averaged endpoint readings, as in the paper's setup
    where they are observed directly.
    """
    if sweep_points < 3:
        raise ValueError("sweep_points must be >= 3")
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")

    rho = np.repeat(np.linspace(0.0, 1.0, sweep_points), repetitions)
    readings = np.array([true_model.watts(u) for u in rho])
    readings = readings + rng.normal(0.0, meter_noise_watts, size=rho.shape)

    idle = float(np.mean(readings[rho == 0.0]))
    busy = float(np.mean(readings[rho == 1.0]))
    # Meter noise can invert the endpoints on a nearly flat curve;
    # keep the model well-formed.
    busy = max(busy, idle + 1e-6)
    exponent = fit_exponent(rho, readings, idle, busy)
    return HostPowerModel(
        idle_watts=idle, busy_watts=busy, exponent=min(2.0, max(1.0, exponent))
    )
