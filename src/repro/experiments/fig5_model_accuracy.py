"""Fig. 5 — accuracy of the performance and power models.

The paper validates the LQN and power models on the 16:52-17:14 flash
crowd interval of the 2-app scenario: at each time point, the
Performance Manager's configuration for the measured request rates is
evaluated both by the models and by the real system (restarted per
point to avoid adaptation noise), and the estimates are compared.  The
paper reports ~5% error for response time, utilization, and power.

Here the "experiment" is the testbed's hidden truth (true parameters,
per-interval demand noise, meter noise) and the "model" is what the
controller sees (offline-calibrated parameters, fitted power curves).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.perf_pwr import PerfPwrOptimizer
from repro.experiments.strategies import get_testbed

#: The flash-crowd validation window (seconds from 15:00).
WINDOW_START = 6720.0
WINDOW_END = 8040.0
STEP = 120.0


@dataclass
class AccuracyPoint:
    """Model vs experiment at one time point."""

    time: float
    rt_model: float
    rt_experiment: float
    util_model: float
    util_experiment: float
    watts_model: float
    watts_experiment: float


@dataclass
class AccuracyResult:
    """The Fig. 5 series plus aggregate errors."""

    points: list[AccuracyPoint]

    def _mean_error(self, pairs: list[tuple[float, float]]) -> float:
        errors = [
            abs(model - experiment) / experiment
            for model, experiment in pairs
            if experiment > 0
        ]
        return sum(errors) / len(errors) if errors else 0.0

    def rt_error(self) -> float:
        """Mean relative response-time error."""
        return self._mean_error(
            [(p.rt_model, p.rt_experiment) for p in self.points]
        )

    def util_error(self) -> float:
        """Mean relative utilization error."""
        return self._mean_error(
            [(p.util_model, p.util_experiment) for p in self.points]
        )

    def power_error(self) -> float:
        """Mean relative power error."""
        return self._mean_error(
            [(p.watts_model, p.watts_experiment) for p in self.points]
        )


def run_fig5(
    app_count: int = 2, seed: int = 0, repetitions: int = 3
) -> AccuracyResult:
    """Validate the models across the flash-crowd window.

    Each point's "experiment" value averages ``repetitions`` restarted
    measurements, as in the paper's per-point re-measurement protocol.
    """
    testbed = get_testbed(app_count, seed)
    optimizer = PerfPwrOptimizer(
        testbed.applications,
        testbed.catalog,
        testbed.limits,
        testbed.estimator,
        testbed.host_ids,
    )
    demand_rng = testbed.streams.fork("fig5").stream("demand")
    meter_rng = testbed.streams.fork("fig5").stream("meter")
    import numpy as np

    sigma = float(np.sqrt(np.log(1.0 + testbed.settings.demand_noise**2)))
    points = []
    time = WINDOW_START
    while time <= WINDOW_END + 1e-9:
        workloads = testbed.workloads_at(time)
        configuration = optimizer.optimize(workloads).configuration

        model = testbed.model_solver.solve(configuration, workloads)
        watts_model = testbed.model_power.total_watts(
            configuration.powered_hosts, model.host_utilizations
        )

        rt_samples: list[float] = []
        util_samples: list[float] = []
        watts_samples: list[float] = []
        for _ in range(max(1, repetitions)):
            multipliers = {
                key: float(
                    np.exp(demand_rng.normal(-0.5 * sigma**2, sigma))
                )
                for key in testbed.truth_parameters.tier_demands
            }
            truth = testbed.truth_solver.solve(
                configuration, workloads, multipliers
            )
            rt_samples.append(sum(truth.response_times.values()))
            util_samples.append(truth.total_utilization())
            watts_samples.append(
                testbed.truth_power.total_watts(
                    configuration.powered_hosts, truth.host_utilizations
                )
                + float(
                    meter_rng.normal(
                        0.0, testbed.settings.meter_noise_watts
                    )
                )
            )

        points.append(
            AccuracyPoint(
                time=time,
                rt_model=sum(model.response_times.values()),
                rt_experiment=sum(rt_samples) / len(rt_samples),
                util_model=model.total_utilization(),
                util_experiment=sum(util_samples) / len(util_samples),
                watts_model=watts_model,
                watts_experiment=sum(watts_samples) / len(watts_samples),
            )
        )
        time += STEP
    return AccuracyResult(points=points)
