"""Fig. 7 — measured transient adaptation costs.

Reads the offline cost tables (built by the measurement campaign the
same way the paper measures costs on its testbed) and reports, per
workload level: the power delta as a percentage of the reference host
draw (Fig. 7a: ~8-17%), the response-time delta of the adapted
application (Fig. 7b: tens of ms to ~700 ms), and the adaptation delay
(Fig. 7c: seconds to ~70 s for MySQL replica addition), for migrations
of each tier and MySQL replica addition/removal — plus the host
power-cycling costs quoted in §V-B.
"""

from __future__ import annotations

from repro.apps.rubis import rate_to_sessions
from repro.costmodel.table import CostTable
from repro.experiments.strategies import get_testbed

#: The actions Fig. 7 plots, as (cost-table kind, tier, label) tuples.
FIG7_ACTIONS = (
    ("migrate", "db", "Migration (MySQL)"),
    ("migrate", "app", "Migration (Tomcat)"),
    ("migrate", "web", "Migration (Apache)"),
    ("add_replica", "db", "Add replica (MySQL)"),
    ("remove_replica", "db", "Remove replica (MySQL)"),
)

#: Reference draw used to express power deltas in percent (the rig
#: hosts hover near this level during the campaign).
REFERENCE_WATTS = 160.0


def run_fig7(
    table: CostTable | None = None, app_count: int = 2, seed: int = 0
) -> list[dict[str, object]]:
    """Rows of (action, sessions, dWatt%, dRT ms, delay ms)."""
    if table is None:
        table = get_testbed(app_count, seed).cost_table
    rows: list[dict[str, object]] = []
    for kind, tier, label in FIG7_ACTIONS:
        for workload in table.workload_levels(kind, tier):
            entry = table.lookup(kind, tier, workload)
            rows.append(
                {
                    "action": label,
                    "sessions": int(rate_to_sessions(workload)),
                    "delta_watt_pct": 100.0
                    * entry.power_delta_watts
                    / REFERENCE_WATTS,
                    "delta_rt_ms": 1000.0 * entry.primary_rt_delta,
                    "delay_ms": 1000.0 * entry.duration,
                }
            )
    return rows


def power_cycle_costs(
    table: CostTable | None = None, app_count: int = 2, seed: int = 0
) -> dict[str, dict[str, float]]:
    """Host start/stop costs (§V-B: ~90 s / 80 W and ~30 s / 20 W)."""
    if table is None:
        table = get_testbed(app_count, seed).cost_table
    result = {}
    for kind in ("power_on", "power_off"):
        entry = table.lookup(kind, "-", 0.0)
        result[kind] = {
            "duration_s": entry.duration,
            "delta_watts": entry.power_delta_watts,
        }
    return result


def monotonicity_checks(rows: list[dict[str, object]]) -> dict[str, bool]:
    """The qualitative Fig. 7 shapes: costs grow with workload."""
    by_action: dict[str, list[dict[str, object]]] = {}
    for row in rows:
        by_action.setdefault(str(row["action"]), []).append(row)

    def grows(samples: list[dict[str, object]], key: str) -> bool:
        values = [float(row[key]) for row in samples]
        return values[-1] > values[0]

    checks = {}
    for action, samples in by_action.items():
        samples.sort(key=lambda row: int(row["sessions"]))
        checks[f"{action}: dRT grows"] = grows(samples, "delta_rt_ms")
        checks[f"{action}: delay grows"] = grows(samples, "delay_ms")
    return checks
