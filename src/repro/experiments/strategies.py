"""Shared strategy-comparison runner for the Fig. 8/9/10 experiments.

Runs are memoized per (app count, seed, horizon, strategy) so the
benchmark harness can regenerate several figures from one set of runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.testbed.metrics import RunMetrics
from repro.testbed.scenarios import (
    build_mistral,
    build_perf_cost,
    build_perf_pwr,
    build_pwr_cost,
    make_testbed,
)
from repro.testbed.testbed import Testbed

STRATEGY_BUILDERS = {
    "mistral": build_mistral,
    "perf-pwr": build_perf_pwr,
    "perf-cost": build_perf_cost,
    "pwr-cost": build_pwr_cost,
}

#: Paper Fig. 9 cumulative utilities, for the comparison printouts.
PAPER_CUMULATIVE_UTILITY = {
    "mistral": 152.3,
    "perf-pwr": -47.1,
    "perf-cost": 26.3,
    "pwr-cost": 93.9,
}

_testbeds: dict[tuple, Testbed] = {}
_runs: dict[tuple, RunMetrics] = {}


@dataclass
class Comparison:
    """A testbed plus the per-strategy run metrics."""

    testbed: Testbed
    runs: dict[str, RunMetrics]

    @property
    def target(self) -> float:
        """The true response-time target used for violation counting."""
        return self.testbed.utility.parameters.target_response_time


def get_testbed(app_count: int = 2, seed: int = 0) -> Testbed:
    """Memoized testbed for one scenario size."""
    key = (app_count, seed)
    if key not in _testbeds:
        _testbeds[key] = make_testbed(app_count=app_count, seed=seed)
    return _testbeds[key]


def run_strategy(
    strategy: str,
    app_count: int = 2,
    seed: int = 0,
    horizon: Optional[float] = None,
) -> RunMetrics:
    """Memoized single-strategy run."""
    if strategy == "mistral":
        # Share the run with the Fig. 10 / Table I self-aware variant.
        _, metrics = run_mistral_variant(
            True, app_count=app_count, seed=seed, horizon=horizon
        )
        return metrics
    key = (strategy, app_count, seed, horizon)
    if key not in _runs:
        testbed = get_testbed(app_count, seed)
        builder = STRATEGY_BUILDERS[strategy]
        controller, initial = builder(testbed)
        _runs[key] = testbed.run(controller, initial, strategy, horizon=horizon)
    return _runs[key]


def run_comparison(
    app_count: int = 2,
    seed: int = 0,
    horizon: Optional[float] = None,
    strategies: Sequence[str] = ("perf-pwr", "perf-cost", "pwr-cost", "mistral"),
) -> Comparison:
    """Run (or reuse) all strategies on one scenario."""
    testbed = get_testbed(app_count, seed)
    runs = {
        strategy: run_strategy(strategy, app_count, seed, horizon)
        for strategy in strategies
    }
    return Comparison(testbed=testbed, runs=runs)


def run_mistral_variant(
    self_aware: bool,
    app_count: int = 2,
    seed: int = 0,
    horizon: Optional[float] = None,
    hierarchical: bool = True,
):
    """Mistral with the Self-Aware or Naive search (Fig. 10, Table I).

    Returns ``(controller, metrics)`` so callers can read the
    controller's per-level search statistics.
    """
    key = ("mistral-variant", self_aware, hierarchical, app_count, seed, horizon)
    cached = _runs.get(key)
    testbed = get_testbed(app_count, seed)
    if cached is None:
        controller, initial = build_mistral(
            testbed, hierarchical=hierarchical, self_aware=self_aware
        )
        metrics = testbed.run(
            controller,
            initial,
            f"mistral-{'self-aware' if self_aware else 'naive'}",
            horizon=horizon,
        )
        _runs[key] = (controller, metrics)
        cached = _runs[key]
    return cached


def clear_caches() -> None:
    """Drop all memoized testbeds and runs (tests use fresh state)."""
    _testbeds.clear()
    _runs.clear()
