"""Fig. 1 — power and response-time cost of a single live migration.

The paper drives a three-tier application at 100 / 400 / 800 concurrent
sessions, live-migrates one of its VMs at the 25-second mark, and plots
the percentage increase of power draw and of end-to-end response time
at 5-second samples.  We reproduce the rig: a two-host cluster, a
constant workload, one migration of the application-server VM, and
delta-percentage series against the pre-migration baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.application import ApplicationSet
from repro.apps.rubis import make_rubis_application, sessions_to_rate
from repro.cluster.cluster import Cluster
from repro.cluster.host import HostSpec
from repro.cluster.power_meter import PowerMeter
from repro.cluster.transients import TransientModel
from repro.core.actions import MigrateVm
from repro.core.config import Configuration, ConstraintLimits, Placement
from repro.perfmodel.lqn import parameters_for
from repro.perfmodel.solver import LqnSolver
from repro.power.model import HostPowerModel, SystemPowerModel
from repro.sim.engine import SimulationEngine
from repro.sim.rng import RandomStreams

#: The paper's three workload levels, in concurrent sessions.
SESSION_LEVELS = (100, 400, 800)
SAMPLE_PERIOD = 5.0
SAMPLE_COUNT = 110
MIGRATION_AT = 25.0


@dataclass
class MigrationTrace:
    """Delta series for one session level."""

    sessions: int
    request_rate: float
    times: list[float]
    power_delta_pct: list[float]
    rt_delta_pct: list[float]
    migration_seconds: float

    def peak_power_delta(self) -> float:
        """Largest power increase over baseline, in percent."""
        return max(self.power_delta_pct)

    def peak_rt_delta(self) -> float:
        """Largest response-time increase over baseline, in percent."""
        return max(self.rt_delta_pct)


def run_fig1(seed: int = 0) -> dict[int, MigrationTrace]:
    """Measure one live migration per session level."""
    return {
        sessions: _measure_level(sessions, seed)
        for sessions in SESSION_LEVELS
    }


def _measure_level(sessions: int, seed: int) -> MigrationTrace:
    app = make_rubis_application("RUBiS-1")
    applications = ApplicationSet([app])
    catalog = applications.build_catalog()
    limits = ConstraintLimits()
    rate = sessions_to_rate(float(sessions))
    workloads = {"RUBiS-1": rate}

    streams = RandomStreams(seed).fork(f"fig1:{sessions}")
    engine = SimulationEngine()
    hosts = [HostSpec("m1"), HostSpec("m2")]
    power_models = SystemPowerModel.uniform(
        [spec.host_id for spec in hosts], HostPowerModel()
    )
    transients = TransientModel(
        catalog, rng=streams.stream("transients")
    )
    cluster = Cluster(
        hosts,
        catalog,
        limits,
        engine,
        transients,
        power_models,
        workload_provider=lambda: workloads,
    )
    configuration = Configuration(
        {
            "RUBiS-1-web-0": Placement("m1", 0.3),
            "RUBiS-1-app-0": Placement("m1", 0.5),
            "RUBiS-1-db-0": Placement("m2", 0.8),
        },
        {"m1", "m2"},
    )
    cluster.deploy(configuration)
    meter = PowerMeter(cluster, noise_watts=0.5, rng=streams.stream("meter"))
    solver = LqnSolver(catalog, parameters_for(applications))
    rt_rng = streams.stream("rt")

    times: list[float] = []
    watts: list[float] = []
    response: list[float] = []

    def sample() -> None:
        estimate = solver.solve(cluster.configuration, workloads)
        times.append(engine.now)
        watts.append(meter.read(estimate.host_utilizations))
        noise = 1.0 + float(rt_rng.normal(0.0, 0.01))
        response.append(
            estimate.response_times["RUBiS-1"] * noise
            + cluster.transient_rt_delta("RUBiS-1")
        )

    engine.schedule_periodic(SAMPLE_PERIOD, sample, start=SAMPLE_PERIOD)

    execution = cluster.execute_plan(
        [MigrateVm("RUBiS-1-app-0", "m2")],
        start_delay=MIGRATION_AT,
    )
    engine.run_until(SAMPLE_PERIOD * SAMPLE_COUNT)

    pre_migration = [
        index for index, time in enumerate(times) if time < MIGRATION_AT
    ]
    base_watts = sum(watts[i] for i in pre_migration) / len(pre_migration)
    base_rt = sum(response[i] for i in pre_migration) / len(pre_migration)
    return MigrationTrace(
        sessions=sessions,
        request_rate=rate,
        times=times,
        power_delta_pct=[
            100.0 * (value - base_watts) / base_watts for value in watts
        ],
        rt_delta_pct=[
            100.0 * (value - base_rt) / base_rt for value in response
        ],
        migration_seconds=execution.records[0].spec.duration
        if execution.records
        else 0.0,
    )
