"""Table I — scalability of the hierarchical controller.

For the 2-app (10 VMs / 4 hosts), 3-app (15 / 6), and 4-app (20 / 8)
scenarios, reports the average search durations of the Self-Aware and
Naive variants (overall and per level) plus Mistral's total utility
against the *ideal* utility — the utility a cost-oblivious, simulated
Perf-Pwr optimizer would accrue if adaptation were instantaneous and
free.

The paper's Table I shape: naive durations blow up super-linearly with
system size (250 s at the 4-app 2nd level) while self-aware durations
grow roughly linearly; the gap between achieved and ideal utility stays
approximately constant across scenario sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.perf_pwr import PerfPwrOptimizer
from repro.experiments.strategies import get_testbed, run_mistral_variant

#: Paper Table I reference values (milliseconds / utility units).
PAPER_TABLE1 = {
    2: {
        "self_aware_ms": 3807.8,
        "naive_ms": 4341.4,
        "mistral_utility": 152.3,
        "ideal_utility": 351.7,
    },
    3: {
        "self_aware_ms": 5669.9,
        "naive_ms": 11343.4,
        "mistral_utility": 336.6,
        "ideal_utility": 538.3,
    },
    4: {
        "self_aware_ms": 7514.8,
        "naive_ms": 35155.8,
        "mistral_utility": 504.8,
        "ideal_utility": 701.9,
    },
}


@dataclass
class ScenarioRow:
    """One Table I column (a scenario size)."""

    app_count: int
    vm_count: int
    host_count: int
    self_aware_overall_s: float
    self_aware_level1_s: float
    self_aware_level2_s: float
    naive_overall_s: float
    naive_level1_s: float
    naive_level2_s: float
    mistral_utility: float
    ideal_utility: float


def ideal_utility(testbed, horizon: Optional[float] = None) -> float:
    """Utility of the simulated, cost-free Perf-Pwr optimizer.

    At every monitoring interval the system is assumed to sit in the
    ideal configuration for the current workload with no transition
    costs — an upper bound on any controller's achievable utility.
    """
    optimizer = PerfPwrOptimizer(
        testbed.applications,
        testbed.catalog,
        testbed.limits,
        testbed.estimator,
        testbed.host_ids,
    )
    interval = testbed.settings.monitoring_interval
    span = horizon if horizon is not None else testbed.settings.horizon
    total = 0.0
    time = 0.0
    ledger = testbed.utility
    while time <= span - 1e-9:
        workloads = testbed.workloads_at(time)
        result = optimizer.optimize(workloads)
        rate = (
            ledger.total_perf_rate(
                workloads, dict(result.estimate.response_times)
            )
            + ledger.power_utility_rate(result.estimate.watts)
        )
        total += rate * interval
        time += interval
    return total


def run_table1(
    app_counts: Sequence[int] = (2, 3, 4),
    seed: int = 0,
    horizon: Optional[float] = None,
) -> list[ScenarioRow]:
    """Run both variants on each scenario size."""
    rows = []
    for app_count in app_counts:
        testbed = get_testbed(app_count, seed)
        aware_controller, aware_metrics = run_mistral_variant(
            True, app_count=app_count, seed=seed, horizon=horizon
        )
        naive_controller, naive_metrics = run_mistral_variant(
            False, app_count=app_count, seed=seed, horizon=horizon
        )
        aware = aware_controller.mean_search_seconds()
        naive = naive_controller.mean_search_seconds()
        rows.append(
            ScenarioRow(
                app_count=app_count,
                vm_count=len(testbed.catalog),
                host_count=len(testbed.host_ids),
                self_aware_overall_s=aware["overall"],
                self_aware_level1_s=aware["level1"],
                self_aware_level2_s=aware["level2"],
                naive_overall_s=naive["overall"],
                naive_level1_s=naive["level1"],
                naive_level2_s=naive["level2"],
                mistral_utility=aware_metrics.cumulative_utility(),
                ideal_utility=ideal_utility(testbed, horizon),
            )
        )
    return rows


def scaling_checks(rows: list[ScenarioRow]) -> dict[str, bool]:
    """The qualitative Table I claims."""
    by_size = sorted(rows, key=lambda row: row.app_count)
    aware = [row.self_aware_overall_s for row in by_size]
    naive = [row.naive_overall_s for row in by_size]
    checks = {
        "naive_slower_everywhere": all(
            n > a for n, a in zip(naive, aware)
        ),
        # Compare the smallest and largest scenario: per-size means mix
        # level-1/level-2 shares, so strict monotonicity across all
        # sizes is not the claim — growth from end to end is.
        "naive_grows": naive[-1] > naive[0],
        "ideal_bounds_mistral": all(
            row.ideal_utility > row.mistral_utility for row in by_size
        ),
    }
    if len(by_size) >= 3:
        # Super-linear naive growth vs moderate self-aware growth.
        naive_ratio = naive[-1] / naive[0] if naive[0] > 0 else float("inf")
        aware_ratio = aware[-1] / aware[0] if aware[0] > 0 else float("inf")
        checks["naive_scales_worse_than_self_aware"] = (
            naive_ratio > aware_ratio
        )
    return checks
