"""Experiment modules: one per paper figure/table (see DESIGN.md).

Each module exposes a ``run_*`` function returning plain data
structures (rows/series) that the benchmark harness prints next to the
paper's reference values, plus small helpers the tests assert on.
"""

from repro.experiments.report import format_table, format_series, paper_vs_measured
from repro.experiments.strategies import (
    PAPER_CUMULATIVE_UTILITY,
    run_comparison,
    run_mistral_variant,
    run_strategy,
)

__all__ = [
    "format_table",
    "format_series",
    "paper_vs_measured",
    "PAPER_CUMULATIVE_UTILITY",
    "run_comparison",
    "run_mistral_variant",
    "run_strategy",
]
