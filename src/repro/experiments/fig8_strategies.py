"""Fig. 8 — response-time and power comparison of the four strategies.

Runs Perf-Pwr, Perf-Cost, Pwr-Cost, and Mistral on the 2-app scenario
and produces the RUBiS-1/RUBiS-2 response-time series and the total
power series, plus the qualitative checks the paper draws from them:
Perf-Cost keeps the best response times but burns the most power;
Mistral trades slight peak violations for fewer hosts; Perf-Pwr adapts
most and fluctuates most.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.strategies import Comparison, run_comparison


def run_fig8(
    app_count: int = 2, seed: int = 0, horizon: Optional[float] = None
) -> Comparison:
    """The four strategy runs behind Fig. 8 (and Fig. 9)."""
    return run_comparison(app_count=app_count, seed=seed, horizon=horizon)


def response_time_series(
    comparison: Comparison, app_name: str
) -> dict[str, list[tuple[float, float]]]:
    """Fig. 8 (a)/(b): per-strategy response-time series for one app."""
    return {
        strategy: list(run.response_times[app_name])
        for strategy, run in comparison.runs.items()
    }


def power_series(comparison: Comparison) -> dict[str, list[tuple[float, float]]]:
    """Fig. 8 (c): per-strategy total power series."""
    return {
        strategy: list(run.power_watts)
        for strategy, run in comparison.runs.items()
    }


def shape_checks(comparison: Comparison) -> dict[str, bool]:
    """The qualitative claims the paper makes about Fig. 8."""
    runs = comparison.runs
    target = comparison.target

    def total_violations(strategy: str) -> float:
        run = runs[strategy]
        return sum(
            series.fraction_above(target)
            for series in run.response_times.values()
        )

    return {
        "perf_cost_burns_most_power": runs["perf-cost"].mean_power()
        == max(run.mean_power() for run in runs.values()),
        "perf_cost_best_response_times": total_violations("perf-cost")
        == min(total_violations(strategy) for strategy in runs),
        "perf_pwr_most_adaptations": runs["perf-pwr"].action_count()
        == max(run.action_count() for run in runs.values()),
        "perf_pwr_most_violations": total_violations("perf-pwr")
        == max(total_violations(strategy) for strategy in runs),
        "mistral_power_below_perf_cost": runs["mistral"].mean_power()
        < runs["perf-cost"].mean_power(),
        "mistral_fewer_actions_than_perf_pwr": runs["mistral"].action_count()
        < runs["perf-pwr"].action_count(),
    }
