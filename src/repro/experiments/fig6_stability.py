"""Fig. 6 — accuracy of the stability-interval estimation.

Feeds the workload monitor (band = 8 req/s, as the paper's 2nd-level
controller) with the RUBiS-1/2 traces sampled every monitoring interval
and compares the ARMA filter's predictions against the measured
stability intervals.  The paper reports ~14% average error.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workload.monitor import WorkloadMonitor
from repro.workload.traces import EXPERIMENT_DURATION, standard_traces


@dataclass
class StabilityResult:
    """Measured vs estimated stability intervals."""

    measured: list[float]
    estimated: list[float]

    def mean_relative_error(self) -> float:
        """Mean |estimate - measurement| / measurement."""
        errors = [
            abs(estimate - measured) / measured
            for estimate, measured in zip(self.estimated, self.measured)
            if measured > 0
        ]
        return sum(errors) / len(errors) if errors else 0.0

    def pairs(self) -> list[tuple[float, float]]:
        """(measured, estimated) pairs in control-window order."""
        return list(zip(self.measured, self.estimated))


def run_fig6(
    band_width: float = 8.0,
    monitoring_interval: float = 120.0,
    horizon: float = EXPERIMENT_DURATION,
    app_names: tuple[str, ...] = ("RUBiS-1", "RUBiS-2"),
) -> StabilityResult:
    """Replay the traces through the monitor and collect the series."""
    traces = standard_traces(app_names)
    monitor = WorkloadMonitor(band_width=band_width)
    time = 0.0
    while time <= horizon + 1e-9:
        workloads = {
            app_name: traces[app_name].rate(time) for app_name in app_names
        }
        monitor.observe(time, workloads)
        time += monitoring_interval

    # Pair each measured interval with the estimate that was current
    # when the interval started (the prediction being scored); the
    # first measurement has no prior prediction and is skipped.
    states = monitor.estimator.trace
    measured = [state.measured for state in states[1:]]
    estimated = [state.estimate_next for state in states[:-1]]
    return StabilityResult(measured=measured, estimated=estimated)
