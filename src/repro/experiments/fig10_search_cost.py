"""Fig. 10 — the cost of the decision procedure itself.

Compares the Naive and Self-Aware search variants of Mistral on the
2-app scenario: (a) the power the search draws — the paper measures up
to ~12% over the controller host's 60 W idle; (b) the search durations
— naive up to ~4x the self-aware durations in the hardest cases; and
(c) the realized utility — self-awareness wins (paper: 152.3 vs 135.3
cumulative).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.controller import MistralController
from repro.core.hierarchy import ControllerHierarchy
from repro.experiments.strategies import run_mistral_variant
from repro.testbed.metrics import RunMetrics

#: The controller host's idle draw (paper: ~60 W).
CONTROLLER_IDLE_WATTS = 60.0


@dataclass
class SearchCostResult:
    """Everything Fig. 10 plots."""

    self_aware: RunMetrics
    naive: RunMetrics
    self_aware_controller: object
    naive_controller: object

    def search_power_pct(self) -> list[tuple[float, float]]:
        """Fig. 10a: search power as % over the controller's idle draw."""
        return [
            (time, 100.0 * watts / CONTROLLER_IDLE_WATTS)
            for time, watts in self.self_aware.search_power_watts
        ]

    def duration_series(self) -> dict[str, list[tuple[float, float]]]:
        """Fig. 10b: decision durations (ms) per invocation time."""
        return {
            "self-aware": [
                (time, 1000.0 * seconds)
                for time, seconds in self.self_aware.search_seconds
            ],
            "naive": [
                (time, 1000.0 * seconds)
                for time, seconds in self.naive.search_seconds
            ],
        }

    def peak_durations(self) -> dict[str, float]:
        """Largest decision durations, in seconds."""
        return {
            "self-aware": self.self_aware.search_seconds.maximum(),
            "naive": self.naive.search_seconds.maximum(),
        }

    def utilities(self) -> dict[str, float]:
        """Fig. 10c endpoint: cumulative utility per variant."""
        return {
            "self-aware": self.self_aware.cumulative_utility(),
            "naive": self.naive.cumulative_utility(),
        }

    def checks(self) -> dict[str, bool]:
        """The paper's qualitative claims about search self-awareness."""
        peaks = self.peak_durations()
        utilities = self.utilities()
        return {
            "naive_searches_longer": peaks["naive"] > peaks["self-aware"],
            "self_aware_better_utility": utilities["self-aware"]
            > utilities["naive"],
            "search_power_bounded": all(
                pct <= 15.0 for _, pct in self.search_power_pct()
            ),
        }


def _mean_level_durations(controller: object) -> dict[str, float]:
    if isinstance(controller, ControllerHierarchy):
        return controller.mean_search_seconds()
    if isinstance(controller, MistralController):
        mean = controller.stats.mean_search_seconds()
        return {"level1": 0.0, "level2": mean, "overall": mean}
    return {"level1": 0.0, "level2": 0.0, "overall": 0.0}


def run_fig10(
    app_count: int = 2, seed: int = 0, horizon: Optional[float] = None
) -> SearchCostResult:
    """Run both search variants and bundle the comparison."""
    aware_controller, aware_metrics = run_mistral_variant(
        True, app_count=app_count, seed=seed, horizon=horizon
    )
    naive_controller, naive_metrics = run_mistral_variant(
        False, app_count=app_count, seed=seed, horizon=horizon
    )
    return SearchCostResult(
        self_aware=aware_metrics,
        naive=naive_metrics,
        self_aware_controller=aware_controller,
        naive_controller=naive_controller,
    )


def level_durations(result: SearchCostResult) -> list[dict[str, object]]:
    """Mean decision durations per level and variant (feeds Table I)."""
    rows = []
    for variant, controller in (
        ("self-aware", result.self_aware_controller),
        ("naive", result.naive_controller),
    ):
        durations = _mean_level_durations(controller)
        rows.append(
            {
                "variant": variant,
                "level1_s": round(durations["level1"], 2),
                "level2_s": round(durations["level2"], 2),
                "overall_s": round(durations["overall"], 2),
            }
        )
    return rows
