"""Fig. 9 — cumulative utility of the four strategies.

The paper's headline result: Mistral (152.3) beats Pwr-Cost (93.9),
Perf-Cost (26.3), and Perf-Pwr (-47.1).  The reproduction asserts the
ordering — Mistral strictly highest, Perf-Pwr strictly lowest — rather
than the absolute dollar figures.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.strategies import (
    Comparison,
    PAPER_CUMULATIVE_UTILITY,
    run_comparison,
)


def run_fig9(
    app_count: int = 2, seed: int = 0, horizon: Optional[float] = None
) -> Comparison:
    """The runs behind Fig. 9 (shared with Fig. 8)."""
    return run_comparison(app_count=app_count, seed=seed, horizon=horizon)


def cumulative_series(
    comparison: Comparison,
) -> dict[str, list[tuple[float, float]]]:
    """Per-strategy cumulative-utility series."""
    return {
        strategy: list(run.utility_increments.cumulative())
        for strategy, run in comparison.runs.items()
    }


def final_utilities(comparison: Comparison) -> dict[str, float]:
    """Per-strategy end-of-run cumulative utility."""
    return {
        strategy: run.cumulative_utility()
        for strategy, run in comparison.runs.items()
    }


def comparison_rows(comparison: Comparison) -> list[dict[str, object]]:
    """Paper-vs-measured rows for the benchmark printout."""
    measured = final_utilities(comparison)
    return [
        {
            "strategy": strategy,
            "paper": PAPER_CUMULATIVE_UTILITY[strategy],
            "measured": round(value, 1),
        }
        for strategy, value in sorted(
            measured.items(), key=lambda item: -item[1]
        )
    ]


def ordering_checks(comparison: Comparison) -> dict[str, bool]:
    """Mistral strictly first, Perf-Pwr strictly last (paper ordering)."""
    measured = final_utilities(comparison)
    return {
        "mistral_wins": measured["mistral"]
        == max(measured.values()),
        "pwr_cost_second": sorted(measured, key=measured.get, reverse=True)[1]
        == "pwr-cost",
        "perf_pwr_last": measured["perf-pwr"] == min(measured.values()),
    }
