"""Fig. 4 — the four application workloads over 15:00-21:30.

RUBiS-1/2 follow the scaled World Cup '98 trace (flash crowd around
16:52-17:14, broad evening peak); RUBiS-3/4 follow the scaled HP
customer trace (smooth business curve).  All stay within 0-100 req/s.
"""

from __future__ import annotations

from repro.workload.traces import EXPERIMENT_DURATION, standard_traces

APP_NAMES = ("RUBiS-1", "RUBiS-2", "RUBiS-3", "RUBiS-4")


def run_fig4(
    step: float = 600.0,
) -> dict[str, list[tuple[float, float]]]:
    """Sample all four traces every ``step`` seconds."""
    traces = standard_traces(APP_NAMES)
    return {
        app_name: trace.sample_series(0.0, EXPERIMENT_DURATION, step)
        for app_name, trace in traces.items()
    }


def shape_checks(
    series: dict[str, list[tuple[float, float]]]
) -> dict[str, object]:
    """The qualitative trace properties the paper describes."""
    def peak(app: str) -> float:
        return max(value for _, value in series[app])

    def low(app: str) -> float:
        return min(value for _, value in series[app])

    flash_window = [
        value
        for time, value in series["RUBiS-1"]
        if 6600.0 <= time <= 8100.0
    ]
    return {
        "all_within_range": all(
            0.0 <= value <= 100.0
            for samples in series.values()
            for _, value in samples
        ),
        "worldcup_peaks_high": peak("RUBiS-1") > 80.0 and peak("RUBiS-2") > 75.0,
        "hp_moderate": 35.0 <= peak("RUBiS-3") <= 60.0,
        "hp_smoother_than_worldcup": (
            peak("RUBiS-3") - low("RUBiS-3")
            < peak("RUBiS-1") - low("RUBiS-1")
        ),
        "flash_crowd_present": bool(flash_window) and max(flash_window) > 80.0,
    }
