"""Strategy comparison — pluggable anytime searches (DESIGN.md §14).

Beyond the paper: Mistral's decision procedure is exact A*; the
reproduction adds anytime walkers (seeded MCTS and simulated
annealing) behind ``SearchSettings.strategy``.  This experiment
compares the backends on single adaptation searches in two tiers:

- **parity tier** (2/3/4 apps): every backend plans the same
  high-load search to completion; the walkers must recover at least
  :data:`PARITY_FLOOR` of the production (self-aware) A*'s utility
  *gain over the null plan* — the do-nothing incumbent every anytime
  search starts from;
- **anytime tier** (10 apps / 20 hosts): under a wall-clock deadline
  the exact naive A* — the paper's Table I blowup case — hits the
  watchdog mid-search, while the walkers return complete,
  deadline-respecting plans whose utility still beats the pruned
  self-aware A*'s.

Single searches (the benchmark-harness methodology: consolidated
start, high-load workload vector) rather than full-horizon controller
runs, because the question is the decision procedure's time/quality
trade-off, not closed-loop behavior — Fig. 8/9 already cover that.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.search import AdaptationSearch, SearchSettings
from repro.testbed.scenarios import (
    _global_perf_pwr,
    initial_configuration,
    make_testbed,
)

#: Scenario sizes where every backend (including naive A*) completes.
PARITY_SIZES = (2, 3, 4)
#: The large-scenario tier (20 hosts) only the anytime walkers finish
#: under deadline.
ANYTIME_SIZE = 10
#: Wall-clock budget for the anytime tier.  The exact naive search
#: needs hours at 20 hosts; the walkers converge well inside this.
ANYTIME_DEADLINE_SECONDS = 60.0
#: Walkers must reach this fraction of the self-aware A*'s utility
#: gain over the null plan on scenarios both solve.
PARITY_FLOOR = 0.9

#: Planning horizon of every search (one control window, as in the
#: perf harness).
CONTROL_WINDOW = 300.0


@dataclass
class StrategyRow:
    """One (scenario, backend) measurement."""

    scenario: str
    app_count: int
    host_count: int
    label: str
    strategy: str
    wall_seconds: float
    predicted_utility: float
    null_utility: float
    #: Utility gain over null, as a fraction of the self-aware A*'s
    #: gain on the same scenario; ``None`` when A*'s own gain is ~0.
    parity: Optional[float]
    deadline_aborted: bool
    plan_actions: int


def _high_workloads(testbed) -> dict[str, float]:
    """A far-from-ideal load vector (the harness methodology), cycled
    so large scenarios stay below saturation per app."""
    return {
        name: 45.0 + 5.0 * (index % 6)
        for index, name in enumerate(testbed.applications.names())
    }


def _run_backend(
    testbed,
    label: str,
    deadline: Optional[float] = None,
    **settings_kwargs,
) -> StrategyRow:
    settings = SearchSettings(
        self_aware=settings_kwargs.pop("self_aware", True),
        incremental=True,
        deadline_seconds=deadline,
        **settings_kwargs,
    )
    search = AdaptationSearch(
        testbed.applications,
        testbed.catalog,
        testbed.limits,
        testbed.estimator,
        testbed.cost_manager,
        _global_perf_pwr(testbed),
        testbed.host_ids,
        settings=settings,
    )
    start = initial_configuration(testbed)
    workloads = _high_workloads(testbed)
    null_utility = CONTROL_WINDOW * float(
        testbed.estimator.estimate(start, workloads).total_rate
    )
    search.perf_pwr.optimize(workloads)  # warm the shared ideal
    wall_0 = time.perf_counter()
    try:
        outcome = search.search(start, workloads, CONTROL_WINDOW)
    finally:
        search.close_executor()
    return StrategyRow(
        scenario=f"apps-{len(testbed.applications.names())}",
        app_count=len(testbed.applications.names()),
        host_count=len(testbed.host_ids),
        label=label,
        strategy=outcome.strategy,
        wall_seconds=time.perf_counter() - wall_0,
        predicted_utility=float(outcome.predicted_utility),
        null_utility=null_utility,
        parity=None,
        deadline_aborted=outcome.deadline_aborted,
        plan_actions=len(outcome.actions),
    )


def _fill_parity(rows: list[StrategyRow]) -> None:
    """Parity of every row against its scenario's self-aware A* row."""
    references = {
        row.scenario: row for row in rows if row.label == "astar"
    }
    for row in rows:
        reference = references.get(row.scenario)
        if reference is None:
            continue
        astar_gain = reference.predicted_utility - reference.null_utility
        if abs(astar_gain) < 1e-9:
            continue
        row.parity = (
            row.predicted_utility - row.null_utility
        ) / astar_gain


def run_strategy_comparison(
    parity_sizes: Sequence[int] = PARITY_SIZES,
    anytime_size: int = ANYTIME_SIZE,
    deadline: float = ANYTIME_DEADLINE_SECONDS,
    seed: int = 0,
) -> list[StrategyRow]:
    """All (scenario, backend) rows of both tiers."""
    rows: list[StrategyRow] = []
    for app_count in parity_sizes:
        testbed = make_testbed(app_count=app_count, seed=seed)
        rows.append(_run_backend(testbed, "astar", strategy="astar"))
        for walker in ("mcts", "annealing"):
            rows.append(_run_backend(testbed, walker, strategy=walker))

    testbed = make_testbed(app_count=anytime_size, seed=seed)
    # The pruned production search: fast but suboptimal at this scale —
    # the quality reference the walkers are asked to beat.
    rows.append(_run_backend(testbed, "astar", strategy="astar"))
    # The exact search (guidance off recovers the strictly admissible
    # ordering whose frontier blows up — the paper's Table I naive
    # case); the expansion cap is lifted so the wall-clock watchdog is
    # what stops it.
    rows.append(
        _run_backend(
            testbed,
            "naive_astar",
            deadline=deadline,
            strategy="astar",
            self_aware=False,
            guidance_weight=0.0,
            max_expansions=1_000_000,
        )
    )
    for walker in ("mcts", "annealing"):
        rows.append(
            _run_backend(testbed, walker, deadline=deadline, strategy=walker)
        )
    _fill_parity(rows)
    return rows


def comparison_checks(rows: list[StrategyRow]) -> dict[str, bool]:
    """The qualitative claims the strategy guide makes."""
    parity_walkers = [
        row
        for row in rows
        if row.app_count in PARITY_SIZES and row.label in ("mcts", "annealing")
    ]
    anytime = {
        row.label: row for row in rows if row.app_count not in PARITY_SIZES
    }
    walkers_at_scale = [anytime["mcts"], anytime["annealing"]]
    return {
        # >= 90% of the self-aware A*'s gain wherever both complete.
        "walkers_reach_astar_parity": all(
            row.parity is not None and row.parity >= PARITY_FLOOR
            for row in parity_walkers
        ),
        # The exact search cannot finish the 20-host scenario in the
        # budget — the watchdog aborts it mid-search.
        "naive_astar_hits_deadline": anytime["naive_astar"].deadline_aborted,
        # The walkers return full plans inside the same budget ...
        "walkers_complete_under_deadline": all(
            not row.deadline_aborted for row in walkers_at_scale
        ),
        # ... that beat the pruned A*'s plan outright.
        "walkers_beat_pruned_astar_at_scale": all(
            row.predicted_utility > anytime["astar"].predicted_utility
            for row in walkers_at_scale
        ),
        # Anytime invariant: nobody returns worse than doing nothing.
        "all_plans_beat_null": all(
            row.predicted_utility >= row.null_utility - 1e-9 for row in rows
        ),
    }
