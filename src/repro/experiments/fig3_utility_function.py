"""Fig. 3 — the performance-utility reward/penalty functions.

Reward grows and the penalty shrinks in magnitude as the request rate
grows, reflecting the increasingly best-effort nature of the service.
"""

from __future__ import annotations

from repro.core.utility import UtilityModel


def run_fig3(
    utility: UtilityModel | None = None, step: float = 5.0
) -> list[dict[str, float]]:
    """Sample (rate, reward, penalty) across the 0-100 req/s range."""
    model = utility or UtilityModel()
    rows = []
    rate = 0.0
    while rate <= model.parameters.workload_scale + 1e-9:
        rows.append(
            {
                "rate": rate,
                "reward": model.reward(rate),
                "penalty": model.penalty(rate),
            }
        )
        rate += step
    return rows


def crossover_checks(rows: list[dict[str, float]]) -> dict[str, bool]:
    """The qualitative properties Fig. 3 shows."""
    rewards = [row["reward"] for row in rows]
    penalties = [row["penalty"] for row in rows]
    return {
        "reward_increasing": all(
            a <= b + 1e-12 for a, b in zip(rewards, rewards[1:])
        ),
        "penalty_magnitude_decreasing": all(
            abs(a) >= abs(b) - 1e-12 for a, b in zip(penalties, penalties[1:])
        ),
        "penalty_negative": all(value < 0 for value in penalties),
        "reward_positive": all(value > 0 for value in rewards),
    }
