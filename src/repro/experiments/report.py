"""Plain-text reporting helpers for the benchmark harness."""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: str = "",
) -> str:
    """Render rows of dicts as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {
        column: max(
            len(str(column)), *(len(_cell(row.get(column))) for row in rows)
        )
        for column in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(column).ljust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(
            "  ".join(
                _cell(row.get(column)).ljust(widths[column])
                for column in columns
            )
        )
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 100 else f"{value:.1f}"
    return str(value)


def format_series(
    series: Iterable[tuple[float, float]],
    name: str,
    max_points: int = 12,
) -> str:
    """Render a (time, value) series, thinned to ``max_points`` rows."""
    points = list(series)
    if not points:
        return f"{name}: (empty)"
    step = max(1, len(points) // max_points)
    thinned = points[::step]
    body = "  ".join(f"{time:.0f}:{value:.2f}" for time, value in thinned)
    return f"{name}: {body}"


def paper_vs_measured(
    rows: Sequence[tuple[str, object, object]],
    title: str = "paper vs measured",
) -> str:
    """Three-column comparison: metric, paper value, measured value."""
    table_rows = [
        {"metric": metric, "paper": paper, "measured": measured}
        for metric, paper, measured in rows
    ]
    return format_table(table_rows, ["metric", "paper", "measured"], title)
