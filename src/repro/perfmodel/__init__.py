"""Layered-queueing performance model (paper §III-A).

Tier servers are queues layered over processor-sharing CPU queues whose
capacity is the Xen credit-scheduler cap of the hosting VM.  The solver
produces per-application mean response times and per-VM / per-host CPU
utilizations for a given configuration and workload; the calibration
harness reproduces the paper's offline measurement phase, deriving the
model parameters the controller uses from noisy observations of the
(simulated) testbed.
"""

from repro.perfmodel.lqn import LqnParameters, PerformanceEstimate, parameters_for
from repro.perfmodel.solver import LqnSolver
from repro.perfmodel.calibration import calibrate_parameters

__all__ = [
    "LqnParameters",
    "PerformanceEstimate",
    "parameters_for",
    "LqnSolver",
    "calibrate_parameters",
]
