"""Approximate solver for the layered queueing network.

Each application tier is served by its active replicas; replica ``j``
is a VM with CPU cap ``c_j`` modeled as a processor-sharing queue of
capacity ``c_j``.  Incoming work is balanced across replicas in
proportion to their caps (the paper's front ends distribute requests to
replicas), which makes the per-replica utilization uniform:

    rho = lambda * D / sum_j c_j

with ``D`` the mix-weighted, virtualization-inflated CPU demand per
request at the tier.  The processor-sharing residence time per request
routed to replica ``j`` is ``(D / c_j) / (1 - rho)``; the tier response
time aggregates over the cap-proportional routing probabilities, and
the end-to-end response time adds tier times plus network latency per
request and per synchronous call.

Beyond the saturation knee the hyperbolic waiting curve is linearized
(slope ``overload_slope_seconds``) so that overloaded configurations
get a finite but strongly penalized response time — necessary for the
optimizers, which must be able to rank infeasible-but-improving moves.

**Incremental path.**  The adaptation search evaluates long chains of
configurations that differ by a single action — one VM's cap, one
placement, one powered host.  ``solve_state`` returns a
:class:`SolveState` carrying the per-tier solution terms alongside the
estimate, and ``update_state`` re-solves only the tiers owning the
changed VMs, reusing every other tier's terms verbatim.  Both paths
share the same per-tier kernel (``_solve_tier``) and recompose sums in
the same canonical order, so a delta-solved estimate is *bit-identical*
to a from-scratch ``solve`` of the same configuration — no drift can
accumulate along a search path.

**Batched path.**  ``solve_batch`` evaluates a list of candidate
configurations as one numpy-vectorized batch: per tier, the replica
caps of every candidate form a matrix, utilizations and
processor-sharing terms are computed element-wise across the batch,
and the linearized overload tail is applied column-wise.  Sums are
accumulated column-by-column in catalog order — the same sequence of
scalar additions the scalar kernel performs — so each batched solution
is *bit-identical* to ``solve_state`` of the same configuration (the
equivalence is enforced by ``tests/test_parallel.py``).

**Host contract.**  Every placement's host must be powered on — this is
enforced by :class:`~repro.core.config.Configuration` itself — and the
returned ``host_utilizations`` contains exactly one entry per powered
host (0.0 for idle hosts).  The solver indexes hosts directly instead
of silently adopting unknown ones, so a configuration that somehow
violated the invariant would fail loudly rather than report power for
hosts the power model never sees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Optional, Sequence

import numpy as np

from repro.core.config import (
    ConfigCodec,
    Configuration,
    VmCatalog,
    array_core_enabled,
)
from repro.perfmodel.lqn import LqnParameters, PerformanceEstimate
from repro.telemetry import phases as _phases
from repro.telemetry import runtime as _telemetry

#: Batched-solve codecs are cached per powered-host universe; a search
#: cycles through few distinct universes, but an unbounded cache could
#: grow across long simulations.
_CODEC_CACHE_LIMIT = 128


@dataclass(frozen=True)
class _BatchArrays:
    """A whole batch encoded numerically: ``[batch, n_vms]`` matrices."""

    codec: ConfigCodec
    caps: np.ndarray
    hosts: np.ndarray


@dataclass(frozen=True)
class TierSolution:
    """Solved terms of one (application, tier) pair.

    ``utilization`` is ``None`` when the tier contributes nothing (no
    replicas placed and no demand routed to it); ``term`` is the
    seconds this tier adds to the application response time, including
    the per-visit network latency (or the overload penalty of a dormant
    tier that still receives work).
    """

    utilization: Optional[float]
    term: float
    saturated: bool
    #: ``(vm_id, served utilization)`` per placed replica, in placement
    #: iteration order.
    vm_utilizations: tuple[tuple[str, float], ...]
    #: ``(host_id, busy CPU contribution)`` per placed replica, in the
    #: same order the full solve accumulates host busy terms.
    host_busy: tuple[tuple[str, float], ...]


@dataclass(frozen=True)
class SolveState:
    """A solved configuration plus the per-tier terms it was built from.

    Feed it back into :meth:`LqnSolver.update_state` together with the
    set of VMs an action touched to obtain the neighbouring
    configuration's estimate at the cost of re-solving one tier.
    """

    configuration: Configuration
    tiers: Mapping[tuple[str, str], TierSolution]
    estimate: PerformanceEstimate


class LqnSolver:
    """Evaluate response times and utilizations for configurations."""

    def __init__(self, catalog: VmCatalog, parameters: LqnParameters) -> None:
        self._catalog = catalog
        self._parameters = parameters
        self._vm_ids = catalog.vm_ids()
        self._vm_slots = {vm_id: i for i, vm_id in enumerate(self._vm_ids)}
        self._codec_cache: dict[frozenset, ConfigCodec] = {}
        self._tier_col_cache: dict[tuple[str, str], np.ndarray] = {}
        # (app, tier) -> vm ids, precomputed once; placement filtering
        # happens per solve call.
        self._tier_vms: dict[tuple[str, str], tuple[str, ...]] = {}
        for descriptor in catalog:
            key = (descriptor.app_name, descriptor.tier_name)
            self._tier_vms.setdefault(key, ())
            self._tier_vms[key] += (descriptor.vm_id,)
        # app -> [(tier name, vm ids)] in catalog order, and the owning
        # tier of each VM — both used to scope incremental re-solves.
        self._app_tiers: dict[str, list[tuple[str, tuple[str, ...]]]] = {}
        self._vm_tier: dict[str, tuple[str, str]] = {}
        for (app_name, tier_name), vm_ids in self._tier_vms.items():
            self._app_tiers.setdefault(app_name, []).append(
                (tier_name, vm_ids)
            )
            for vm_id in vm_ids:
                self._vm_tier[vm_id] = (app_name, tier_name)

    @property
    def parameters(self) -> LqnParameters:
        """The parameter set this solver evaluates with."""
        return self._parameters

    def with_parameters(self, parameters: LqnParameters) -> "LqnSolver":
        """A solver over the same catalog with different parameters."""
        return LqnSolver(self._catalog, parameters)

    # -- full solve -----------------------------------------------------------

    def solve(
        self,
        configuration: Configuration,
        workloads: Mapping[str, float],
        demand_multipliers: Optional[Mapping[tuple[str, str], float]] = None,
    ) -> PerformanceEstimate:
        """Steady-state estimate for ``configuration`` under ``workloads``.

        Parameters
        ----------
        configuration:
            The VM placement and caps to evaluate.  May be an
            intermediate (constraint-violating) configuration; the
            solver only uses caps and placements.
        workloads:
            Application name -> offered request rate (req/s).
        demand_multipliers:
            Optional per-``(app, tier)`` service-demand multipliers;
            the testbed uses these to inject per-interval noise.
        """
        if _telemetry.enabled:
            _telemetry.registry.counter("solver.full_solves").inc()
        tiers = self._solve_tiers(configuration, workloads, demand_multipliers)
        return self._compose(configuration, workloads, tiers)

    def solve_state(
        self,
        configuration: Configuration,
        workloads: Mapping[str, float],
    ) -> SolveState:
        """Like :meth:`solve`, but keep the per-tier decomposition.

        States never carry demand multipliers: they exist for the
        optimizers' incremental hot path, which always evaluates the
        calibrated model.
        """
        if _telemetry.enabled:
            _telemetry.registry.counter("solver.full_solves").inc()
        tiers = self._solve_tiers(configuration, workloads, None)
        return SolveState(
            configuration=configuration,
            tiers=tiers,
            estimate=self._compose(configuration, workloads, tiers),
        )

    # -- incremental solve -----------------------------------------------------

    def update_state(
        self,
        state: SolveState,
        configuration: Configuration,
        workloads: Mapping[str, float],
        changed_vms: Iterable[str],
    ) -> SolveState:
        """Delta solve: re-use ``state``, re-solving only dirty tiers.

        ``configuration`` must differ from ``state.configuration`` only
        in the placements/caps of ``changed_vms`` and in the powered
        host set (power cycles never dirty a tier: an empty host has no
        busy terms), and ``workloads`` must match the vector the state
        was solved under — the caller owns both invariants.  The
        returned estimate is bit-identical to a full ``solve`` of
        ``configuration``.
        """
        dirty: set[tuple[str, str]] = set()
        for vm_id in changed_vms:
            key = self._vm_tier.get(vm_id)
            if key is not None and key[0] in workloads:
                dirty.add(key)
        if _telemetry.enabled:
            registry = _telemetry.registry
            registry.counter("solver.incremental_solves").inc()
            registry.counter("solver.tiers_resolved").inc(len(dirty))
        if not dirty:
            tiers = state.tiers
        else:
            tiers = dict(state.tiers)
            for app_name, tier_name in dirty:
                tiers[(app_name, tier_name)] = self._solve_tier(
                    app_name,
                    tier_name,
                    self._tier_vms[(app_name, tier_name)],
                    configuration,
                    workloads[app_name],
                    None,
                )
        return SolveState(
            configuration=configuration,
            tiers=tiers,
            estimate=self._compose(configuration, workloads, tiers),
        )

    # -- batched solve ---------------------------------------------------------

    def solve_batch(
        self,
        configurations: Sequence[Configuration],
        workloads: Mapping[str, float],
        *,
        use_arrays: Optional[bool] = None,
    ) -> list[SolveState]:
        """Solve many configurations under one workload vector at once.

        The per-tier arithmetic runs vectorized across the batch (see
        the module docstring's *Batched path*); every returned
        :class:`SolveState` is bit-identical to ``solve_state`` of the
        same configuration, so batch results interoperate freely with
        the incremental path (``update_state`` accepts them).

        ``use_arrays`` selects the assembly path: the array-native one
        encodes the whole batch into ``[batch, n_vms]`` cap/host-index
        matrices via :class:`~repro.core.config.ConfigCodec` and slices
        per-tier columns out of them, skipping the per-configuration
        placement-dict copies and per-tier mapping scans of the legacy
        path.  Both feed the identical tier math, so the choice (default:
        ``MISTRAL_ARRAY_CORE``) cannot move a single float.

        Like :meth:`solve_state`, batches never carry demand
        multipliers: they exist for the optimizers' hot path, which
        always evaluates the calibrated model.
        """
        batch = len(configurations)
        if batch == 0:
            return []
        if _telemetry.enabled:
            registry = _telemetry.registry
            registry.counter("solver.batch_solves").inc()
            registry.counter("solver.batch_configs").inc(batch)
        if use_arrays is None:
            use_arrays = array_core_enabled()
        # The whole batched solve is the search's "solve" phase (see
        # repro.telemetry.phases); a no-op when no profile is active.
        with _phases.phase("solve"):
            encoded = (
                self._encode_batch(configurations) if use_arrays else None
            )
            if encoded is None:
                placements = [
                    configuration.placements
                    for configuration in configurations
                ]
            per_config_tiers: list[dict[tuple[str, str], TierSolution]] = [
                {} for _ in range(batch)
            ]
            for app_name, rate in workloads.items():
                for tier_name, vm_ids in self._app_tiers.get(app_name, ()):
                    if encoded is not None:
                        solutions = self._solve_tier_batch_arrays(
                            app_name, tier_name, vm_ids, encoded, rate
                        )
                    else:
                        solutions = self._solve_tier_batch(
                            app_name, tier_name, vm_ids, placements, rate
                        )
                    key = (app_name, tier_name)
                    for tiers, solution in zip(per_config_tiers, solutions):
                        tiers[key] = solution
            return [
                SolveState(
                    configuration=configuration,
                    tiers=tiers,
                    estimate=self._compose(configuration, workloads, tiers),
                )
                for configuration, tiers in zip(
                    configurations, per_config_tiers
                )
            ]

    def _encode_batch(
        self, configurations: Sequence[Configuration]
    ) -> Optional[_BatchArrays]:
        """Encode a batch into cap/host-index matrices, or ``None`` when
        a configuration falls outside the catalog universe (the caller
        then takes the legacy object path)."""
        union: set[str] = set()
        for configuration in configurations:
            union |= configuration.powered_hosts
        key = frozenset(union)
        codec = self._codec_cache.get(key)
        if codec is None:
            if len(self._codec_cache) >= _CODEC_CACHE_LIMIT:
                self._codec_cache.clear()
            codec = ConfigCodec(self._vm_ids, sorted(union))
            self._codec_cache[key] = codec
        batch = len(configurations)
        count = len(self._vm_ids)
        caps = np.zeros((batch, count))
        hosts = np.full((batch, count), -1, dtype=np.int16)
        vm_slots = self._vm_slots
        host_index = codec.host_index
        try:
            for b, configuration in enumerate(configurations):
                for vm_id, placement in configuration.placement_items():
                    slot = vm_slots[vm_id]
                    caps[b, slot] = placement.cpu_cap
                    hosts[b, slot] = host_index[placement.host_id]
        except KeyError:
            return None
        return _BatchArrays(codec, caps, hosts)

    def _tier_cols(self, app_name: str, tier_name: str) -> np.ndarray:
        """Catalog column indices of one tier's VMs (cached)."""
        key = (app_name, tier_name)
        cols = self._tier_col_cache.get(key)
        if cols is None:
            cols = np.array(
                [self._vm_slots[vm_id] for vm_id in self._tier_vms[key]],
                dtype=np.intp,
            )
            self._tier_col_cache[key] = cols
        return cols

    def _solve_tier_batch_arrays(
        self,
        app_name: str,
        tier_name: str,
        vm_ids: tuple[str, ...],
        encoded: _BatchArrays,
        rate: float,
    ) -> list[TierSolution]:
        """Array-native tier assembly: slice the batch matrices instead
        of scanning placement mappings, then run the shared math."""
        cols = self._tier_cols(app_name, tier_name)
        caps = encoded.caps[:, cols]
        host_matrix = encoded.hosts[:, cols]
        placed = host_matrix >= 0
        host_ids = encoded.codec.host_ids
        return self._tier_batch_math(
            app_name,
            tier_name,
            vm_ids,
            caps,
            placed,
            lambda b, j: host_ids[host_matrix[b, j]],
            rate,
        )

    def _solve_tier_batch(
        self,
        app_name: str,
        tier_name: str,
        vm_ids: tuple[str, ...],
        placements: Sequence[Mapping[str, "object"]],
        rate: float,
    ) -> list[TierSolution]:
        """Legacy object-path assembly of one tier's batch matrices."""
        batch = len(placements)
        count = len(vm_ids)
        caps = np.zeros((batch, count))
        placed = np.zeros((batch, count), dtype=bool)
        hosts: list[list[Optional[str]]] = []
        for j, vm_id in enumerate(vm_ids):
            for b, mapping in enumerate(placements):
                placement = mapping.get(vm_id)
                if placement is not None:
                    caps[b, j] = placement.cpu_cap
                    placed[b, j] = True
        for mapping in placements:
            hosts.append(
                [
                    (
                        mapping[vm_id].host_id
                        if vm_id in mapping
                        else None
                    )
                    for vm_id in vm_ids
                ]
            )
        return self._tier_batch_math(
            app_name,
            tier_name,
            vm_ids,
            caps,
            placed,
            lambda b, j: hosts[b][j],
            rate,
        )

    def _tier_batch_math(
        self,
        app_name: str,
        tier_name: str,
        vm_ids: tuple[str, ...],
        caps: np.ndarray,
        placed: np.ndarray,
        host_of: Callable[[int, int], str],
        rate: float,
    ) -> list[TierSolution]:
        """Vectorized ``_solve_tier`` across a batch of configurations.

        Bit-identity with the scalar kernel rests on two facts: numpy's
        element-wise float64 arithmetic is the same IEEE-754 operation
        the interpreter performs on Python floats, and every reduction
        here is accumulated column-by-column in catalog order — adding
        ``0.0`` for unplaced replicas, which is exact — so each batch
        element sees the same sequence of scalar additions the loop in
        ``_solve_tier`` performs.
        """
        params = self._parameters
        batch, count = caps.shape
        demand = params.inflated_demand(app_name, tier_name)
        visits = params.visits(app_name, tier_name)

        # total_cap: column-accumulated in catalog order (0.0 for
        # unplaced replicas — exact, the scalar sum simply skips them).
        total_cap = np.zeros(batch)
        for j in range(count):
            total_cap = total_cap + caps[:, j]

        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            rho = np.where(
                total_cap > 0.0,
                np.divide(rate * demand, total_cap),
                np.inf,
            )
            served_rho = np.minimum(rho, 1.0)
            if demand:
                served_rate = np.minimum(rate, total_cap / demand)
            else:
                served_rate = np.full(batch, rate)

            knee = params.saturation_knee
            slope = params.overload_slope_seconds
            tier_time = np.zeros(batch)
            vm_util_cols: list[np.ndarray] = []
            host_busy_cols: list[np.ndarray] = []
            for j in range(count):
                cap_j = caps[:, j]
                routing = np.where(placed[:, j], cap_j / total_cap, 0.0)
                base = np.divide(demand, cap_j)
                ps = np.where(
                    rho < knee,
                    base / (1.0 - rho),
                    base / (1.0 - knee) + (rho - knee) * slope,
                )
                tier_time = tier_time + np.where(
                    placed[:, j], routing * ps, 0.0
                )
                vm_util_cols.append(served_rho)
                host_busy_cols.append(
                    served_rho * cap_j
                    + routing * served_rate * visits
                    * params.dom0_demand_per_visit
                )

        term = tier_time + visits * params.network_latency_per_visit

        rho_list = rho.tolist()
        term_list = term.tolist()
        served_rho_list = served_rho.tolist()
        busy_lists = [column.tolist() for column in host_busy_cols]
        placed_list = placed.tolist()

        dormant_active = TierSolution(
            utilization=float("inf"),
            term=params.overload_slope_seconds,
            saturated=True,
            vm_utilizations=(),
            host_busy=(),
        )
        dormant_idle = TierSolution(
            utilization=None,
            term=0.0,
            saturated=False,
            vm_utilizations=(),
            host_busy=(),
        )

        solutions: list[TierSolution] = []
        for b in range(batch):
            row = placed_list[b]
            if not any(row):
                solutions.append(
                    dormant_active
                    if demand > 0 and rate > 0
                    else dormant_idle
                )
                continue
            served = served_rho_list[b]
            vm_utilizations = tuple(
                (vm_id, served)
                for j, vm_id in enumerate(vm_ids)
                if row[j]
            )
            host_busy = tuple(
                (host_of(b, j), busy_lists[j][b])
                for j, vm_id in enumerate(vm_ids)
                if row[j]
            )
            solutions.append(
                TierSolution(
                    utilization=rho_list[b],
                    term=term_list[b],
                    saturated=rho_list[b] >= 1.0,
                    vm_utilizations=vm_utilizations,
                    host_busy=host_busy,
                )
            )
        return solutions

    # -- shared kernels --------------------------------------------------------

    def _solve_tiers(
        self,
        configuration: Configuration,
        workloads: Mapping[str, float],
        demand_multipliers: Optional[Mapping[tuple[str, str], float]],
    ) -> dict[tuple[str, str], TierSolution]:
        tiers: dict[tuple[str, str], TierSolution] = {}
        for app_name, rate in workloads.items():
            for tier_name, vm_ids in self._app_tiers.get(app_name, ()):
                multiplier = (
                    demand_multipliers.get((app_name, tier_name), 1.0)
                    if demand_multipliers
                    else None
                )
                tiers[(app_name, tier_name)] = self._solve_tier(
                    app_name,
                    tier_name,
                    vm_ids,
                    configuration,
                    rate,
                    multiplier,
                )
        return tiers

    def _solve_tier(
        self,
        app_name: str,
        tier_name: str,
        vm_ids: tuple[str, ...],
        configuration: Configuration,
        rate: float,
        demand_multiplier: Optional[float],
    ) -> TierSolution:
        """Solve one tier in isolation (the shared full/delta kernel)."""
        params = self._parameters
        placed = [
            (vm_id, configuration.placement_of(vm_id))
            for vm_id in vm_ids
            if configuration.is_placed(vm_id)
        ]
        demand = params.inflated_demand(app_name, tier_name)
        if demand_multiplier is not None:
            demand *= demand_multiplier
        visits = params.visits(app_name, tier_name)

        if not placed:
            # Tier entirely dormant: requests needing it fail to
            # complete; model as full saturation.
            if demand > 0 and rate > 0:
                return TierSolution(
                    utilization=float("inf"),
                    term=params.overload_slope_seconds,
                    saturated=True,
                    vm_utilizations=(),
                    host_busy=(),
                )
            return TierSolution(
                utilization=None,
                term=0.0,
                saturated=False,
                vm_utilizations=(),
                host_busy=(),
            )

        total_cap = sum(placement.cpu_cap for _, placement in placed)
        rho = (rate * demand / total_cap) if total_cap > 0 else float("inf")

        tier_time = 0.0
        served_rho = min(rho, 1.0)
        vm_utilizations: list[tuple[str, float]] = []
        host_busy: list[tuple[str, float]] = []
        for vm_id, placement in placed:
            routing = placement.cpu_cap / total_cap
            base = demand / placement.cpu_cap
            tier_time += routing * _ps_response(
                base,
                rho,
                params.saturation_knee,
                params.overload_slope_seconds,
            )
            vm_utilizations.append((vm_id, served_rho))
            # CPU actually burned: utilization of the cap, plus
            # the Dom-0 work for the visits this replica serves.
            served_rate = min(rate, total_cap / demand if demand else rate)
            host_busy.append(
                (
                    placement.host_id,
                    served_rho * placement.cpu_cap
                    + routing * served_rate * visits
                    * params.dom0_demand_per_visit,
                )
            )
        return TierSolution(
            utilization=rho,
            term=tier_time + visits * params.network_latency_per_visit,
            saturated=rho >= 1.0,
            vm_utilizations=tuple(vm_utilizations),
            host_busy=tuple(host_busy),
        )

    def _compose(
        self,
        configuration: Configuration,
        workloads: Mapping[str, float],
        tiers: Mapping[tuple[str, str], TierSolution],
    ) -> PerformanceEstimate:
        """Assemble an estimate from per-tier solutions.

        Accumulation order (apps in workload order, tiers in catalog
        order, replicas in placement order) matches the historical
        monolithic solve exactly, so composed estimates are bit-stable
        regardless of which tiers were delta-solved.
        """
        params = self._parameters
        estimate = PerformanceEstimate()
        # Every powered host gets a busy entry — hosts carrying no VM
        # idle at 0.0.  Placements on unpowered hosts cannot exist (the
        # Configuration invariant), so busy terms index directly.
        host_busy: dict[str, float] = {
            host_id: 0.0 for host_id in configuration.powered_hosts
        }

        for app_name, rate in workloads.items():
            if rate < 0:
                raise ValueError(f"negative workload for {app_name!r}")
            app_tiers = self._app_tiers.get(app_name)
            if not app_tiers:
                raise KeyError(f"no VMs in catalog for application {app_name!r}")
            response = params.network_latency_per_request
            saturated = False
            for tier_name, _ in app_tiers:
                solution = tiers[(app_name, tier_name)]
                if solution.utilization is not None:
                    estimate.tier_utilizations[(app_name, tier_name)] = (
                        solution.utilization
                    )
                response += solution.term
                if solution.saturated:
                    saturated = True
                for vm_id, utilization in solution.vm_utilizations:
                    estimate.vm_utilizations[vm_id] = utilization
                for host_id, busy in solution.host_busy:
                    host_busy[host_id] += busy

            estimate.response_times[app_name] = response
            if saturated:
                estimate.saturated_apps.add(app_name)

        estimate.host_utilizations = {
            host_id: min(busy, 1.0) for host_id, busy in host_busy.items()
        }
        return estimate

    def app_utilization(
        self, estimate: PerformanceEstimate, app_name: str
    ) -> float:
        """Total host CPU attributable to one app's tiers (for Fig. 5b).

        Sums, over the app's tiers, utilization x allocated cap — i.e.
        the busy CPU fraction the application consumes across hosts.
        """
        total = 0.0
        for (name, tier_name), rho in estimate.tier_utilizations.items():
            if name != app_name or rho == float("inf"):
                continue
            for vm_id in self._tier_vms[(name, tier_name)]:
                util = estimate.vm_utilizations.get(vm_id)
                if util is not None:
                    total += util
        return total


def _ps_response(base: float, rho: float, knee: float, slope: float) -> float:
    """Processor-sharing residence time with linearized overload tail.

    ``base`` is the no-contention service time ``D / c``; below the
    knee the classic ``base / (1 - rho)`` applies, above it the curve
    continues linearly with the given slope so overload ranks sanely.
    """
    if rho < knee:
        return base / (1.0 - rho)
    knee_value = base / (1.0 - knee)
    return knee_value + (rho - knee) * slope
