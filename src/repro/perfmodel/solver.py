"""Approximate solver for the layered queueing network.

Each application tier is served by its active replicas; replica ``j``
is a VM with CPU cap ``c_j`` modeled as a processor-sharing queue of
capacity ``c_j``.  Incoming work is balanced across replicas in
proportion to their caps (the paper's front ends distribute requests to
replicas), which makes the per-replica utilization uniform:

    rho = lambda * D / sum_j c_j

with ``D`` the mix-weighted, virtualization-inflated CPU demand per
request at the tier.  The processor-sharing residence time per request
routed to replica ``j`` is ``(D / c_j) / (1 - rho)``; the tier response
time aggregates over the cap-proportional routing probabilities, and
the end-to-end response time adds tier times plus network latency per
request and per synchronous call.

Beyond the saturation knee the hyperbolic waiting curve is linearized
(slope ``overload_slope_seconds``) so that overloaded configurations
get a finite but strongly penalized response time — necessary for the
optimizers, which must be able to rank infeasible-but-improving moves.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.core.config import Configuration, VmCatalog
from repro.perfmodel.lqn import LqnParameters, PerformanceEstimate


class LqnSolver:
    """Evaluate response times and utilizations for configurations."""

    def __init__(self, catalog: VmCatalog, parameters: LqnParameters) -> None:
        self._catalog = catalog
        self._parameters = parameters
        # (app, tier) -> vm ids, precomputed once; placement filtering
        # happens per solve call.
        self._tier_vms: dict[tuple[str, str], tuple[str, ...]] = {}
        for descriptor in catalog:
            key = (descriptor.app_name, descriptor.tier_name)
            self._tier_vms.setdefault(key, ())
            self._tier_vms[key] += (descriptor.vm_id,)

    @property
    def parameters(self) -> LqnParameters:
        """The parameter set this solver evaluates with."""
        return self._parameters

    def with_parameters(self, parameters: LqnParameters) -> "LqnSolver":
        """A solver over the same catalog with different parameters."""
        return LqnSolver(self._catalog, parameters)

    def solve(
        self,
        configuration: Configuration,
        workloads: Mapping[str, float],
        demand_multipliers: Optional[Mapping[tuple[str, str], float]] = None,
    ) -> PerformanceEstimate:
        """Steady-state estimate for ``configuration`` under ``workloads``.

        Parameters
        ----------
        configuration:
            The VM placement and caps to evaluate.  May be an
            intermediate (constraint-violating) configuration; the
            solver only uses caps and placements.
        workloads:
            Application name -> offered request rate (req/s).
        demand_multipliers:
            Optional per-``(app, tier)`` service-demand multipliers;
            the testbed uses these to inject per-interval noise.
        """
        params = self._parameters
        estimate = PerformanceEstimate()
        host_busy: dict[str, float] = {
            host_id: 0.0 for host_id in configuration.powered_hosts
        }

        for app_name, rate in workloads.items():
            if rate < 0:
                raise ValueError(f"negative workload for {app_name!r}")
            response = params.network_latency_per_request
            saturated = False
            tiers = [
                (tier_key[1], vm_ids)
                for tier_key, vm_ids in self._tier_vms.items()
                if tier_key[0] == app_name
            ]
            if not tiers:
                raise KeyError(f"no VMs in catalog for application {app_name!r}")

            for tier_name, vm_ids in tiers:
                placed = [
                    (vm_id, configuration.placement_of(vm_id))
                    for vm_id in vm_ids
                    if configuration.is_placed(vm_id)
                ]
                demand = params.inflated_demand(app_name, tier_name)
                if demand_multipliers:
                    demand *= demand_multipliers.get((app_name, tier_name), 1.0)
                visits = params.visits(app_name, tier_name)

                if not placed:
                    # Tier entirely dormant: requests needing it fail to
                    # complete; model as full saturation.
                    if demand > 0 and rate > 0:
                        estimate.tier_utilizations[(app_name, tier_name)] = (
                            float("inf")
                        )
                        response += params.overload_slope_seconds
                        saturated = True
                    continue

                total_cap = sum(placement.cpu_cap for _, placement in placed)
                rho = (rate * demand / total_cap) if total_cap > 0 else float("inf")
                estimate.tier_utilizations[(app_name, tier_name)] = rho
                if rho >= 1.0:
                    saturated = True

                tier_time = 0.0
                served_rho = min(rho, 1.0)
                for vm_id, placement in placed:
                    routing = placement.cpu_cap / total_cap
                    base = demand / placement.cpu_cap
                    tier_time += routing * _ps_response(
                        base,
                        rho,
                        params.saturation_knee,
                        params.overload_slope_seconds,
                    )
                    estimate.vm_utilizations[vm_id] = served_rho
                    host_busy.setdefault(placement.host_id, 0.0)
                    # CPU actually burned: utilization of the cap, plus
                    # the Dom-0 work for the visits this replica serves.
                    served_rate = min(rate, total_cap / demand if demand else rate)
                    host_busy[placement.host_id] += (
                        served_rho * placement.cpu_cap
                        + routing * served_rate * visits
                        * params.dom0_demand_per_visit
                    )
                response += tier_time + visits * params.network_latency_per_visit

            estimate.response_times[app_name] = response
            if saturated:
                estimate.saturated_apps.add(app_name)

        estimate.host_utilizations = {
            host_id: min(busy, 1.0) for host_id, busy in host_busy.items()
        }
        return estimate

    def app_utilization(
        self, estimate: PerformanceEstimate, app_name: str
    ) -> float:
        """Total host CPU attributable to one app's tiers (for Fig. 5b).

        Sums, over the app's tiers, utilization x allocated cap — i.e.
        the busy CPU fraction the application consumes across hosts.
        """
        total = 0.0
        for (name, tier_name), rho in estimate.tier_utilizations.items():
            if name != app_name or rho == float("inf"):
                continue
            for vm_id in self._tier_vms[(name, tier_name)]:
                util = estimate.vm_utilizations.get(vm_id)
                if util is not None:
                    total += util
        return total


def _ps_response(base: float, rho: float, knee: float, slope: float) -> float:
    """Processor-sharing residence time with linearized overload tail.

    ``base`` is the no-contention service time ``D / c``; below the
    knee the classic ``base / (1 - rho)`` applies, above it the curve
    continues linearly with the given slope so overload ranks sanely.
    """
    if rho < knee:
        return base / (1.0 - rho)
    knee_value = base / (1.0 - knee)
    return knee_value + (rho - knee) * slope
