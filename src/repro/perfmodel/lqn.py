"""LQN model structures.

:class:`LqnParameters` is the controller-facing parameterization of the
layered queueing network: mix-weighted mean CPU demand and visit count
per application tier, the Xen virtualization overhead, the Dom-0 demand
per tier visit, and network latencies.  The same structure is used by
the testbed with its hidden *true* parameters, and by the controller
with the calibrated (noisy) copy produced by the offline measurement
phase — the gap between the two is exactly the model error the paper
quantifies in Fig. 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Mapping

from repro.apps.application import Application


@dataclass(frozen=True)
class LqnParameters:
    """Parameters of the layered queueing model.

    Attributes
    ----------
    tier_demands:
        ``(app, tier) ->`` mix-weighted mean CPU seconds per application
        request spent at that tier (at full CPU speed, before the
        virtualization overhead inflation).
    tier_visits:
        ``(app, tier) ->`` mix-weighted mean synchronous calls per
        application request into that tier.
    virt_overhead:
        Fractional CPU inflation imposed by Xen on guest execution
        (paper §III-A: "models also account for the resource sharing
        overhead imposed by Xen").
    dom0_demand_per_visit:
        CPU seconds of Dom-0 (I/O handling) work per tier visit served
        on a host; contributes to host utilization and power.
    network_latency_per_request:
        Fixed client-side latency per request (LAN round trip).
    network_latency_per_visit:
        Latency added per inter-tier synchronous call.
    saturation_knee:
        Utilization at which the processor-sharing waiting-time curve is
        linearized to keep the model finite under overload.
    overload_slope_seconds:
        Additional seconds of response time per unit utilization beyond
        the knee; approximates backlog growth over a monitoring window.
    """

    tier_demands: Mapping[tuple[str, str], float]
    tier_visits: Mapping[tuple[str, str], float]
    virt_overhead: float = 0.08
    dom0_demand_per_visit: float = 0.0004
    network_latency_per_request: float = 0.004
    network_latency_per_visit: float = 0.0008
    saturation_knee: float = 0.97
    overload_slope_seconds: float = 40.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "tier_demands", dict(self.tier_demands))
        object.__setattr__(self, "tier_visits", dict(self.tier_visits))
        for key, value in self.tier_demands.items():
            if value < 0:
                raise ValueError(f"negative demand for {key}: {value!r}")
        if not 0.0 < self.saturation_knee < 1.0:
            raise ValueError("saturation_knee must be in (0, 1)")
        if self.virt_overhead < 0:
            raise ValueError("virt_overhead must be >= 0")

    def demand(self, app_name: str, tier_name: str) -> float:
        """Mean CPU seconds per request at one tier (0 if unknown)."""
        return self.tier_demands.get((app_name, tier_name), 0.0)

    def visits(self, app_name: str, tier_name: str) -> float:
        """Mean visits per request at one tier (0 if unknown)."""
        return self.tier_visits.get((app_name, tier_name), 0.0)

    def inflated_demand(self, app_name: str, tier_name: str) -> float:
        """Demand including the Xen virtualization overhead."""
        return self.demand(app_name, tier_name) * (1.0 + self.virt_overhead)

    def scaled(self, factors: Mapping[tuple[str, str], float]) -> "LqnParameters":
        """Copy with per-(app, tier) demand multipliers applied."""
        demands = {
            key: value * factors.get(key, 1.0)
            for key, value in self.tier_demands.items()
        }
        return replace(self, tier_demands=demands)


@dataclass
class PerformanceEstimate:
    """Solver output for one (configuration, workload) pair."""

    response_times: dict[str, float] = field(default_factory=dict)
    vm_utilizations: dict[str, float] = field(default_factory=dict)
    host_utilizations: dict[str, float] = field(default_factory=dict)
    tier_utilizations: dict[tuple[str, str], float] = field(default_factory=dict)
    saturated_apps: set[str] = field(default_factory=set)

    def response_time(self, app_name: str) -> float:
        """Mean response time of an application in seconds."""
        return self.response_times[app_name]

    def total_utilization(self) -> float:
        """Sum of host utilizations (the paper's Fig. 5b 'utilization')."""
        return sum(self.host_utilizations.values())


def parameters_for(
    applications: Iterable[Application], **overrides: float
) -> LqnParameters:
    """Exact LQN parameters derived from application definitions.

    These are the *true* parameters the simulated testbed runs on; the
    controller never sees them directly but only through the offline
    calibration measurements (see
    :func:`repro.perfmodel.calibration.calibrate_parameters`).
    """
    demands: dict[tuple[str, str], float] = {}
    visits: dict[tuple[str, str], float] = {}
    for app in applications:
        for tier in app.tiers:
            demands[(app.name, tier.name)] = app.mean_tier_demand(tier.name)
            visits[(app.name, tier.name)] = app.mean_tier_visits(tier.name)
    return LqnParameters(tier_demands=demands, tier_visits=visits, **overrides)
