"""Offline calibration of the performance model (paper §III-A).

The paper instruments each tier with system-call interception and
measures per-transaction service times offline.  Here the role of the
running system is played by the simulated testbed's *true* parameters:
the calibration probes the true per-tier demands through repeated noisy
measurements and averages them, so the controller's model parameters
carry a small, realistic estimation error — which is what produces the
~5% model error the paper reports in Fig. 5.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.perfmodel.lqn import LqnParameters


def calibrate_parameters(
    true_parameters: LqnParameters,
    rng: np.random.Generator,
    measurement_noise: float = 0.05,
    repetitions: int = 12,
) -> LqnParameters:
    """Estimate LQN parameters from noisy offline measurements.

    Each (application, tier) demand is observed ``repetitions`` times
    with multiplicative log-normal noise of relative magnitude
    ``measurement_noise`` (message-timestamp jitter, scheduling noise)
    and the sample mean becomes the model parameter.  Visit counts are
    derived from call graphs and are measured exactly.

    Parameters
    ----------
    true_parameters:
        The testbed's hidden ground-truth parameters.
    rng:
        Random stream dedicated to calibration.
    measurement_noise:
        Relative standard deviation of a single demand measurement.
    repetitions:
        Number of offline measurement runs averaged per parameter.
    """
    if measurement_noise < 0:
        raise ValueError("measurement_noise must be >= 0")
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")

    sigma = float(np.sqrt(np.log(1.0 + measurement_noise**2)))
    demands = {}
    for key, true_demand in true_parameters.tier_demands.items():
        if true_demand == 0.0:
            demands[key] = 0.0
            continue
        samples = true_demand * np.exp(
            rng.normal(-0.5 * sigma**2, sigma, size=repetitions)
        )
        demands[key] = float(np.mean(samples))

    return replace(true_parameters, tier_demands=demands)
