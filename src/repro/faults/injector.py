"""The seeded fault injector.

One :class:`FaultInjector` owns its own random generator, seeded from
:attr:`FaultConfig.seed` and independent of every simulation stream —
attaching an injector to a run never changes the draws the testbed's
own noise models consume, and two runs with the same fault seed inject
the exact same fault schedule.

Three fault surfaces:

- **action faults** — each action execution attempt may *fail*
  (abandoned mid-flight after ``fail_fraction`` of its duration, the
  configuration change never lands) or *stall* (its duration is
  multiplied by ``stall_factor``, which may push it past the recovery
  policy's timeout).  Probabilities are per action family, plus a
  scripted list for deterministic scenarios ("fail the first two
  migrations");
- **host crashes** — scripted ``(time, host_id)`` events; the cluster
  strands the VMs placed there and aborts any in-flight plan;
- **monitoring faults** — a sample fed to the controllers may be
  *dropped* (the controllers never see this interval) or *stale* (they
  see the previous interval's workloads), starving the workload bands
  and the ARMA stability filter of fresh data;
- **infrastructure faults** (chaos mode) — the controller's own
  machinery misbehaves: a pool worker process is killed mid-round, the
  shared-memory configuration channel is corrupted (flipped payload
  byte or torn sequence number), a checkpoint write lands corrupt on
  disk, the LQN solver raises mid-evaluation, or an anytime walker
  stalls long enough to trip the search watchdog.  Each family has its
  own probability knob and, like every other surface, consumes no
  randomness while its knob is zero.

Example — a config that fails the first two migration attempts and
crashes one host, with no random faults at all::

    >>> config = FaultConfig(
    ...     seed=7,
    ...     scripted=(
    ...         ScriptedActionFault(kind="migrate", occurrence=0),
    ...         ScriptedActionFault(kind="migrate", occurrence=1),
    ...     ),
    ...     host_crashes=(HostCrash(time=7200.0, host_id="host-3"),),
    ... )
    >>> config.is_inert()
    False
    >>> FaultConfig().is_inert()
    True
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

import numpy as np


@dataclass(frozen=True)
class HostCrash:
    """One scripted host crash: ``host_id`` dies at simulation ``time``."""

    time: float
    host_id: str

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("crash time must be >= 0")


@dataclass(frozen=True)
class ControllerCrash:
    """One scripted controller crash: a controller process dies at
    simulation ``time`` and restarts ``restart_delay`` seconds later,
    warm-starting from its last checkpoint (see
    :mod:`repro.checkpoint`).  ``controller`` names the victim —
    ``"level2"`` (the only crash surface a hierarchy supports: its
    1st-level controllers keep planning their bands standalone while
    the 2nd level is down).
    """

    time: float
    controller: str = "level2"
    restart_delay: float = 240.0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("crash time must be >= 0")
        if self.restart_delay <= 0:
            raise ValueError("restart_delay must be positive")


@dataclass(frozen=True)
class ScriptedActionFault:
    """Deterministically fault the Nth execution attempt of one family.

    ``occurrence`` counts *attempts* of the action family across the
    whole run, starting at 0 — scripting occurrences 0 and 1 of
    ``"migrate"`` fails the first migration twice (its first try and
    its first retry).
    """

    kind: str
    occurrence: int
    mode: str = "fail"

    def __post_init__(self) -> None:
        if self.occurrence < 0:
            raise ValueError("occurrence must be >= 0")
        if self.mode not in ("fail", "stall"):
            raise ValueError(f"unknown fault mode {self.mode!r}")


@dataclass(frozen=True)
class ActionFault:
    """The injector's verdict for one action execution attempt."""

    mode: str  # "fail" | "stall"
    stall_factor: float = 1.0


class InjectedSolverFault(RuntimeError):
    """An injected LQN-solver failure (chaos mode).

    Raised from inside candidate evaluation to simulate the performance
    model blowing up mid-search; the hardened search survives it by
    falling back to the exact A* incumbent path.
    """


@dataclass
class FaultStats:
    """Counts of every fault the injector actually injected."""

    action_failures: int = 0
    action_stalls: int = 0
    host_crashes: int = 0
    samples_dropped: int = 0
    samples_stale: int = 0
    controller_crashes: int = 0
    # -- chaos-mode infrastructure faults --
    worker_kills: int = 0
    shm_corruptions: int = 0
    checkpoint_corruptions: int = 0
    solver_exceptions: int = 0
    strategy_stalls: int = 0

    def total(self) -> int:
        """All injected faults."""
        return (
            self.action_failures
            + self.action_stalls
            + self.host_crashes
            + self.samples_dropped
            + self.samples_stale
            + self.controller_crashes
            + self.worker_kills
            + self.shm_corruptions
            + self.checkpoint_corruptions
            + self.solver_exceptions
            + self.strategy_stalls
        )


@dataclass(frozen=True)
class FaultConfig:
    """Everything the injector may do, with every knob defaulted off.

    A default-constructed config injects nothing (:meth:`is_inert`),
    and inert surfaces consume no randomness — adding a probability to
    one surface leaves the draws of the others unchanged.
    """

    #: Seed of the injector's private random generator.
    seed: int = 0
    #: Fallback per-attempt failure probability for action families not
    #: listed in ``action_fail_probability``.
    default_fail_probability: float = 0.0
    #: Fallback per-attempt stall probability.
    default_stall_probability: float = 0.0
    #: Per action family (``"migrate"``, ``"add_replica"``, ...)
    #: failure probability per execution attempt.
    action_fail_probability: Mapping[str, float] = field(default_factory=dict)
    #: Per action family stall probability per execution attempt.
    action_stall_probability: Mapping[str, float] = field(default_factory=dict)
    #: Duration multiplier applied to stalled actions.
    stall_factor: float = 4.0
    #: Fraction of the (possibly stalled) duration after which a failed
    #: action surfaces its failure; its transient RT/power footprint
    #: applies over that window even though no configuration change
    #: lands.
    fail_fraction: float = 0.5
    #: Deterministic per-occurrence faults, checked before the dice.
    scripted: tuple[ScriptedActionFault, ...] = ()
    #: Scripted host crashes.
    host_crashes: tuple[HostCrash, ...] = ()
    #: Scripted controller crashes (requires a failover-capable
    #: controller, i.e. a hierarchy; see :class:`ControllerCrash`).
    controller_crashes: tuple[ControllerCrash, ...] = ()
    #: Probability a monitoring sample never reaches the controllers.
    sample_drop_probability: float = 0.0
    #: Probability the controllers see the previous sample's workloads.
    sample_stale_probability: float = 0.0
    #: Per executor round: probability one pool worker process is
    #: SIGKILLed before the round dispatches (process executor only).
    worker_kill_probability: float = 0.0
    #: Per shared-memory publish: probability the published snapshot is
    #: corrupted before workers read it.
    shm_corruption_probability: float = 0.0
    #: How shared-memory corruption manifests: ``"flip"`` (a payload
    #: byte is flipped — checksum mismatch) or ``"torn"`` (the sequence
    #: number advances without the payload — torn-write tripwire).
    shm_corruption_mode: str = "flip"
    #: Per checkpoint save: probability the bytes written to disk are
    #: corrupted (one flipped byte of the serialized envelope).
    checkpoint_corruption_probability: float = 0.0
    #: Per candidate steady-state evaluation inside the anytime
    #: walkers: probability the solver raises
    #: :class:`InjectedSolverFault`.
    solver_exception_probability: float = 0.0
    #: Per walker iteration: probability the strategy stalls for
    #: ``strategy_stall_seconds`` of real wall time (long enough to
    #: trip a configured watchdog deadline).
    strategy_stall_probability: float = 0.0
    #: Duration of one injected strategy stall, in wall seconds.
    strategy_stall_seconds: float = 0.1

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "action_fail_probability", dict(self.action_fail_probability)
        )
        object.__setattr__(
            self,
            "action_stall_probability",
            dict(self.action_stall_probability),
        )
        object.__setattr__(self, "scripted", tuple(self.scripted))
        object.__setattr__(self, "host_crashes", tuple(self.host_crashes))
        object.__setattr__(
            self, "controller_crashes", tuple(self.controller_crashes)
        )
        for name in (
            "default_fail_probability",
            "default_stall_probability",
            "sample_drop_probability",
            "sample_stale_probability",
            "worker_kill_probability",
            "shm_corruption_probability",
            "checkpoint_corruption_probability",
            "solver_exception_probability",
            "strategy_stall_probability",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value!r}")
        for mapping in (
            self.action_fail_probability,
            self.action_stall_probability,
        ):
            for kind, value in mapping.items():
                if not 0.0 <= value <= 1.0:
                    raise ValueError(
                        f"probability for {kind!r} must be in [0, 1]"
                    )
        if self.sample_drop_probability + self.sample_stale_probability > 1.0:
            raise ValueError("drop + stale probability must be <= 1")
        if self.stall_factor < 1.0:
            raise ValueError("stall_factor must be >= 1")
        if not 0.0 < self.fail_fraction <= 1.0:
            raise ValueError("fail_fraction must be in (0, 1]")
        if self.shm_corruption_mode not in ("flip", "torn"):
            raise ValueError(
                f"unknown shm corruption mode {self.shm_corruption_mode!r}"
            )
        if self.strategy_stall_seconds <= 0:
            raise ValueError("strategy_stall_seconds must be positive")

    def fail_probability(self, kind: str) -> float:
        """Failure probability for one action family."""
        return self.action_fail_probability.get(
            kind, self.default_fail_probability
        )

    def stall_probability(self, kind: str) -> float:
        """Stall probability for one action family."""
        return self.action_stall_probability.get(
            kind, self.default_stall_probability
        )

    def is_inert(self) -> bool:
        """Whether this config can never inject anything."""
        return (
            self.default_fail_probability == 0.0
            and self.default_stall_probability == 0.0
            and not any(self.action_fail_probability.values())
            and not any(self.action_stall_probability.values())
            and not self.scripted
            and not self.host_crashes
            and not self.controller_crashes
            and self.sample_drop_probability == 0.0
            and self.sample_stale_probability == 0.0
            and self.worker_kill_probability == 0.0
            and self.shm_corruption_probability == 0.0
            and self.checkpoint_corruption_probability == 0.0
            and self.solver_exception_probability == 0.0
            and self.strategy_stall_probability == 0.0
        )


class FaultInjector:
    """Draws deterministic fault verdicts from one seeded generator."""

    def __init__(self, config: Optional[FaultConfig] = None) -> None:
        self.config = config or FaultConfig()
        self._rng = np.random.default_rng(self.config.seed)
        #: Execution attempts seen so far, per action family (the index
        #: :class:`ScriptedActionFault` occurrences refer to).
        self._occurrences: dict[str, int] = {}
        self._last_sample: Optional[dict[str, float]] = None
        self.stats = FaultStats()

    # -- action faults ---------------------------------------------------

    def action_fault(self, action) -> Optional[ActionFault]:
        """Verdict for one execution attempt of ``action``.

        Consumes one random draw only when the action's family has a
        non-zero fault probability, so an inert config (or a family
        with every knob at zero) leaves the generator untouched.
        """
        kind = action.kind
        index = self._occurrences.get(kind, 0)
        self._occurrences[kind] = index + 1

        for scripted in self.config.scripted:
            if scripted.kind == kind and scripted.occurrence == index:
                return self._record(
                    ActionFault(scripted.mode, self.config.stall_factor)
                )

        fail = self.config.fail_probability(kind)
        stall = self.config.stall_probability(kind)
        if fail <= 0.0 and stall <= 0.0:
            return None
        draw = float(self._rng.random())
        if draw < fail:
            return self._record(ActionFault("fail"))
        if draw < fail + stall:
            return self._record(ActionFault("stall", self.config.stall_factor))
        return None

    def _record(self, fault: ActionFault) -> ActionFault:
        if fault.mode == "fail":
            self.stats.action_failures += 1
        else:
            self.stats.action_stalls += 1
        return fault

    # -- monitoring faults -----------------------------------------------

    def perturb_sample(
        self, workloads: Mapping[str, float]
    ) -> tuple[Optional[dict[str, float]], Optional[str]]:
        """What the controllers see for one monitoring sample.

        Returns ``(workloads, fault)`` where ``workloads`` is ``None``
        when the sample was dropped (the controllers are not invoked at
        all this interval) and ``fault`` is ``None``, ``"dropped"``, or
        ``"stale"``.  A stale sample replays the last *delivered*
        workloads; before any sample has been delivered, staleness
        degrades to a clean delivery.
        """
        drop = self.config.sample_drop_probability
        stale = self.config.sample_stale_probability
        if drop <= 0.0 and stale <= 0.0:
            return dict(workloads), None
        draw = float(self._rng.random())
        if draw < drop:
            self.stats.samples_dropped += 1
            return None, "dropped"
        if draw < drop + stale and self._last_sample is not None:
            self.stats.samples_stale += 1
            return dict(self._last_sample), "stale"
        self._last_sample = dict(workloads)
        return dict(workloads), None

    # -- host crashes ----------------------------------------------------

    def note_host_crash(self) -> None:
        """Count one executed host crash (called by the cluster)."""
        self.stats.host_crashes += 1

    def note_controller_crash(self) -> None:
        """Count one executed controller crash (called by the testbed)."""
        self.stats.controller_crashes += 1

    # -- chaos-mode infrastructure faults --------------------------------
    #
    # Each verdict consumes randomness only when its family's knob is
    # non-zero, preserving the draw-isolation contract: attaching an
    # inert injector (or zeroing one family) never shifts the fault
    # schedule of the others.

    def worker_kill(self) -> bool:
        """Whether to kill one pool worker before this executor round."""
        probability = self.config.worker_kill_probability
        if probability <= 0.0:
            return False
        if float(self._rng.random()) < probability:
            self.stats.worker_kills += 1
            return True
        return False

    def shm_corruption(self) -> Optional[str]:
        """Corruption verdict for one shared-memory publish.

        Returns the corruption mode (``"flip"`` | ``"torn"``) or
        ``None`` for a clean publish.
        """
        probability = self.config.shm_corruption_probability
        if probability <= 0.0:
            return None
        if float(self._rng.random()) < probability:
            self.stats.shm_corruptions += 1
            return self.config.shm_corruption_mode
        return None

    def corrupt_checkpoint(self, payload: str) -> str:
        """Possibly corrupt one serialized checkpoint envelope.

        Returns the payload as left on disk: unchanged for a clean
        save, or with one byte flipped at an injector-chosen offset —
        simulated post-write media rot that the store's next ``load``
        must detect, quarantine, and roll back from (older generations
        are never touched by the rot).
        """
        probability = self.config.checkpoint_corruption_probability
        if probability <= 0.0 or not payload:
            return payload
        if float(self._rng.random()) >= probability:
            return payload
        self.stats.checkpoint_corruptions += 1
        index = int(self._rng.integers(0, len(payload)))
        flipped = chr((ord(payload[index]) ^ 0x01) & 0x7F)
        return payload[:index] + flipped + payload[index + 1 :]

    def solver_exception(self) -> bool:
        """Whether this candidate evaluation's solver call blows up."""
        probability = self.config.solver_exception_probability
        if probability <= 0.0:
            return False
        if float(self._rng.random()) < probability:
            self.stats.solver_exceptions += 1
            return True
        return False

    def strategy_stall(self) -> float:
        """Stall seconds for one walker iteration (0.0 = no stall)."""
        probability = self.config.strategy_stall_probability
        if probability <= 0.0:
            return 0.0
        if float(self._rng.random()) < probability:
            self.stats.strategy_stalls += 1
            return self.config.strategy_stall_seconds
        return 0.0
