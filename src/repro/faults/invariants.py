"""Post-decision invariant checker (chaos mode).

The chaos harness injects faults into the controller's own machinery —
worker pools, the shared-memory channel, checkpoints, the walkers — and
the hardening layers are supposed to absorb them without ever letting a
corrupted intermediate state leak into a committed decision.  This
module is the referee: after every decision it re-derives, from first
principles, the properties that must hold no matter which fault path
the search travelled.

Four invariant families (DESIGN.md §10):

- **allocation** — the decided configuration satisfies every
  :class:`~repro.core.config.ConstraintLimits` rule (CPU-cap sum per
  host, per-host VM count, guest memory, minimum cap) and places VMs
  only on powered hosts;
- **replica-0** — each application tier with any active replica keeps
  its first replica placed: the paper's adaptation actions scale tiers
  by adding/removing the *highest* replica, so a missing replica 0 with
  higher replicas active means a plan was applied out of order or
  half-rolled-back;
- **Eq. 3 conservation** — the decision provenance's utility breakdown
  satisfies ``steady + transient == total`` (float tolerance): a
  corrupted evaluation path cannot invent or lose utility between the
  terms and the committed total;
- **codec round-trip** — encoding the decided configuration through
  :class:`~repro.core.config.ConfigCodec` and decoding it back is the
  identity, so the array core and the shared-memory channel would
  transport this exact decision bit-identically (skipped when the
  configuration leaves the codec universe, which is the documented
  object-path fallback).

Violations are returned as data and, when telemetry is enabled, emitted
as ``chaos.invariant_violation`` events with a
``chaos.invariant_violations`` counter — the soak runner fails hard on
either.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.telemetry import runtime as _telemetry

#: Tolerance of the Eq. 3 conservation check, matching the float slack
#: the provenance layer itself allows between replayed terms and the
#: search's committed vertex utility.
CONSERVATION_TOLERANCE = 1e-6


@dataclass(frozen=True)
class InvariantViolation:
    """One violated invariant: which rule, and the evidence."""

    name: str  # "allocation" | "replica_zero" | "conservation" | "codec"
    detail: str


def _allocation_violations(
    configuration, catalog, limits
) -> list[InvariantViolation]:
    problems = [
        InvariantViolation("allocation", detail)
        for detail in configuration.violations(catalog, limits)
    ]
    # ``Configuration.__init__`` already rejects placements on unpowered
    # hosts, but chaos mode re-checks it anyway: a corrupt decode path
    # could in principle resurrect a stale powered set through pickling,
    # which bypasses ``__init__``.
    powered = configuration.powered_hosts
    for vm_id, placement in configuration.placement_items():
        if placement.host_id not in powered:
            problems.append(
                InvariantViolation(
                    "allocation",
                    f"VM {vm_id} placed on unpowered host {placement.host_id}",
                )
            )
    return problems


def _replica_zero_violations(configuration, catalog) -> list[InvariantViolation]:
    problems: list[InvariantViolation] = []
    seen: set[tuple[str, str]] = set()
    for descriptor in catalog:
        key = (descriptor.app_name, descriptor.tier_name)
        if key in seen:
            continue
        seen.add(key)
        members = catalog.for_tier(*key)
        if not members:
            continue
        placed = [m.vm_id for m in members if configuration.is_placed(m.vm_id)]
        if placed and not configuration.is_placed(members[0].vm_id):
            problems.append(
                InvariantViolation(
                    "replica_zero",
                    f"tier {key[0]}/{key[1]}: replicas {placed} active "
                    f"but replica 0 ({members[0].vm_id}) is not placed",
                )
            )
    return problems


def _conservation_violations(
    utility: Optional[Mapping[str, float]],
) -> list[InvariantViolation]:
    if not utility:
        return []
    try:
        steady = float(utility["steady"])
        transient = float(utility["transient"])
        total = float(utility["total"])
    except (KeyError, TypeError, ValueError):
        return [
            InvariantViolation(
                "conservation",
                f"utility breakdown missing Eq. 3 terms: {dict(utility)!r}",
            )
        ]
    scale = max(1.0, abs(steady), abs(transient), abs(total))
    if abs(steady + transient - total) > CONSERVATION_TOLERANCE * scale:
        return [
            InvariantViolation(
                "conservation",
                f"steady {steady!r} + transient {transient!r} != "
                f"total {total!r}",
            )
        ]
    return []


def _codec_violations(
    configuration, catalog, host_ids: Optional[Sequence[str]]
) -> list[InvariantViolation]:
    if not host_ids:
        return []
    from repro.core.config import ConfigCodec

    try:
        codec = ConfigCodec(catalog.vm_ids(), host_ids)
    except ValueError:
        return []  # universe too large for the codec — documented fallback
    try:
        decoded = codec.decode(codec.encode(configuration))
    except KeyError:
        return []  # configuration outside the universe — object path
    if decoded != configuration:
        return [
            InvariantViolation(
                "codec",
                "codec round-trip is not the identity for the decided "
                "configuration",
            )
        ]
    return []


def check_invariants(
    configuration,
    catalog,
    limits,
    host_ids: Optional[Sequence[str]] = None,
    utility: Optional[Mapping[str, float]] = None,
    context: str = "",
) -> list[InvariantViolation]:
    """All violated invariants for one committed decision (empty = clean).

    ``utility`` is the decision provenance's Eq. 3 breakdown
    (``plan_breakdown`` totals) when available; ``host_ids`` enables the
    codec round-trip check; ``context`` tags the telemetry events with
    where the decision came from (controller name, sample time).
    """
    violations = _allocation_violations(configuration, catalog, limits)
    violations += _replica_zero_violations(configuration, catalog)
    violations += _conservation_violations(utility)
    violations += _codec_violations(configuration, catalog, host_ids)
    if violations and _telemetry.enabled:
        _telemetry.registry.counter("chaos.invariant_violations").inc(
            len(violations)
        )
        for violation in violations:
            _telemetry.tracer.event(
                "chaos.invariant_violation",
                invariant=violation.name,
                detail=violation.detail,
                context=context,
            )
    return violations
