"""Search degradation ladder: normal → pruned → no-op.

Faults cost wall-clock time — retries back off, rollbacks undo work,
re-planning repeats searches — and Mistral's decisions are only useful
if they land within the stability interval the ARMA filter predicted.
When faults pile up, the :class:`DegradationLadder` trades decision
quality for decision latency, one rung at a time:

``normal``
    the controller's configured search (possibly the naive
    full-width A*);
``pruned``
    the Self-Aware pruned search with a reduced expansion budget
    (fast, still adapts);
``noop``
    no search at all — the controller keeps the current configuration
    until the cluster quiets down.

The ladder escalates when ``escalate_after`` faults land within a
sliding ``fault_window_seconds`` window, or immediately when a decision
overruns ``deadline_fraction`` of its control window.  It recovers one
rung at a time after ``recover_after_seconds`` without a fault.

Example::

    >>> ladder = DegradationLadder(
    ...     DegradationSettings(
    ...         fault_window_seconds=600.0,
    ...         escalate_after=2,
    ...         recover_after_seconds=1200.0,
    ...     )
    ... )
    >>> ladder.level
    'normal'
    >>> ladder.record_fault(10.0, "action_failure") is None
    True
    >>> ladder.record_fault(20.0, "action_failure")
    'pruned'
    >>> ladder.observe(20.0 + 1200.0)
    'normal'
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Tuple


#: The rungs, mildest first.
LEVELS: Tuple[str, ...] = ("normal", "pruned", "noop")


@dataclass(frozen=True)
class DegradationSettings:
    """Knobs of the degradation ladder."""

    #: Sliding window over which faults are counted.
    fault_window_seconds: float = 900.0
    #: Escalate one rung once this many faults land within the window.
    escalate_after: int = 3
    #: Recover one rung after this long without any fault.
    recover_after_seconds: float = 1800.0
    #: Expansion budget of the ``pruned`` rung's Self-Aware search.
    pruned_max_expansions: int = 250
    #: A decision consuming more than this fraction of its control
    #: window escalates immediately (deadline overrun).
    deadline_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.fault_window_seconds <= 0:
            raise ValueError("fault_window_seconds must be positive")
        if self.escalate_after < 1:
            raise ValueError("escalate_after must be >= 1")
        if self.recover_after_seconds <= 0:
            raise ValueError("recover_after_seconds must be positive")
        if self.pruned_max_expansions < 1:
            raise ValueError("pruned_max_expansions must be >= 1")
        if not 0.0 < self.deadline_fraction <= 1.0:
            raise ValueError("deadline_fraction must be in (0, 1]")


class DegradationLadder:
    """Tracks the current rung from the fault history."""

    def __init__(self, settings: Optional[DegradationSettings] = None) -> None:
        self.settings = settings or DegradationSettings()
        self._level_index = 0
        self._faults: Deque[float] = deque()
        self._last_fault_time: Optional[float] = None

    @property
    def level(self) -> str:
        """The current rung: ``normal``, ``pruned``, or ``noop``."""
        return LEVELS[self._level_index]

    def record_fault(self, now: float, kind: str) -> Optional[str]:
        """Note one fault at time ``now``; returns the new rung if the
        ladder escalated, else ``None``.  ``kind`` is informational
        (``"action_failure"``, ``"deadline"``, ...); deadline overruns
        escalate unconditionally."""
        self._last_fault_time = now
        if kind == "deadline":
            self._faults.clear()
            return self._escalate()
        self._faults.append(now)
        cutoff = now - self.settings.fault_window_seconds
        while self._faults and self._faults[0] < cutoff:
            self._faults.popleft()
        if len(self._faults) >= self.settings.escalate_after:
            self._faults.clear()
            return self._escalate()
        return None

    def observe(self, now: float) -> Optional[str]:
        """Advance time; returns the new rung if the ladder recovered
        one level, else ``None``."""
        if self._level_index == 0 or self._last_fault_time is None:
            return None
        if now - self._last_fault_time < self.settings.recover_after_seconds:
            return None
        self._level_index -= 1
        # Recovering further requires another quiet period from now.
        self._last_fault_time = now
        return self.level

    def _escalate(self) -> Optional[str]:
        if self._level_index >= len(LEVELS) - 1:
            return None
        self._level_index += 1
        return self.level
