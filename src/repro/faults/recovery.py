"""Recovery policy: timeouts, bounded retries, rollback.

The cluster consults one :class:`RecoveryPolicy` while executing an
adaptation plan under fault injection:

- every action attempt gets a **timeout** relative to its sampled
  duration (a stalled action that blows past it is abandoned and
  counted as a failure);
- a failed attempt is **retried** after a bounded exponential backoff,
  up to ``max_attempts`` total tries;
- when an action exhausts its retries (or a host crash invalidates the
  plan), the partially applied prefix is **rolled back** by applying
  the inverse of each completed action in reverse order, restoring the
  exact pre-plan :class:`~repro.core.config.Configuration` (see
  :func:`repro.core.actions.invert_action` and DESIGN.md §10).

Example::

    >>> policy = RecoveryPolicy()
    >>> [policy.backoff_seconds(attempt) for attempt in (1, 2, 3, 4, 5)]
    [10.0, 20.0, 40.0, 80.0, 120.0]
    >>> policy.timeout_seconds(20.0)
    60.0
    >>> policy.timeout_seconds(1.0)   # short actions get the floor
    45.0
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RecoveryPolicy:
    """Knobs of the retry/timeout/rollback machinery."""

    #: Total tries per action (the first attempt plus retries).
    max_attempts: int = 3
    #: Backoff before retry ``n`` is ``base * factor**(n-1)`` seconds,
    #: capped at ``backoff_max_seconds``.
    backoff_base_seconds: float = 10.0
    backoff_factor: float = 2.0
    backoff_max_seconds: float = 120.0
    #: An attempt is abandoned once it runs ``timeout_factor`` times its
    #: sampled duration (but never sooner than ``min_timeout_seconds``).
    timeout_factor: float = 3.0
    min_timeout_seconds: float = 45.0
    #: Roll back the applied prefix when a plan aborts.  Disabling this
    #: leaves the cluster in the partial configuration (diagnostics
    #: only — it violates the §10 consistency invariant).
    rollback: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_seconds < 0:
            raise ValueError("backoff_base_seconds must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.backoff_max_seconds < self.backoff_base_seconds:
            raise ValueError("backoff_max_seconds must be >= the base")
        if self.timeout_factor < 1.0:
            raise ValueError("timeout_factor must be >= 1")
        if self.min_timeout_seconds <= 0:
            raise ValueError("min_timeout_seconds must be positive")

    def backoff_seconds(self, attempt: int) -> float:
        """Backoff after failed attempt number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt must be >= 1")
        raw = self.backoff_base_seconds * self.backoff_factor ** (attempt - 1)
        return min(raw, self.backoff_max_seconds)

    def timeout_seconds(self, expected_duration: float) -> float:
        """Abandonment deadline for an attempt of the given duration."""
        return max(
            self.min_timeout_seconds, self.timeout_factor * expected_duration
        )
