"""Deterministic fault injection and recovery (resilience layer).

The paper assumes every adaptation action completes on schedule and
every monitoring sample is fresh.  This package drops that assumption:
a seeded :class:`FaultInjector` perturbs the simulated cluster (action
failures and stalls, host crashes that strand VMs, stale or dropped
monitoring samples), and the recovery machinery — per-action timeouts,
bounded exponential-backoff retries, rollback of partially applied
plans, forced re-planning, and a search degradation ladder — keeps the
controller correct under those faults.

Everything is off by default: a run without a ``faults=`` argument is
bit-identical to a run of the pre-resilience code (enforced by
``tests/test_faults.py``), and a fixed fault seed reproduces the exact
same fault schedule and telemetry event sequence on every run.

See ``docs/OPERATIONS.md`` for the operator guide and DESIGN.md §10
for the fault/recovery contract.
"""

from repro.faults.degradation import DegradationLadder, DegradationSettings
from repro.faults.injector import (
    ActionFault,
    ControllerCrash,
    FaultConfig,
    FaultInjector,
    FaultStats,
    HostCrash,
    InjectedSolverFault,
    ScriptedActionFault,
)
from repro.faults.invariants import InvariantViolation, check_invariants
from repro.faults.recovery import RecoveryPolicy

__all__ = [
    "ActionFault",
    "ControllerCrash",
    "DegradationLadder",
    "DegradationSettings",
    "FaultConfig",
    "FaultInjector",
    "FaultStats",
    "HostCrash",
    "InjectedSolverFault",
    "InvariantViolation",
    "RecoveryPolicy",
    "ScriptedActionFault",
    "check_invariants",
]
