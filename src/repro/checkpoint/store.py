"""Crash-consistent on-disk snapshot store with a generation ring.

One :class:`CheckpointStore` owns one snapshot *lineage*: the target
path always names the newest snapshot, and each successful save also
retires into a bounded ring of generation files
(``<path>.g000001``, ``<path>.g000002``, ...) kept as siblings in the
same directory.  Writes are atomic and verified-before-commit — the
envelope is serialized to a temporary file in the same directory,
fsynced, re-read and checksum-verified, and only then renamed into the
ring — so a previous good generation is never deleted (or even
replaced) until its successor is durably on disk and proven readable.
The target path is a hard link to the newest generation, so a reader
of either name sees the same complete bytes.

The envelope embeds a SHA-256 checksum of the canonical snapshot JSON
plus the schema version, and :meth:`load` verifies both before
returning.  When the newest snapshot fails verification — torn write,
bit rot, operator accident — :meth:`load` *quarantines* the corrupt
file (renames it aside with a ``.quarantine`` suffix, preserving the
evidence) and rolls back through the ring, newest to oldest, returning
the most recent generation that still verifies.  Only when every
generation is exhausted does it raise :class:`CheckpointError`.

Envelope shape (version 1)::

    {"v": 1, "checksum": "<sha256 hex>", "snapshot": {...}}

For chaos drills, :attr:`CheckpointStore.corruption_hook` may be set
to a ``str -> str`` callable (e.g. a
:class:`~repro.faults.injector.FaultInjector`'s
``corrupt_checkpoint``); it is applied to the committed bytes *after*
the write is verified, simulating post-write media rot that the next
:meth:`load` must detect, quarantine, and roll back from.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
from typing import Callable, Optional, Union

from repro.checkpoint.snapshot import (
    SNAPSHOT_SCHEMA_VERSION,
    CheckpointError,
)
from repro.telemetry import runtime as _telemetry

#: Default number of snapshot generations retained on disk.
DEFAULT_GENERATIONS = 3


def _canonical(snapshot: dict) -> str:
    return json.dumps(snapshot, sort_keys=True, separators=(",", ":"))


def _checksum(payload: str) -> str:
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class CheckpointStore:
    """Atomic, checksummed persistence with bounded generation history."""

    def __init__(
        self,
        path: Union[str, "os.PathLike[str]"],
        keep: int = DEFAULT_GENERATIONS,
    ) -> None:
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self._path = str(path)
        self._keep = keep
        #: Optional ``str -> str`` transform applied to the committed
        #: envelope bytes after a verified save — the chaos harness's
        #: stand-in for silent on-disk corruption.
        self.corruption_hook: Optional[Callable[[str], str]] = None

    @property
    def path(self) -> str:
        """Where the newest snapshot lives."""
        return self._path

    @property
    def keep(self) -> int:
        """How many generations the ring retains."""
        return self._keep

    def exists(self) -> bool:
        """Whether a snapshot file is present (not necessarily valid)."""
        return os.path.exists(self._path)

    # -- the generation ring ----------------------------------------------

    def _generation_pattern(self) -> "re.Pattern[str]":
        base = re.escape(os.path.basename(self._path))
        return re.compile(base + r"\.g(\d{6})(\.quarantine)?$")

    def _directory(self) -> str:
        return os.path.dirname(os.path.abspath(self._path))

    def _generation_path(self, generation: int) -> str:
        return f"{self._path}.g{generation:06d}"

    def generations(self) -> list:
        """Clean (non-quarantined) generation paths, oldest to newest."""
        pattern = self._generation_pattern()
        directory = self._directory()
        try:
            names = os.listdir(directory)
        except OSError:
            return []
        found = []
        for name in names:
            match = pattern.match(name)
            if match and not match.group(2):
                found.append((int(match.group(1)), name))
        return [
            os.path.join(directory, name) for _, name in sorted(found)
        ]

    def quarantined(self) -> list:
        """Quarantined file paths (corrupt evidence), oldest first."""
        pattern = self._generation_pattern()
        directory = self._directory()
        try:
            names = os.listdir(directory)
        except OSError:
            return []
        found = sorted(
            (int(match.group(1)), name)
            for name in names
            if (match := pattern.match(name)) and match.group(2)
        )
        paths = [os.path.join(directory, name) for _, name in found]
        head = self._path + ".quarantine"
        if os.path.exists(head):
            paths.append(head)
        return paths

    def _next_generation(self) -> int:
        pattern = self._generation_pattern()
        try:
            names = os.listdir(self._directory())
        except OSError:
            return 1
        numbers = [
            int(match.group(1))
            for name in names
            if (match := pattern.match(name))
        ]
        return max(numbers, default=0) + 1

    def _relink_latest(self, generation_path: str) -> None:
        """Point ``path`` at a generation file (hard link + rename)."""
        link_tmp = generation_path + ".lnk"
        try:
            os.unlink(link_tmp)
        except OSError:
            pass
        os.link(generation_path, link_tmp)
        try:
            os.replace(link_tmp, self._path)
        except BaseException:
            try:
                os.unlink(link_tmp)
            except OSError:
                pass
            raise

    def _prune(self) -> None:
        """Drop generations beyond the ring bound (never quarantines)."""
        clean = self.generations()
        for stale in clean[: -self._keep]:
            try:
                os.unlink(stale)
            except OSError:
                pass

    def _quarantine(self, candidate: str, error: Exception) -> None:
        target = candidate + ".quarantine"
        try:
            os.replace(candidate, target)
        except OSError:
            return
        if _telemetry.enabled:
            _telemetry.registry.counter("checkpoint.quarantines").inc()
            _telemetry.tracer.event(
                "checkpoint.quarantine",
                path=candidate,
                quarantined=target,
                error=str(error),
            )

    # -- save / load -------------------------------------------------------

    def save(self, snapshot: dict) -> str:
        """Durably persist one snapshot; returns the file path.

        The temporary file is created in the target's directory so the
        rename stays on one filesystem (atomic on POSIX), fsynced, then
        *re-read and checksum-verified* before commit — the previous
        good generation is never touched until the new one is proven
        readable.  On any serialization, write, or verification error
        the temporary file is removed and every existing generation is
        left exactly as it was.
        """
        payload = _canonical(snapshot)
        envelope = {
            "v": SNAPSHOT_SCHEMA_VERSION,
            "checksum": _checksum(payload),
            "snapshot": snapshot,
        }
        directory = self._directory()
        descriptor, tmp_path = tempfile.mkstemp(
            prefix=os.path.basename(self._path) + ".",
            suffix=".tmp",
            dir=directory,
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(envelope, handle, separators=(",", ":"))
                handle.flush()
                os.fsync(handle.fileno())
            # Verify before commit: the bytes on disk must round-trip.
            self._verify_envelope(self._read_envelope(tmp_path), tmp_path)
            generation = self._next_generation()
            generation_path = self._generation_path(generation)
            os.replace(tmp_path, generation_path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        self._relink_latest(generation_path)
        self._prune()
        if _telemetry.enabled:
            _telemetry.registry.counter("checkpoint.saves").inc()
            _telemetry.tracer.event(
                "checkpoint.save",
                path=self._path,
                generation=generation,
                bytes=len(payload),
                t_sim=snapshot.get("t_sim", 0.0),
            )
        if self.corruption_hook is not None:
            self._apply_corruption(envelope)
        return self._path

    def _apply_corruption(self, envelope: dict) -> None:
        """Chaos path: rot the committed bytes *after* verification.

        The hook sees exactly what a verified save left on disk; if it
        returns different bytes they overwrite the newest snapshot in
        place (the hard-linked generation rots with it), leaving older
        generations pristine for :meth:`load` to roll back to.
        """
        text = json.dumps(envelope, separators=(",", ":"))
        corrupted = self.corruption_hook(text)
        if corrupted == text:
            return
        with open(self._path, "w", encoding="utf-8") as handle:
            handle.write(corrupted)
        if _telemetry.enabled:
            _telemetry.tracer.event(
                "fault.checkpoint.corrupt", path=self._path
            )

    def _read_envelope(self, candidate: str) -> dict:
        try:
            with open(candidate, "r", encoding="utf-8") as handle:
                raw = handle.read()
        except OSError as error:
            raise CheckpointError(
                f"cannot read snapshot {candidate!r}: {error}"
            ) from error
        try:
            envelope = json.loads(raw)
        except ValueError as error:
            raise CheckpointError(
                f"snapshot {candidate!r} is not valid JSON "
                f"(corrupt or torn write): {error}"
            ) from error
        if not isinstance(envelope, dict):
            raise CheckpointError(
                f"snapshot {candidate!r} is not a JSON object"
            )
        return envelope

    def _verify_envelope(self, envelope: dict, candidate: str) -> dict:
        version = envelope.get("v")
        if version != SNAPSHOT_SCHEMA_VERSION:
            raise CheckpointError(
                f"snapshot {candidate!r} has unknown schema version "
                f"{version!r} (this reader understands "
                f"{SNAPSHOT_SCHEMA_VERSION})"
            )
        snapshot = envelope.get("snapshot")
        if not isinstance(snapshot, dict):
            raise CheckpointError(
                f"snapshot {candidate!r} has no snapshot payload"
            )
        recorded = envelope.get("checksum")
        actual = _checksum(_canonical(snapshot))
        if recorded != actual:
            raise CheckpointError(
                f"snapshot {candidate!r} failed its checksum "
                f"(recorded {recorded!r}, computed {actual!r}) — "
                "refusing a corrupt restore"
            )
        return snapshot

    def load(self) -> dict:
        """Read, verify, and return the newest snapshot that verifies.

        Tries the target path first, then each ring generation newest
        to oldest.  A candidate that fails verification — unparsable,
        unknown envelope version, checksum mismatch — is quarantined
        (renamed aside, evidence preserved) and the next-older one is
        tried; recovering from a generation re-links it as the target
        path so subsequent loads are fast again.  Raises
        :class:`CheckpointError` only when the target is missing and no
        generation exists, or when every candidate is corrupt (the
        newest candidate's error is reported).
        """
        candidates = [self._path]
        for generation_path in reversed(self.generations()):
            candidates.append(generation_path)
        first_error: Optional[CheckpointError] = None
        seen_any = False
        for candidate in candidates:
            if not os.path.exists(candidate):
                continue
            seen_any = True
            try:
                snapshot = self._verify_envelope(
                    self._read_envelope(candidate), candidate
                )
            except CheckpointError as error:
                if first_error is None:
                    first_error = error
                self._quarantine(candidate, error)
                continue
            if candidate != self._path:
                # The head was corrupt (or already quarantined); this
                # generation is the rollback target.  Repair the head
                # link so the next load finds the good snapshot
                # directly.
                if _telemetry.enabled:
                    _telemetry.registry.counter(
                        "checkpoint.rollbacks"
                    ).inc()
                    _telemetry.tracer.event(
                        "checkpoint.rollback",
                        path=self._path,
                        recovered_from=candidate,
                    )
                try:
                    self._relink_latest(candidate)
                except OSError:
                    pass
            return snapshot
        if first_error is not None:
            raise first_error
        if not seen_any:
            raise CheckpointError(
                f"cannot read snapshot {self._path!r}: no snapshot or "
                "usable generation exists"
            )
        raise CheckpointError(  # pragma: no cover - defensive
            f"cannot read snapshot {self._path!r}"
        )
