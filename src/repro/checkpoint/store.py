"""Crash-consistent on-disk snapshot store.

One :class:`CheckpointStore` owns one snapshot file.  Writes are
atomic — the envelope is serialized to a temporary file in the same
directory, fsynced, and renamed over the target — so a reader never
sees a torn snapshot: either the previous complete snapshot or the new
one.  The envelope embeds a SHA-256 checksum of the canonical snapshot
JSON plus the schema version, and :meth:`load` verifies both before
returning, raising :class:`CheckpointError` on any corruption or
unknown version — never a partial or silently-wrong restore.

Envelope shape (version 1)::

    {"v": 1, "checksum": "<sha256 hex>", "snapshot": {...}}
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Union

from repro.checkpoint.snapshot import (
    SNAPSHOT_SCHEMA_VERSION,
    CheckpointError,
)
from repro.telemetry import runtime as _telemetry


def _canonical(snapshot: dict) -> str:
    return json.dumps(snapshot, sort_keys=True, separators=(",", ":"))


def _checksum(payload: str) -> str:
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class CheckpointStore:
    """Atomic, checksummed persistence for one snapshot file."""

    def __init__(self, path: Union[str, "os.PathLike[str]"]) -> None:
        self._path = str(path)

    @property
    def path(self) -> str:
        """Where the snapshot lives."""
        return self._path

    def exists(self) -> bool:
        """Whether a snapshot file is present (not necessarily valid)."""
        return os.path.exists(self._path)

    def save(self, snapshot: dict) -> str:
        """Atomically persist one snapshot; returns the file path.

        The temporary file is created in the target's directory so the
        rename stays on one filesystem (atomic on POSIX).  On any
        serialization or write error the temporary file is removed and
        the previous snapshot, if any, is left untouched.
        """
        payload = _canonical(snapshot)
        envelope = {
            "v": SNAPSHOT_SCHEMA_VERSION,
            "checksum": _checksum(payload),
            "snapshot": snapshot,
        }
        directory = os.path.dirname(os.path.abspath(self._path))
        descriptor, tmp_path = tempfile.mkstemp(
            prefix=os.path.basename(self._path) + ".",
            suffix=".tmp",
            dir=directory,
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(envelope, handle, separators=(",", ":"))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, self._path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        if _telemetry.enabled:
            _telemetry.registry.counter("checkpoint.saves").inc()
            _telemetry.tracer.event(
                "checkpoint.save",
                path=self._path,
                bytes=len(payload),
                t_sim=snapshot.get("t_sim", 0.0),
            )
        return self._path

    def load(self) -> dict:
        """Read, verify, and return the stored snapshot.

        Raises :class:`CheckpointError` when the file is missing,
        unparsable, carries an unknown envelope version, or fails its
        checksum.
        """
        try:
            with open(self._path, "r", encoding="utf-8") as handle:
                raw = handle.read()
        except OSError as error:
            raise CheckpointError(
                f"cannot read snapshot {self._path!r}: {error}"
            ) from error
        try:
            envelope = json.loads(raw)
        except ValueError as error:
            raise CheckpointError(
                f"snapshot {self._path!r} is not valid JSON "
                f"(corrupt or torn write): {error}"
            ) from error
        if not isinstance(envelope, dict):
            raise CheckpointError(
                f"snapshot {self._path!r} is not a JSON object"
            )
        version = envelope.get("v")
        if version != SNAPSHOT_SCHEMA_VERSION:
            raise CheckpointError(
                f"snapshot {self._path!r} has unknown schema version "
                f"{version!r} (this reader understands "
                f"{SNAPSHOT_SCHEMA_VERSION})"
            )
        snapshot = envelope.get("snapshot")
        if not isinstance(snapshot, dict):
            raise CheckpointError(
                f"snapshot {self._path!r} has no snapshot payload"
            )
        recorded = envelope.get("checksum")
        actual = _checksum(_canonical(snapshot))
        if recorded != actual:
            raise CheckpointError(
                f"snapshot {self._path!r} failed its checksum "
                f"(recorded {recorded!r}, computed {actual!r}) — "
                "refusing a corrupt restore"
            )
        return snapshot
