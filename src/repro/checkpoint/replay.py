"""Deterministic decision-loop replay for crash-restart testing.

The testbed's full run loop is deliberately noisy (demand jitter,
metering noise) and its random streams cannot be rewound to an
arbitrary mid-run point, so crash-restart *determinism* is exercised
on a noise-free control loop instead: :func:`drive_windows` feeds a
controller the testbed's deterministic workload traces, a model-derived
interval utility, and model-derived "measured" response times (which
exercise the feedback calibration), window by window, applying each
non-null decision's final configuration.  Two properties follow:

- the loop is a pure function of (controller state, start window), so
  an uninterrupted drive and a drive that checkpoints, "dies", restores
  into a freshly built controller, and continues must produce
  bit-identical :class:`WindowRecord` sequences — the headline contract
  of ``tests/test_checkpoint.py`` and the ``--crash-at`` mode of
  ``scripts/capture_trace.py``;
- every quantity in a :class:`WindowRecord` is decision state (virtual
  Eq. 3 seconds, not wall time), so the comparison is exact equality,
  not tolerance-based.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

from repro.core.config import Configuration


@dataclass(frozen=True)
class WindowRecord:
    """Everything one monitoring window decided (comparison unit)."""

    window: int
    controller: str
    actions: tuple[str, ...]
    control_window: float
    decision_seconds: float
    predicted_utility: float
    configuration: str

    @staticmethod
    def digest(configuration: Configuration) -> str:
        """Stable short digest of a configuration's defining state."""
        payload = repr(
            (
                configuration.placement_items(),
                tuple(sorted(configuration.powered_hosts)),
            )
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def drive_windows(
    controller,
    configuration: Configuration,
    testbed,
    start_window: int,
    end_window: int,
    interval: Optional[float] = None,
) -> tuple[list[WindowRecord], Configuration]:
    """Drive ``controller`` over monitoring windows [start, end).

    Returns the decision records plus the configuration after the last
    window, so a continued drive (post-restore) picks up exactly where
    the interrupted one stopped.
    """
    interval = (
        interval if interval is not None else testbed.settings.monitoring_interval
    )
    records: list[WindowRecord] = []
    for window in range(start_window, end_window):
        now = window * interval
        workloads = testbed.workloads_at(now)
        estimate = testbed.estimator.estimate(configuration, workloads)
        controller.record_interval_utility(
            (estimate.perf_rate + estimate.power_rate) * interval
        )
        if hasattr(controller, "record_measurements"):
            controller.record_measurements(
                workloads, estimate.response_times, configuration
            )
        output = controller.on_sample(now, workloads, configuration)
        decisions = _as_list(output)
        for decision in decisions:
            if decision is None or decision.is_null:
                continue
            configuration = decision.outcome.final_configuration
            records.append(
                WindowRecord(
                    window=window,
                    controller=decision.controller,
                    actions=tuple(repr(a) for a in decision.actions),
                    control_window=decision.control_window,
                    decision_seconds=decision.decision_seconds,
                    predicted_utility=decision.outcome.predicted_utility,
                    configuration=WindowRecord.digest(configuration),
                )
            )
    return records, configuration


def _as_list(output) -> list:
    if output is None:
        return []
    if isinstance(output, (list, tuple)):
        return list(output)
    return [output]
