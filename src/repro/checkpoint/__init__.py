"""Controller checkpointing: crash-consistent snapshot/restore.

See DESIGN.md §12 and the runbook in docs/OPERATIONS.md.  The layer
has three parts:

- :mod:`repro.checkpoint.snapshot` — capture/restore of controller (or
  hierarchy) state to a schema-versioned, JSON-encodable dict, plus
  the post-restart reconciliation diff against the live configuration;
- :mod:`repro.checkpoint.store` — atomic, checksummed persistence of
  one snapshot file (tmp + fsync + rename);
- :mod:`repro.checkpoint.replay` — the deterministic decision-loop
  driver used to prove crash-restart determinism.
"""

from repro.checkpoint.replay import WindowRecord, drive_windows
from repro.checkpoint.snapshot import (
    SNAPSHOT_SCHEMA_VERSION,
    CheckpointError,
    ReconciliationReport,
    capture,
    cost_table_fingerprint,
    reconcile,
    restore,
    restore_level2,
    snapshot_configuration,
)
from repro.checkpoint.store import CheckpointStore

__all__ = [
    "SNAPSHOT_SCHEMA_VERSION",
    "CheckpointError",
    "CheckpointStore",
    "ReconciliationReport",
    "WindowRecord",
    "capture",
    "cost_table_fingerprint",
    "drive_windows",
    "reconcile",
    "restore",
    "restore_level2",
    "snapshot_configuration",
]
