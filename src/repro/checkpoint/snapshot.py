"""Snapshot and restore of controller state (DESIGN.md §12).

A snapshot is a plain JSON-encodable dict capturing everything a
Mistral controller accumulates at run time and would lose in a crash:
the ARMA stability-interval history, the workload-band centers, the
recent-utility window that feeds the Self-Aware budget ``UH``, the
model-feedback calibration factors and version, the degradation-ladder
rung, the Eq. 3 fault debt, and the :class:`ControllerStats` accrual.
Static artifacts — applications, cost tables, search settings — are
*not* captured: a restarted controller process rebuilds them from the
same deterministic scenario builder, and :func:`restore` verifies the
rebuilt cost table against the snapshot's fingerprint before touching
any state.

``capture`` and ``restore`` are duck-typed over the same protocol the
testbed uses: a single :class:`~repro.core.controller.MistralController`
or a :class:`~repro.core.hierarchy.ControllerHierarchy` (anything with
a ``controllers()`` method and ``level1``/``level2`` attributes).

Restore is all-or-nothing: every validation (schema version, controller
identity, estimator geometry, cost-table fingerprint) runs *before* the
first mutation, so a rejected snapshot leaves the live controller
exactly as it was — never a partial restore.

The reconciliation step (:func:`reconcile`) diffs the configuration
recorded in a snapshot against the live cluster configuration, so a
restarted controller can detect drift (VMs that moved or vanished,
hosts that powered up or down while it was dead) before its first
post-restart decision and force a re-plan instead of trusting stale
assumptions.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Optional

from repro.core.config import Configuration, Placement
from repro.telemetry import runtime as _telemetry
from repro.workload.arma import EstimatorState
from repro.workload.monitor import BandEscape

#: Version of the snapshot schema below.  Bump on any breaking change;
#: :func:`restore` and :class:`~repro.checkpoint.store.CheckpointStore`
#: reject versions they do not know.
SNAPSHOT_SCHEMA_VERSION = 1


class CheckpointError(ValueError):
    """A snapshot could not be written, read, or applied."""


# -- capture ---------------------------------------------------------------


def _capture_estimator(estimator) -> dict:
    return {
        "history": estimator._k,
        "gamma": estimator._gamma,
        "estimate": estimator._estimate,
        "measurements": list(estimator._measurements),
        "errors": list(estimator._errors),
        "trace": [
            [state.measured, state.estimate_next, state.beta, state.error]
            for state in estimator.trace
        ],
    }


def _capture_monitor(monitor) -> dict:
    return {
        "band_width": monitor.band_width,
        "centers": (
            dict(monitor._centers) if monitor._centers is not None else None
        ),
        "band_start": monitor._band_start,
        "escapes": [
            [
                escape.time,
                list(escape.escaped_apps),
                escape.measured_interval,
                escape.estimated_next_interval,
                dict(escape.workloads),
            ]
            for escape in monitor.escapes
        ],
        "estimator": _capture_estimator(monitor.estimator),
    }


def _capture_ladder(ladder) -> Optional[dict]:
    if ladder is None:
        return None
    return {
        "level_index": ladder._level_index,
        "faults": list(ladder._faults),
        "last_fault_time": ladder._last_fault_time,
    }


def _capture_stats(stats) -> dict:
    return {
        "invocations": stats.invocations,
        "escapes": stats.escapes,
        "skipped_busy": stats.skipped_busy,
        "decisions": stats.decisions,
        "null_decisions": stats.null_decisions,
        "actions_issued": stats.actions_issued,
        "search_seconds": list(stats.search_seconds),
        "expansions": list(stats.expansions),
        "wall_seconds": list(stats.wall_seconds),
        "faults_observed": stats.faults_observed,
        "degradations": stats.degradations,
        "recoveries": stats.recoveries,
        "noop_decisions": stats.noop_decisions,
        "replans": stats.replans,
        "watchdog_aborts": stats.watchdog_aborts,
        "worker_respawns": stats.worker_respawns,
        "executor_failures": stats.executor_failures,
        "strategy_failures": stats.strategy_failures,
    }


def _capture_controller(controller) -> dict:
    return {
        "name": controller.name,
        "stats": _capture_stats(controller.stats),
        "recent_utilities": list(controller._recent_utilities),
        "last_workloads": (
            dict(controller._last_workloads)
            if controller._last_workloads is not None
            else None
        ),
        "last_now": controller._last_now,
        "fault_debt": controller._fault_debt,
        "replan_requested": controller._replan_requested,
        "monitor": _capture_monitor(controller.monitor),
        "ladder": _capture_ladder(controller.resilience),
    }


def _capture_feedback(feedback) -> Optional[dict]:
    if feedback is None:
        return None
    return {
        "factors": dict(feedback._factors),
        "version": feedback.version,
    }


def _capture_configuration(configuration) -> Optional[dict]:
    if configuration is None:
        return None
    return {
        "placements": {
            vm_id: [placement.host_id, placement.cpu_cap]
            for vm_id, placement in configuration.placement_items()
        },
        "powered": sorted(configuration.powered_hosts),
    }


def cost_table_fingerprint(table) -> str:
    """Stable digest of a cost table's measured entries.

    A snapshot records the fingerprint of the table its controller was
    planning with; :func:`restore` refuses to apply planning state on
    top of different cost artifacts.
    """
    payload = {
        f"{kind}/{tier}": [
            [
                workload,
                entry.duration,
                entry.primary_rt_delta,
                entry.colocated_rt_delta,
                entry.power_delta_watts,
            ]
            for workload, entry in table.entries(kind, tier)
        ]
        for kind, tier in sorted(table.keys())
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _is_hierarchy(controller) -> bool:
    return hasattr(controller, "controllers") and hasattr(controller, "level2")


def capture(
    controller,
    configuration: Optional[Configuration] = None,
    t_sim: float = 0.0,
) -> dict:
    """Snapshot a controller (or hierarchy) into a JSON-encodable dict.

    ``configuration`` is the live cluster configuration at snapshot
    time; recording it lets :func:`reconcile` diff the world the
    snapshot assumed against the world a restarted controller finds.
    """
    snapshot: dict = {
        "schema": SNAPSHOT_SCHEMA_VERSION,
        "t_sim": t_sim,
        "configuration": _capture_configuration(configuration),
    }
    if _is_hierarchy(controller):
        snapshot["kind"] = "hierarchy"
        snapshot["level2"] = _capture_controller(controller.level2)
        snapshot["level1"] = [
            _capture_controller(sub) for sub in controller.level1
        ]
        snapshot["feedback"] = _capture_feedback(controller.feedback)
        table = controller.level2.search.cost_manager.table
    else:
        snapshot["kind"] = "controller"
        snapshot["controller"] = _capture_controller(controller)
        snapshot["feedback"] = _capture_feedback(controller.feedback)
        table = controller.search.cost_manager.table
    snapshot["cost_table_fingerprint"] = cost_table_fingerprint(table)
    return snapshot


# -- restore ---------------------------------------------------------------


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise CheckpointError(f"snapshot rejected: {message}")


def _validate_controller(controller, state: dict) -> None:
    _check(
        state["name"] == controller.name,
        f"snapshot is for controller {state['name']!r}, "
        f"live controller is {controller.name!r}",
    )
    monitor = state["monitor"]
    _check(
        monitor["band_width"] == controller.monitor.band_width,
        f"band width mismatch for {controller.name!r} "
        f"(snapshot {monitor['band_width']!r}, "
        f"live {controller.monitor.band_width!r})",
    )
    estimator = monitor["estimator"]
    live = controller.monitor.estimator
    _check(
        estimator["history"] == live._k and estimator["gamma"] == live._gamma,
        f"ARMA estimator geometry mismatch for {controller.name!r}",
    )
    _check(
        (state["ladder"] is None) == (controller.resilience is None),
        f"resilience mismatch for {controller.name!r}: snapshot and live "
        "controller disagree on whether a degradation ladder is attached",
    )


def _apply_estimator(estimator, state: dict) -> None:
    estimator._measurements.clear()
    estimator._measurements.extend(state["measurements"])
    estimator._errors.clear()
    estimator._errors.extend(state["errors"])
    estimator._estimate = state["estimate"]
    estimator.trace = [
        EstimatorState(
            measured=measured, estimate_next=nxt, beta=beta, error=error
        )
        for measured, nxt, beta, error in state["trace"]
    ]


def _apply_controller(controller, state: dict) -> None:
    stats = state["stats"]
    for name, value in stats.items():
        if isinstance(value, list):
            value = list(value)
        setattr(controller.stats, name, value)
    controller._recent_utilities.clear()
    controller._recent_utilities.extend(state["recent_utilities"])
    controller._last_workloads = (
        dict(state["last_workloads"])
        if state["last_workloads"] is not None
        else None
    )
    controller._last_now = state["last_now"]
    controller._fault_debt = state["fault_debt"]
    controller._replan_requested = state["replan_requested"]

    monitor = state["monitor"]
    controller.monitor._centers = (
        dict(monitor["centers"]) if monitor["centers"] is not None else None
    )
    controller.monitor._band_start = monitor["band_start"]
    controller.monitor.escapes = [
        BandEscape(
            time=time,
            escaped_apps=tuple(escaped_apps),
            measured_interval=measured,
            estimated_next_interval=estimated,
            workloads=dict(workloads),
        )
        for time, escaped_apps, measured, estimated, workloads in monitor[
            "escapes"
        ]
    ]
    _apply_estimator(controller.monitor.estimator, monitor["estimator"])

    ladder = state["ladder"]
    if ladder is not None:
        controller.resilience._level_index = ladder["level_index"]
        controller.resilience._faults.clear()
        controller.resilience._faults.extend(ladder["faults"])
        controller.resilience._last_fault_time = ladder["last_fault_time"]


def _apply_feedback(feedback, state: Optional[dict]) -> None:
    if feedback is None or state is None:
        return
    feedback._factors = dict(state["factors"])
    feedback.version = state["version"]


def restore(controller, snapshot: dict) -> None:
    """Apply a snapshot to a freshly rebuilt controller (or hierarchy).

    Validates everything first — schema version, hierarchy shape,
    controller identities, estimator geometry, cost-table fingerprint —
    and only then mutates, so a rejected snapshot never leaves the
    controller half-restored.
    """
    _check(isinstance(snapshot, dict), "snapshot is not a mapping")
    version = snapshot.get("schema")
    _check(
        version == SNAPSHOT_SCHEMA_VERSION,
        f"unknown snapshot schema version {version!r} "
        f"(this reader understands {SNAPSHOT_SCHEMA_VERSION})",
    )
    hierarchy = _is_hierarchy(controller)
    expected_kind = "hierarchy" if hierarchy else "controller"
    _check(
        snapshot.get("kind") == expected_kind,
        f"snapshot kind {snapshot.get('kind')!r} does not match the live "
        f"{expected_kind}",
    )
    search = (controller.level2 if hierarchy else controller).search
    recorded = snapshot.get("cost_table_fingerprint")
    if recorded is not None:
        live_fingerprint = cost_table_fingerprint(search.cost_manager.table)
        _check(
            recorded == live_fingerprint,
            "cost-table fingerprint mismatch — the snapshot was taken "
            "against different cost artifacts",
        )
    feedback_state = snapshot.get("feedback")
    _check(
        feedback_state is None or controller.feedback is not None,
        "snapshot carries feedback calibration but the live controller "
        "has no feedback loop attached",
    )

    if hierarchy:
        _check(
            len(snapshot["level1"]) == len(controller.level1),
            f"snapshot has {len(snapshot['level1'])} 1st-level "
            f"controllers, live hierarchy has {len(controller.level1)}",
        )
        _validate_controller(controller.level2, snapshot["level2"])
        for sub, state in zip(controller.level1, snapshot["level1"]):
            _validate_controller(sub, state)
        _apply_controller(controller.level2, snapshot["level2"])
        for sub, state in zip(controller.level1, snapshot["level1"]):
            _apply_controller(sub, state)
    else:
        _validate_controller(controller, snapshot["controller"])
        _apply_controller(controller, snapshot["controller"])
    _apply_feedback(controller.feedback, feedback_state)
    if _telemetry.enabled:
        _telemetry.registry.counter("checkpoint.restores").inc()
        _telemetry.tracer.event(
            "checkpoint.restore",
            kind=snapshot["kind"],
            t_sim=snapshot.get("t_sim", 0.0),
        )


def restore_level2(hierarchy, snapshot: dict) -> None:
    """Warm-start only the 2nd-level controller from a hierarchy
    snapshot (the failover path: the 1st-level controllers never died,
    so their live state wins)."""
    _check(isinstance(snapshot, dict), "snapshot is not a mapping")
    version = snapshot.get("schema")
    _check(
        version == SNAPSHOT_SCHEMA_VERSION,
        f"unknown snapshot schema version {version!r} "
        f"(this reader understands {SNAPSHOT_SCHEMA_VERSION})",
    )
    _check(
        snapshot.get("kind") == "hierarchy",
        "level-2 failover needs a hierarchy snapshot",
    )
    _validate_controller(hierarchy.level2, snapshot["level2"])
    _apply_controller(hierarchy.level2, snapshot["level2"])
    _apply_feedback(hierarchy.feedback, snapshot.get("feedback"))


def snapshot_configuration(snapshot: dict) -> Optional[Configuration]:
    """Rebuild the :class:`Configuration` recorded in a snapshot."""
    state = snapshot.get("configuration")
    if state is None:
        return None
    return Configuration(
        placements={
            vm_id: Placement(host_id=host_id, cpu_cap=cpu_cap)
            for vm_id, (host_id, cpu_cap) in state["placements"].items()
        },
        powered_hosts=state["powered"],
    )


# -- reconciliation --------------------------------------------------------


@dataclass(frozen=True)
class ReconciliationReport:
    """Diff of a snapshot's recorded configuration vs the live cluster."""

    vms_added: tuple[str, ...]
    vms_removed: tuple[str, ...]
    vms_moved: tuple[str, ...]
    caps_changed: tuple[str, ...]
    hosts_powered_on: tuple[str, ...]
    hosts_powered_off: tuple[str, ...]

    @property
    def clean(self) -> bool:
        """Whether the live cluster matches the snapshot exactly."""
        return not (
            self.vms_added
            or self.vms_removed
            or self.vms_moved
            or self.caps_changed
            or self.hosts_powered_on
            or self.hosts_powered_off
        )

    def drift_count(self) -> int:
        """Total number of drifted entities."""
        return (
            len(self.vms_added)
            + len(self.vms_removed)
            + len(self.vms_moved)
            + len(self.caps_changed)
            + len(self.hosts_powered_on)
            + len(self.hosts_powered_off)
        )


_CLEAN_REPORT = ReconciliationReport((), (), (), (), (), ())


def reconcile(
    snapshot: dict, configuration: Optional[Configuration]
) -> ReconciliationReport:
    """Diff the snapshot's recorded configuration against the live one.

    Run before the first post-restart decision: a non-clean report
    means the cluster changed while the controller was down (actions
    landed, hosts crashed, operators intervened) and the restored
    planning state should not be trusted without a forced re-plan.
    A snapshot that recorded no configuration reconciles clean — there
    is nothing to diff against.
    """
    recorded = snapshot_configuration(snapshot)
    if recorded is None or configuration is None:
        return _CLEAN_REPORT
    old = dict(recorded.placement_items())
    new = dict(configuration.placement_items())
    moved, retuned = [], []
    for vm_id in sorted(old.keys() & new.keys()):
        if old[vm_id].host_id != new[vm_id].host_id:
            moved.append(vm_id)
        elif old[vm_id].cpu_cap != new[vm_id].cpu_cap:
            retuned.append(vm_id)
    return ReconciliationReport(
        vms_added=tuple(sorted(new.keys() - old.keys())),
        vms_removed=tuple(sorted(old.keys() - new.keys())),
        vms_moved=tuple(moved),
        caps_changed=tuple(retuned),
        hosts_powered_on=tuple(
            sorted(configuration.powered_hosts - recorded.powered_hosts)
        ),
        hosts_powered_off=tuple(
            sorted(recorded.powered_hosts - configuration.powered_hosts)
        ),
    )
