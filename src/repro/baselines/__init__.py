"""Baseline controllers (paper §V-C).

Each baseline optimizes the tradeoff between two of the three
objectives — performance, power, transient adaptation cost — that
Mistral optimizes jointly:

- :class:`PerfPwrController` — performance vs power, costs ignored.
- :class:`PerfCostController` — performance vs adaptation cost over a
  fixed per-application host pool; no consolidation, no power savings.
- :class:`PwrCostController` — power vs adaptation cost under static
  per-rate VM capacities that always meet the response-time target
  (pMapper-style).
"""

from repro.baselines.perf_pwr import PerfPwrController
from repro.baselines.perf_cost import PerfCostController
from repro.baselines.pwr_cost import PwrCostController

__all__ = ["PerfPwrController", "PerfCostController", "PwrCostController"]
