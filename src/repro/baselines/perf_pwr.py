"""The Perf-Pwr baseline controller (paper §V-C).

Addresses the performance-power tradeoff but ignores transient
adaptation costs: whenever the workload changes, it computes the
cost-oblivious optimum with the Perf-Pwr optimizer and executes
whatever action sequence reaches it, however disruptive.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.core.config import Configuration
from repro.core.controller import ControllerStats, Decision
from repro.core.perf_pwr import PerfPwrOptimizer
from repro.core.planner import plan_transition
from repro.workload.monitor import WorkloadMonitor


class PerfPwrController:
    """Re-optimize to the cost-free optimum on every workload change."""

    def __init__(
        self,
        name: str,
        optimizer: PerfPwrOptimizer,
        monitor: Optional[WorkloadMonitor] = None,
        decision_seconds: float = 1.0,
        search_watts: float = 7.2,
    ) -> None:
        self.name = name
        self.optimizer = optimizer
        self.monitor = monitor or WorkloadMonitor(band_width=0.0)
        self.decision_seconds = decision_seconds
        self.search_watts = search_watts
        self.stats = ControllerStats()

    def record_interval_utility(self, utility: float) -> None:
        """Present for interface parity; Perf-Pwr ignores utilities."""

    def on_sample(
        self,
        now: float,
        workloads: Mapping[str, float],
        configuration: Configuration,
        busy: bool = False,
    ) -> list[Decision]:
        """Chase the cost-free optimum whenever the workload moves."""
        self.stats.invocations += 1
        escape = self.monitor.observe(now, workloads)
        if escape is None:
            return []
        self.stats.escapes += 1
        if busy:
            self.stats.skipped_busy += 1
            return []

        result = self.optimizer.optimize(dict(workloads))
        self.stats.decisions += 1
        self.stats.search_seconds.append(self.decision_seconds)
        if result.configuration == configuration:
            self.stats.null_decisions += 1
            return []
        actions = plan_transition(
            configuration,
            result.configuration,
            self.optimizer.catalog,
            self.optimizer.limits,
        )
        if not actions:
            self.stats.null_decisions += 1
            return []
        self.stats.actions_issued += len(actions)
        return [
            Decision(
                time=now,
                controller=self.name,
                actions=tuple(actions),
                control_window=escape.estimated_next_interval,
                decision_seconds=self.decision_seconds,
                search_watts=self.search_watts,
                outcome=None,
                escape=escape,
            )
        ]
