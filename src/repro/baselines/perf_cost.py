"""The Perf-Cost baseline controller (paper §V-C).

Multiplexes a *fixed* pool of hosts (two per application in the paper,
enough for the peak rate) to maximize performance utility, and does
account for adaptation costs — but never consolidates onto fewer hosts
and never considers power, neither steady-state nor transient.

Implemented as one scoped adaptation search per application, running
over the application's fixed host pair with a power-blind utility
model (the energy price set to zero).  The realized utility the
testbed meters still includes power, which is why Perf-Cost scores far
below Mistral in Fig. 9 despite its good response times.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.core.config import Configuration
from repro.core.controller import ControllerStats, Decision
from repro.core.perf_pwr import PerfPwrResult
from repro.core.search import AdaptationSearch
from repro.workload.monitor import WorkloadMonitor


class AppScopedPerfPwr:
    """Adapter: a per-application Perf-Pwr oracle for a scoped search.

    Wraps a :class:`~repro.core.perf_pwr.PerfPwrOptimizer` built over a
    single application's catalog and fixed host pool, filtering the
    system workload down to that application.
    """

    def __init__(self, app_name: str, optimizer) -> None:
        self.app_name = app_name
        self._optimizer = optimizer

    def optimize(self, workloads: Mapping[str, float]) -> PerfPwrResult:
        """Cost-free optimum for this application only."""
        scoped = {self.app_name: workloads.get(self.app_name, 0.0)}
        return self._optimizer.optimize(scoped)


class PerfCostController:
    """Fixed host pools per application; performance vs adaptation cost."""

    def __init__(
        self,
        name: str,
        app_searches: Mapping[str, AdaptationSearch],
        monitor: Optional[WorkloadMonitor] = None,
        min_control_window: float = 120.0,
    ) -> None:
        if not app_searches:
            raise ValueError("PerfCostController needs at least one app")
        self.name = name
        self.app_searches = dict(app_searches)
        self.monitor = monitor or WorkloadMonitor(band_width=0.0)
        self.min_control_window = min_control_window
        self.stats = ControllerStats()

    def record_interval_utility(self, utility: float) -> None:
        """Present for interface parity; Perf-Cost ignores utilities."""

    def on_sample(
        self,
        now: float,
        workloads: Mapping[str, float],
        configuration: Configuration,
        busy: bool = False,
    ) -> list[Decision]:
        """Run each application's scoped search on a workload change."""
        self.stats.invocations += 1
        escape = self.monitor.observe(now, workloads)
        if escape is None:
            return []
        self.stats.escapes += 1
        if busy:
            self.stats.skipped_busy += 1
            return []

        decisions: list[Decision] = []
        state = configuration
        window = max(escape.estimated_next_interval, self.min_control_window)
        for app_name, search in self.app_searches.items():
            outcome = search.search(state, dict(workloads), window)
            self.stats.decisions += 1
            self.stats.search_seconds.append(outcome.decision_seconds)
            self.stats.expansions.append(outcome.expansions)
            if outcome.is_null:
                self.stats.null_decisions += 1
                continue
            self.stats.actions_issued += len(outcome.actions)
            decisions.append(
                Decision(
                    time=now,
                    controller=f"{self.name}/{app_name}",
                    actions=outcome.actions,
                    control_window=window,
                    decision_seconds=outcome.decision_seconds,
                    search_watts=search.settings.search_watts_delta,
                    outcome=outcome,
                    escape=escape,
                )
            )
            state = outcome.final_configuration
        return decisions
