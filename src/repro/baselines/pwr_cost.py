"""The Pwr-Cost baseline controller (paper §V-C, pMapper-inspired).

Minimizes power and adaptation cost under *static per-rate VM
capacities*: for the current request rates, an oracle (the modified
Perf-Pwr optimizer) dictates the VM sizes that always meet the target
response time.  The controller then

1. retunes the running VMs to the dictated sizes (adding/removing
   replicas the oracle dictates),
2. repairs any host-capacity violations by migrating the smallest VMs
   away (booting a host if nothing has room), and
3. consolidates: empties the least-loaded host onto the others when the
   power saved over the control window exceeds the migration cost,
   shutting the emptied host down.

Unlike Mistral, it never trades the response-time target away for
power or cost savings.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.core.config import (
    Configuration,
    ConstraintLimits,
    Placement,
    VmCatalog,
)
from repro.core.controller import ControllerStats, Decision
from repro.core.estimator import UtilityEstimator
from repro.core.perf_pwr import PerfPwrOptimizer
from repro.core.planner import plan_transition
from repro.costmodel.manager import CostManager
from repro.workload.monitor import WorkloadMonitor


class PwrCostController:
    """Static capacities; minimize power and migration cost."""

    def __init__(
        self,
        name: str,
        oracle: PerfPwrOptimizer,
        catalog: VmCatalog,
        limits: ConstraintLimits,
        estimator: UtilityEstimator,
        cost_manager: CostManager,
        host_ids: Sequence[str],
        monitor: Optional[WorkloadMonitor] = None,
        min_control_window: float = 120.0,
        decision_seconds: float = 1.5,
        search_watts: float = 7.2,
    ) -> None:
        self.name = name
        self.oracle = oracle
        self.catalog = catalog
        self.limits = limits
        self.estimator = estimator
        self.cost_manager = cost_manager
        self.host_ids = tuple(host_ids)
        self.monitor = monitor or WorkloadMonitor(band_width=0.0)
        self.min_control_window = min_control_window
        self.decision_seconds = decision_seconds
        self.search_watts = search_watts
        self.stats = ControllerStats()

    def record_interval_utility(self, utility: float) -> None:
        """Present for interface parity; Pwr-Cost ignores utilities."""

    # -- control loop -----------------------------------------------------

    def on_sample(
        self,
        now: float,
        workloads: Mapping[str, float],
        configuration: Configuration,
        busy: bool = False,
    ) -> list[Decision]:
        """Retune to oracle capacities, repair, and maybe consolidate."""
        self.stats.invocations += 1
        escape = self.monitor.observe(now, workloads)
        if escape is None:
            return []
        self.stats.escapes += 1
        if busy:
            self.stats.skipped_busy += 1
            return []

        window = max(escape.estimated_next_interval, self.min_control_window)
        sizes = self.oracle.minimal_capacities(dict(workloads))
        target = self._fit(configuration, dict(sizes.caps))
        target = self._consolidate(target, dict(workloads), window)

        self.stats.decisions += 1
        self.stats.search_seconds.append(self.decision_seconds)
        if target == configuration:
            self.stats.null_decisions += 1
            return []
        actions = plan_transition(
            configuration, target, self.catalog, self.limits
        )
        if not actions:
            self.stats.null_decisions += 1
            return []
        self.stats.actions_issued += len(actions)
        return [
            Decision(
                time=now,
                controller=self.name,
                actions=tuple(actions),
                control_window=window,
                decision_seconds=self.decision_seconds,
                search_watts=self.search_watts,
                outcome=None,
                escape=escape,
            )
        ]

    # -- target construction ------------------------------------------------

    def _free_cpu(self, placements: dict[str, Placement], host: str) -> float:
        used = sum(
            placement.cpu_cap
            for placement in placements.values()
            if placement.host_id == host
        )
        return self.limits.max_total_cpu_cap - used

    def _host_fits(
        self,
        placements: dict[str, Placement],
        host: str,
        vm_id: str,
        cap: float,
    ) -> bool:
        descriptor = self.catalog.get(vm_id)
        count = sum(
            1
            for placement in placements.values()
            if placement.host_id == host
        )
        memory = sum(
            self.catalog.get(other).memory_mb
            for other, placement in placements.items()
            if placement.host_id == host
        )
        return (
            self._free_cpu(placements, host) + 1e-9 >= cap
            and count < self.limits.max_vms_per_host
            and memory + descriptor.memory_mb <= self.limits.guest_memory_mb
        )

    def _fit(
        self, current: Configuration, sizes: dict[str, float]
    ) -> Configuration:
        """Apply oracle sizes onto current placement and repair hosts."""
        powered = set(current.powered_hosts)
        placements: dict[str, Placement] = {}
        for vm_id, cap in sizes.items():
            placement = current.placement_of(vm_id)
            if placement is not None:
                placements[vm_id] = Placement(placement.host_id, cap)

        # New replicas: most-free powered host first.
        for vm_id, cap in sizes.items():
            if vm_id in placements:
                continue
            candidates = sorted(
                (host for host in powered
                 if self._host_fits(placements, host, vm_id, cap)),
                key=lambda host: (-self._free_cpu(placements, host), host),
            )
            if candidates:
                placements[vm_id] = Placement(candidates[0], cap)
                continue
            booted = self._boot_host(powered)
            if booted is not None:
                placements[vm_id] = Placement(booted, cap)
            else:
                # Cluster exhausted: overcommit the freest host rather
                # than dropping the replica (degraded but functional).
                fallback = max(
                    powered,
                    key=lambda host: (self._free_cpu(placements, host), host),
                )
                placements[vm_id] = Placement(fallback, cap)

        # Repair overloaded hosts: migrate the smallest VMs away (§V-C:
        # "the VMs are migrated starting from the smallest one").
        for host in sorted({p.host_id for p in placements.values()}):
            while self._free_cpu(placements, host) < -1e-9 or not self._counts_ok(
                placements, host
            ):
                movable = sorted(
                    (
                        (placement.cpu_cap, vm_id)
                        for vm_id, placement in placements.items()
                        if placement.host_id == host
                    ),
                )
                moved = False
                for cap, vm_id in movable:
                    destinations = sorted(
                        (
                            other
                            for other in powered
                            if other != host
                            and self._host_fits(placements, other, vm_id, cap)
                        ),
                        key=lambda other: (
                            -self._free_cpu(placements, other),
                            other,
                        ),
                    )
                    if destinations:
                        placements[vm_id] = Placement(destinations[0], cap)
                        moved = True
                        break
                if not moved:
                    booted = self._boot_host(powered)
                    if booted is None:
                        # Cluster exhausted: accept the overcommit.
                        break
                    smallest = movable[0][1]
                    placements[smallest] = Placement(
                        booted, placements[smallest].cpu_cap
                    )
        return Configuration(placements, frozenset(powered))

    def _counts_ok(
        self, placements: dict[str, Placement], host: str
    ) -> bool:
        count = sum(
            1 for placement in placements.values() if placement.host_id == host
        )
        memory = sum(
            self.catalog.get(vm_id).memory_mb
            for vm_id, placement in placements.items()
            if placement.host_id == host
        )
        return (
            count <= self.limits.max_vms_per_host
            and memory <= self.limits.guest_memory_mb
        )

    def _boot_host(self, powered: set[str]) -> Optional[str]:
        """Reserve the next dark host, or None if all are powered."""
        for host in self.host_ids:
            if host not in powered:
                powered.add(host)
                return host
        return None

    # -- consolidation --------------------------------------------------------

    def _consolidate(
        self,
        target: Configuration,
        workloads: Mapping[str, float],
        window: float,
    ) -> Configuration:
        """Empty the least-loaded host when the saving beats the cost."""
        while True:
            placements = dict(target.placements)
            used = sorted(
                target.used_hosts(),
                key=lambda host: (target.host_cpu_load(host), host),
            )
            # Power off hosts that are already empty (free win).
            for host in sorted(target.idle_hosts()):
                target = target.power_off(host)
            if len(used) <= 1:
                return target

            victim = used[0]
            moved = dict(placements)
            feasible = True
            for vm_id in target.vms_on_host(victim):
                cap = placements[vm_id].cpu_cap
                destinations = sorted(
                    (
                        host
                        for host in target.powered_hosts
                        if host != victim
                        and self._host_fits(moved, host, vm_id, cap)
                    ),
                    key=lambda host: (self._free_cpu(moved, host), host),
                )
                if not destinations:
                    feasible = False
                    break
                moved[vm_id] = Placement(destinations[0], cap)
            if not feasible:
                return target

            candidate = Configuration(
                moved, target.powered_hosts
            ).power_off(victim)
            if not candidate.is_candidate(self.catalog, self.limits):
                return target
            if self._worth_it(target, candidate, workloads, window):
                target = candidate
            else:
                return target

    def _worth_it(
        self,
        before: Configuration,
        after: Configuration,
        workloads: Mapping[str, float],
        window: float,
    ) -> bool:
        """Power saving versus migration cost (paper §V-C).

        The paper's Pwr-Cost weighs only the *power* side of the
        tradeoff — consolidation savings against the energy overhead of
        the migrations — never the performance impact of migrating.
        """
        utility = self.estimator.utility
        watts_before = self.estimator.estimate(before, workloads).watts
        watts_after = self.estimator.estimate(after, workloads).watts
        actions = plan_transition(before, after, self.catalog, self.limits)
        transition_time = 0.0
        transition_power_cost = 0.0
        for action in actions:
            predicted = self.cost_manager.predict(action, before, workloads)
            transition_time += predicted.duration
            transition_power_cost += predicted.duration * (
                -utility.power_utility_rate(
                    watts_before + predicted.power_delta_watts
                )
            )
        remaining = max(0.0, window - transition_time)
        cost_stay = window * (-utility.power_utility_rate(watts_before))
        cost_move = transition_power_cost + remaining * (
            -utility.power_utility_rate(watts_after)
        )
        return cost_move < cost_stay
