"""Application substrate: multi-tier applications and the RUBiS workload.

Applications are described by their tiers (web/app/db servers), the
transaction types users issue against them (each with its own call
graph and per-tier CPU demands), and replication rules.  The RUBiS
factory reproduces the paper's three-tier auction benchmark with its
"browsing only" mix of nine read-only transaction types.
"""

from repro.apps.application import Application, ApplicationSet, TierSpec
from repro.apps.transactions import TransactionType, validate_mix
from repro.apps.rubis import (
    RUBIS_TIERS,
    make_rubis_application,
    rate_to_sessions,
    sessions_to_rate,
)

__all__ = [
    "Application",
    "ApplicationSet",
    "TierSpec",
    "TransactionType",
    "validate_mix",
    "RUBIS_TIERS",
    "make_rubis_application",
    "rate_to_sessions",
    "sessions_to_rate",
]
