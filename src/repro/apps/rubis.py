"""RUBiS application factory.

Reproduces the paper's test application: a three-tier servlet RUBiS
(Apache web server, Tomcat application server, MySQL database) under
the "browsing only" transaction mix of nine read-only transaction
types (paper §V-A).  Per-visit CPU demands are normalized so that the
mix-weighted mean demand per tier matches the calibration anchors that
make the paper's "default configuration" (all caps 40%, 50 req/s)
produce a mean response time near the 400 ms target.

The paper controls workload by the number of simulated concurrent user
sessions and maps desired request rates onto session counts; the
800-session peak corresponds to the 100 req/s ceiling, giving the
``sessions = 8 x rate`` mapping used here.
"""

from __future__ import annotations

from repro.apps.application import Application, TierSpec
from repro.apps.transactions import TransactionType

#: Tier topology of a RUBiS deployment: Apache is never replicated; the
#: Tomcat and MySQL tiers replicate up to two copies (MySQL through the
#: master-slave mechanism described in the paper).
RUBIS_TIERS: tuple[TierSpec, ...] = (
    TierSpec(name="web", software="apache", min_replicas=1, max_replicas=1),
    TierSpec(name="app", software="tomcat", min_replicas=1, max_replicas=2),
    TierSpec(name="db", software="mysql", min_replicas=1, max_replicas=2),
)

#: Mix-weighted mean CPU seconds per request each tier should consume;
#: chosen so the default configuration sits near the 400 ms target.
_TIER_MEAN_DEMAND = {"web": 0.0012, "app": 0.0032, "db": 0.0070}

#: Concurrent sessions per request-per-second of offered load.
_SESSIONS_PER_REQ_PER_SEC = 8.0

# (name, mix fraction, web visits, app visits, db visits, relative weight)
# The relative weight scales a transaction's per-visit demand against
# the tier mean: search transactions are heavier than static pages.
_BROWSE_MIX = (
    ("home", 0.08, 1, 0, 0, 0.6),
    ("browse", 0.06, 1, 0, 0, 0.6),
    ("browse-categories", 0.12, 1, 1, 2, 0.8),
    ("search-items-in-category", 0.25, 1, 1, 5, 1.3),
    ("browse-regions", 0.06, 1, 1, 2, 0.8),
    ("browse-categories-in-region", 0.06, 1, 1, 3, 0.9),
    ("search-items-in-region", 0.12, 1, 1, 5, 1.3),
    ("view-item", 0.15, 1, 1, 3, 1.0),
    ("view-user-info", 0.10, 1, 1, 4, 1.1),
)


def rate_to_sessions(request_rate: float) -> float:
    """Concurrent user sessions needed to offer ``request_rate`` req/s."""
    if request_rate < 0:
        raise ValueError(f"negative request rate {request_rate!r}")
    return request_rate * _SESSIONS_PER_REQ_PER_SEC


def sessions_to_rate(sessions: float) -> float:
    """Offered request rate (req/s) of ``sessions`` concurrent sessions."""
    if sessions < 0:
        raise ValueError(f"negative session count {sessions!r}")
    return sessions / _SESSIONS_PER_REQ_PER_SEC


def make_rubis_application(name: str, demand_scale: float = 1.0) -> Application:
    """Build one RUBiS application instance.

    Parameters
    ----------
    name:
        Application name, e.g. ``"RUBiS-1"``.
    demand_scale:
        Multiplier on every CPU demand; 1.0 reproduces the paper's
        setup, other values model faster/slower transaction mixes.
    """
    if demand_scale <= 0:
        raise ValueError(f"demand_scale must be positive, got {demand_scale!r}")

    # First pass: raw per-visit demands proportional to the relative
    # weights, then normalize each tier so the mix-weighted mean demand
    # per request equals the calibration anchor.
    raw_mean = {tier: 0.0 for tier in _TIER_MEAN_DEMAND}
    for _, mix, web_v, app_v, db_v, weight in _BROWSE_MIX:
        raw_mean["web"] += mix * web_v * weight
        raw_mean["app"] += mix * app_v * weight
        raw_mean["db"] += mix * db_v * weight
    tier_unit = {
        tier: demand_scale * _TIER_MEAN_DEMAND[tier] / raw_mean[tier]
        for tier in _TIER_MEAN_DEMAND
    }

    transactions = []
    for txn_name, mix, web_v, app_v, db_v, weight in _BROWSE_MIX:
        visits = {"web": float(web_v), "app": float(app_v), "db": float(db_v)}
        demand = {
            tier: weight * tier_unit[tier]
            for tier, count in visits.items()
            if count > 0
        }
        transactions.append(
            TransactionType(
                name=txn_name,
                mix_fraction=mix,
                visits=visits,
                demand_per_visit=demand,
            )
        )
    return Application(name=name, tiers=RUBIS_TIERS, transactions=transactions)
