"""Multi-tier application descriptions.

An :class:`Application` bundles the tier topology, transaction mix,
and replication rules of one hosted service.  It also provides the
mix-weighted aggregate CPU demand per tier, which is what the LQN
solver and the Perf-Pwr optimizer consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.apps.transactions import TransactionType, validate_mix
from repro.core.config import VmCatalog, VmDescriptor


@dataclass(frozen=True)
class TierSpec:
    """One tier of a multi-tier application.

    ``min_replicas``/``max_replicas`` encode the paper's replication
    rules (Apache fixed at one replica, Tomcat/MySQL up to two).
    """

    name: str
    software: str
    min_replicas: int = 1
    max_replicas: int = 1
    vm_memory_mb: int = 200

    def __post_init__(self) -> None:
        if self.min_replicas < 1:
            raise ValueError(f"tier {self.name}: min_replicas must be >= 1")
        if self.max_replicas < self.min_replicas:
            raise ValueError(
                f"tier {self.name}: max_replicas {self.max_replicas} < "
                f"min_replicas {self.min_replicas}"
            )


class Application:
    """A distributed application composed of tiers and transactions."""

    def __init__(
        self,
        name: str,
        tiers: Sequence[TierSpec],
        transactions: Sequence[TransactionType],
    ) -> None:
        if not tiers:
            raise ValueError(f"application {name!r} needs at least one tier")
        validate_mix(transactions)
        tier_names = {tier.name for tier in tiers}
        if len(tier_names) != len(tiers):
            raise ValueError(f"application {name!r} has duplicate tier names")
        for txn in transactions:
            unknown = set(txn.tiers()) - tier_names
            if unknown:
                raise ValueError(
                    f"transaction {txn.name!r} visits unknown tiers {unknown}"
                )
        self.name = name
        self.tiers: tuple[TierSpec, ...] = tuple(tiers)
        self.transactions: tuple[TransactionType, ...] = tuple(transactions)
        self._tier_by_name = {tier.name: tier for tier in self.tiers}

    def __repr__(self) -> str:
        tiers = "/".join(tier.name for tier in self.tiers)
        return f"Application({self.name!r}, tiers={tiers})"

    def tier(self, tier_name: str) -> TierSpec:
        """Tier spec by name; raises ``KeyError`` if unknown."""
        return self._tier_by_name[tier_name]

    def tier_names(self) -> tuple[str, ...]:
        """Names of all tiers, front to back."""
        return tuple(tier.name for tier in self.tiers)

    def mean_tier_demand(self, tier_name: str) -> float:
        """Mix-weighted mean CPU seconds per application request at a tier."""
        return sum(
            txn.mix_fraction * txn.tier_demand(tier_name)
            for txn in self.transactions
        )

    def mean_tier_visits(self, tier_name: str) -> float:
        """Mix-weighted mean visits per application request at a tier."""
        return sum(
            txn.mix_fraction * txn.visits.get(tier_name, 0.0)
            for txn in self.transactions
        )

    def demand_profile(self) -> dict[str, float]:
        """Tier name -> mean CPU seconds per request, for all tiers."""
        return {
            tier.name: self.mean_tier_demand(tier.name) for tier in self.tiers
        }

    def vm_descriptors(self) -> tuple[VmDescriptor, ...]:
        """Descriptors for every replica slot (up to max replication).

        VM ids follow ``<app>-<tier>-<k>`` with ``k`` counting replicas
        from zero; replicas beyond a tier's current replication level
        are dormant in the cold pool.
        """
        descriptors = []
        for tier in self.tiers:
            for index in range(tier.max_replicas):
                descriptors.append(
                    VmDescriptor(
                        vm_id=f"{self.name}-{tier.name}-{index}",
                        app_name=self.name,
                        tier_name=tier.name,
                        memory_mb=tier.vm_memory_mb,
                    )
                )
        return tuple(descriptors)


class ApplicationSet:
    """The set of applications managed by one controller deployment."""

    def __init__(self, applications: Iterable[Application]) -> None:
        self._apps: dict[str, Application] = {}
        for app in applications:
            if app.name in self._apps:
                raise ValueError(f"duplicate application name {app.name!r}")
            self._apps[app.name] = app
        if not self._apps:
            raise ValueError("ApplicationSet needs at least one application")

    def __iter__(self) -> Iterator[Application]:
        return iter(self._apps.values())

    def __len__(self) -> int:
        return len(self._apps)

    def __contains__(self, app_name: str) -> bool:
        return app_name in self._apps

    def get(self, app_name: str) -> Application:
        """Application by name; raises ``KeyError`` if unknown."""
        return self._apps[app_name]

    def names(self) -> tuple[str, ...]:
        """Application names in insertion order."""
        return tuple(self._apps)

    def build_catalog(self) -> VmCatalog:
        """Catalog of every VM (all replica slots) across all apps."""
        descriptors: list[VmDescriptor] = []
        for app in self._apps.values():
            descriptors.extend(app.vm_descriptors())
        return VmCatalog(descriptors)
