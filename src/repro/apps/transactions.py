"""Transaction types and their call graphs.

Each transaction type (paper §II-A: home, login, search, browse, ...)
generates a unique call graph through a subset of the application
tiers.  We represent the call graph by the number of synchronous visits
the transaction makes to each tier and the CPU demand per visit.  The
mix fraction gives the probability of the transaction within the
application's workload mix, so the application-level request rate can
be decomposed into per-transaction rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping


@dataclass(frozen=True)
class TransactionType:
    """One user-visible transaction and its resource footprint.

    Attributes
    ----------
    name:
        Transaction name, e.g. ``"browse-categories"``.
    mix_fraction:
        Probability of this transaction in the workload mix; the
        fractions of an application's transactions sum to 1.
    visits:
        Tier name -> number of synchronous calls the transaction makes
        into that tier (0 = tier not on the call graph).
    demand_per_visit:
        Tier name -> CPU seconds consumed per visit at full CPU speed.
    """

    name: str
    mix_fraction: float
    visits: Mapping[str, float]
    demand_per_visit: Mapping[str, float]

    def __post_init__(self) -> None:
        if not 0.0 <= self.mix_fraction <= 1.0:
            raise ValueError(
                f"{self.name}: mix_fraction must be in [0, 1], got "
                f"{self.mix_fraction!r}"
            )
        for tier, count in self.visits.items():
            if count < 0:
                raise ValueError(f"{self.name}: negative visits at {tier!r}")
        for tier, demand in self.demand_per_visit.items():
            if demand < 0:
                raise ValueError(f"{self.name}: negative demand at {tier!r}")
        missing = set(self.demand_per_visit) - set(self.visits)
        if missing:
            raise ValueError(
                f"{self.name}: demand given for tiers without visits: {missing}"
            )
        object.__setattr__(self, "visits", dict(self.visits))
        object.__setattr__(self, "demand_per_visit", dict(self.demand_per_visit))

    def tier_demand(self, tier_name: str) -> float:
        """Total CPU seconds this transaction consumes at one tier."""
        return self.visits.get(tier_name, 0.0) * self.demand_per_visit.get(
            tier_name, 0.0
        )

    def tiers(self) -> tuple[str, ...]:
        """Tiers on this transaction's call graph (with >=1 visit)."""
        return tuple(tier for tier, count in self.visits.items() if count > 0)


def validate_mix(transactions: Iterable[TransactionType]) -> None:
    """Check that mix fractions form a probability distribution."""
    transactions = list(transactions)
    if not transactions:
        raise ValueError("empty transaction mix")
    total = sum(txn.mix_fraction for txn in transactions)
    if abs(total - 1.0) > 1e-6:
        raise ValueError(f"mix fractions sum to {total:.6f}, expected 1.0")
    names = [txn.name for txn in transactions]
    if len(set(names)) != len(names):
        raise ValueError("duplicate transaction names in mix")
