"""Adaptive ARMA filter for stability-interval prediction (paper §III-D).

The estimator combines the last measured stability interval with the
mean of the ``k`` previous measurements:

    CW^e_{j+1} = (1 - beta) * CW^m_j + beta * mean(CW^m_{j-1..j-k})

``beta`` is set adaptively from the estimation error:

    eps_j = (1 - gamma) * |CW^e_j - CW^m_j| + gamma * mean(eps_{j-1..j-k})
    beta  = 1 - eps_j / max(eps_{j-k..j})

so a small current error (the estimate tracked the measurement well)
yields a small ``beta`` — weight on the fresh measurement — while large
errors push weight onto history.  The paper uses ``k = 3`` and
``gamma = 0.5``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


@dataclass
class EstimatorState:
    """Snapshot of the filter after an observation (for diagnostics)."""

    measured: float
    estimate_next: float
    beta: float
    error: float


class StabilityIntervalEstimator:
    """Predicts the next stability interval from measured intervals."""

    def __init__(
        self,
        history: int = 3,
        gamma: float = 0.5,
        initial_estimate: float = 120.0,
    ) -> None:
        if history < 1:
            raise ValueError("history must be >= 1")
        if not 0.0 <= gamma <= 1.0:
            raise ValueError("gamma must be in [0, 1]")
        if initial_estimate <= 0:
            raise ValueError("initial_estimate must be positive")
        self._k = history
        self._gamma = gamma
        self._measurements: deque[float] = deque(maxlen=history)
        self._errors: deque[float] = deque(maxlen=history + 1)
        self._estimate = float(initial_estimate)
        self.trace: list[EstimatorState] = []

    @property
    def estimate(self) -> float:
        """Current prediction of the next stability interval (seconds)."""
        return self._estimate

    def observe(self, measured_interval: float) -> float:
        """Feed one measured stability interval; returns the new estimate."""
        if measured_interval < 0:
            raise ValueError("measured_interval must be >= 0")
        measured = float(measured_interval)

        # Error of the *previous* estimate against this measurement,
        # smoothed with the k previous errors.
        instant_error = abs(self._estimate - measured)
        if self._errors:
            history_error = sum(self._errors) / len(self._errors)
        else:
            history_error = instant_error
        error = (1.0 - self._gamma) * instant_error + self._gamma * history_error

        # The paper's text says a low error should yield a low beta
        # (trust the fresh measurement) and a high error a high beta
        # (fall back on history); its formula ``1 - eps/max(eps)`` does
        # the opposite for the largest error, so we follow the prose:
        # beta grows with the normalized current error.
        peak_error = max([error, *self._errors]) if self._errors else error
        beta = (error / peak_error) if peak_error > 0 else 0.0
        beta = min(max(beta, 0.0), 1.0)

        if self._measurements:
            history_mean = sum(self._measurements) / len(self._measurements)
        else:
            history_mean = measured
        estimate_next = (1.0 - beta) * measured + beta * history_mean

        self._errors.append(error)
        self._measurements.append(measured)
        self._estimate = estimate_next
        self.trace.append(
            EstimatorState(
                measured=measured,
                estimate_next=estimate_next,
                beta=beta,
                error=error,
            )
        )
        return estimate_next

    def mean_relative_error(self) -> float:
        """Mean |estimate - measured| / measured over the observation trace.

        Compares each measurement against the estimate that was current
        when the measurement arrived (Fig. 6's accuracy metric, ~14% in
        the paper).
        """
        if len(self.trace) < 2:
            return 0.0
        errors = []
        for previous, current in zip(self.trace, self.trace[1:]):
            if current.measured > 0:
                errors.append(
                    abs(previous.estimate_next - current.measured)
                    / current.measured
                )
        return sum(errors) / len(errors) if errors else 0.0
