"""Workload bands and stability-interval measurement (paper §II-B, §III-D).

Each controller watches the per-application workload through a *band*
of width ``b`` centered on the workload measured when the band was
(re)established.  While every application stays inside its band the
system is in a stability interval; the moment any application escapes,
the monitor measures the elapsed interval, feeds it to the ARMA
estimator, re-centers all bands on the current workloads, and reports
the escape so the controller can re-evaluate the configuration.

A band width of zero (the paper's 1st-level controllers) makes every
observation an escape, i.e. periodic invocation at the monitoring
interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.workload.arma import StabilityIntervalEstimator


@dataclass(frozen=True)
class BandEscape:
    """One workload-band escape event."""

    time: float
    escaped_apps: tuple[str, ...]
    measured_interval: float
    estimated_next_interval: float
    workloads: Mapping[str, float]


class WorkloadMonitor:
    """Tracks workload bands for one controller."""

    def __init__(
        self,
        band_width: float,
        estimator: Optional[StabilityIntervalEstimator] = None,
        app_names: Optional[tuple[str, ...]] = None,
    ) -> None:
        if band_width < 0:
            raise ValueError("band_width must be >= 0")
        self.band_width = band_width
        self.estimator = estimator or StabilityIntervalEstimator()
        self._app_names = app_names
        self._centers: Optional[dict[str, float]] = None
        self._band_start: float = 0.0
        self.escapes: list[BandEscape] = []

    @property
    def band_centers(self) -> Optional[dict[str, float]]:
        """Current band centers, or ``None`` before the first sample."""
        return dict(self._centers) if self._centers is not None else None

    def current_interval_start(self) -> float:
        """When the current stability interval began."""
        return self._band_start

    def _escaped(self, workloads: Mapping[str, float]) -> tuple[str, ...]:
        assert self._centers is not None
        half = self.band_width / 2.0
        return tuple(
            app
            for app, rate in workloads.items()
            if app in self._centers and abs(rate - self._centers[app]) > half
        )

    def observe(
        self, now: float, workloads: Mapping[str, float]
    ) -> Optional[BandEscape]:
        """Feed one monitoring sample; returns an escape event or None.

        The first observation establishes the bands and counts as an
        escape (the controller must evaluate the initial placement).
        """
        tracked = (
            {app: workloads[app] for app in self._app_names}
            if self._app_names is not None
            else dict(workloads)
        )
        if self._centers is None:
            self._centers = dict(tracked)
            self._band_start = now
            event = BandEscape(
                time=now,
                escaped_apps=tuple(sorted(tracked)),
                measured_interval=0.0,
                estimated_next_interval=self.estimator.estimate,
                workloads=dict(tracked),
            )
            self.escapes.append(event)
            return event

        escaped = self._escaped(tracked)
        if not escaped:
            return None

        measured = now - self._band_start
        estimate = (
            self.estimator.observe(measured) if measured > 0
            else self.estimator.estimate
        )
        self._centers = dict(tracked)
        self._band_start = now
        event = BandEscape(
            time=now,
            escaped_apps=escaped,
            measured_interval=measured,
            estimated_next_interval=estimate,
            workloads=dict(tracked),
        )
        self.escapes.append(event)
        return event

    def force_escape(
        self, now: float, workloads: Mapping[str, float]
    ) -> BandEscape:
        """Re-center the bands and report an escape unconditionally.

        Used by the resilience layer to force re-planning after an
        aborted adaptation plan: the workloads may still sit inside
        their bands, but the cluster is no longer in the configuration
        the last decision assumed.  The interrupted interval is *not*
        fed to the ARMA estimator — the escape is synthetic, not a
        workload shift, and would bias the stability statistics.
        """
        tracked = (
            {app: workloads[app] for app in self._app_names}
            if self._app_names is not None
            else dict(workloads)
        )
        self._centers = dict(tracked)
        self._band_start = now
        event = BandEscape(
            time=now,
            escaped_apps=tuple(sorted(tracked)),
            measured_interval=0.0,
            estimated_next_interval=self.estimator.estimate,
            workloads=dict(tracked),
        )
        self.escapes.append(event)
        return event

    def measured_intervals(self) -> list[float]:
        """All positive measured stability intervals so far."""
        return [
            escape.measured_interval
            for escape in self.escapes
            if escape.measured_interval > 0
        ]
