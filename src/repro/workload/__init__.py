"""Workload substrate: traces, bands, and stability-interval prediction.

The paper drives four RUBiS applications with a scaled day of the 1998
World Cup web trace (RUBiS-1/2) and of an HP customer web-server trace
(RUBiS-3/4), both shifted into the 0-100 req/s range over a 15:00-21:30
horizon.  :mod:`repro.workload.traces` generates synthetic equivalents
with the documented shapes.  :mod:`repro.workload.arma` implements the
adaptive ARMA filter for stability-interval prediction (paper §III-D)
and :mod:`repro.workload.monitor` the workload-band bookkeeping that
triggers controller invocations.
"""

from repro.workload.traces import (
    EXPERIMENT_DURATION,
    Trace,
    hp_trace,
    standard_traces,
    world_cup_trace,
)
from repro.workload.arma import StabilityIntervalEstimator
from repro.workload.monitor import BandEscape, WorkloadMonitor

__all__ = [
    "EXPERIMENT_DURATION",
    "Trace",
    "hp_trace",
    "standard_traces",
    "world_cup_trace",
    "StabilityIntervalEstimator",
    "BandEscape",
    "WorkloadMonitor",
]
