"""Synthetic workload traces shaped like the paper's (Fig. 4).

The experiment horizon runs from 15:00 to 21:30 (t = 0 .. 23 400 s).
``world_cup_trace`` reproduces the scaled World Cup '98 day: a moderate
afternoon level, a sharp flash crowd around 16:52-17:14, and a broad
evening peak near the 100 req/s ceiling.  ``hp_trace`` reproduces the
scaled HP customer trace: a smoother, lower-amplitude business curve.
Traces are piecewise-linear over breakpoints with a deterministic
small-amplitude ripple so that consecutive monitoring intervals differ
slightly, exercising the workload bands.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Sequence

#: Seconds from 15:00 to 21:30.
EXPERIMENT_DURATION = 6.5 * 3600.0


def _minutes(hours: float, minutes: float = 0.0) -> float:
    """Seconds since 15:00 for a wall-clock ``hours:minutes``."""
    return (hours - 15.0) * 3600.0 + minutes * 60.0


class Trace:
    """Piecewise-linear request-rate trace with deterministic ripple."""

    def __init__(
        self,
        breakpoints: Sequence[tuple[float, float]],
        ripple_amplitude: float = 1.5,
        ripple_period: float = 900.0,
        ripple_harmonic: float = 0.5,
        phase: float = 0.0,
        floor: float = 0.0,
        ceiling: float = 100.0,
        name: str = "trace",
    ) -> None:
        if len(breakpoints) < 2:
            raise ValueError("a trace needs at least two breakpoints")
        times = [time for time, _ in breakpoints]
        if times != sorted(times):
            raise ValueError("breakpoints must be sorted by time")
        if len(set(times)) != len(times):
            raise ValueError("duplicate breakpoint times")
        self.name = name
        self._times = times
        self._rates = [rate for _, rate in breakpoints]
        self._ripple_amplitude = ripple_amplitude
        self._ripple_period = ripple_period
        self._ripple_harmonic = ripple_harmonic
        self._phase = phase
        self._floor = floor
        self._ceiling = ceiling

    def baseline(self, t: float) -> float:
        """Piecewise-linear rate without the ripple."""
        if t <= self._times[0]:
            return self._rates[0]
        if t >= self._times[-1]:
            return self._rates[-1]
        index = bisect_right(self._times, t) - 1
        t0, t1 = self._times[index], self._times[index + 1]
        r0, r1 = self._rates[index], self._rates[index + 1]
        fraction = (t - t0) / (t1 - t0)
        return r0 + fraction * (r1 - r0)

    def rate(self, t: float) -> float:
        """Offered request rate (req/s) at experiment time ``t``.

        The ripple is a triangle wave (constant |slope|, so workload
        bands are crossed at a steady cadence on plateaus — the quality
        that makes stability intervals predictable) plus a small
        sinusoidal harmonic for texture.
        """
        cycle = (t / self._ripple_period + self._phase / (2.0 * math.pi)) % 1.0
        triangle = 4.0 * abs(cycle - 0.5) - 1.0
        ripple = self._ripple_amplitude * (
            triangle
            + self._ripple_harmonic
            * math.sin(
                2.0 * math.pi * t / (self._ripple_period / 3.1)
                + 2.0 * self._phase
            )
        )
        value = self.baseline(t) + ripple
        return min(self._ceiling, max(self._floor, value))

    def __call__(self, t: float) -> float:
        return self.rate(t)

    def sample_series(
        self, start: float, end: float, step: float
    ) -> list[tuple[float, float]]:
        """(t, rate) samples every ``step`` seconds over [start, end]."""
        if step <= 0:
            raise ValueError("step must be positive")
        samples = []
        t = start
        while t <= end + 1e-9:
            samples.append((t, self.rate(t)))
            t += step
        return samples

    def peak_rate(self, step: float = 60.0) -> float:
        """Maximum sampled rate over the full horizon."""
        return max(
            rate for _, rate in self.sample_series(0.0, EXPERIMENT_DURATION, step)
        )


def world_cup_trace(
    variant: int = 0,
    peak: float = 100.0,
    name: str = "world-cup",
) -> Trace:
    """Scaled World Cup '98 day: flash crowd plus a broad evening peak.

    ``variant`` perturbs timing and levels slightly so RUBiS-1 and
    RUBiS-2 are correlated but not identical, as in Fig. 4.
    """
    shift = 180.0 * variant  # a few minutes of offset between variants
    level = 1.0 - 0.06 * variant
    points = [
        (_minutes(15, 0), 12.0),
        (_minutes(15, 40), 18.0),
        (_minutes(16, 20), 24.0),
        (_minutes(16, 45), 30.0),
        # Flash crowd 16:52-17:14 (the interval Fig. 5 validates on).
        (_minutes(16, 52) + shift, 55.0),
        (_minutes(17, 0) + shift, 0.92 * peak),
        (_minutes(17, 8) + shift, 0.95 * peak),
        (_minutes(17, 14) + shift, 60.0),
        (_minutes(17, 30), 38.0),
        (_minutes(18, 0), 34.0),
        (_minutes(18, 40), 45.0),
        # Broad evening peak.
        (_minutes(19, 20), 70.0),
        (_minutes(19, 50) + shift, 0.88 * peak),
        (_minutes(20, 20), 75.0),
        (_minutes(20, 50), 52.0),
        (_minutes(21, 10), 38.0),
        (_minutes(21, 30), 30.0),
    ]
    scaled = [(time, level * rate) for time, rate in points]
    return Trace(
        scaled,
        ripple_amplitude=2.5,
        ripple_period=1500.0,
        ripple_harmonic=0.15,
        phase=0.9 * variant,
        name=f"{name}-{variant}",
    )


def hp_trace(
    variant: int = 0,
    name: str = "hp",
) -> Trace:
    """Scaled HP customer trace: a smooth, moderate business curve."""
    level = 1.0 - 0.08 * variant
    points = [
        (_minutes(15, 0), 30.0),
        (_minutes(15, 45), 36.0),
        (_minutes(16, 30), 42.0),
        (_minutes(17, 15), 47.0),
        (_minutes(18, 0), 50.0),
        (_minutes(18, 45), 46.0),
        (_minutes(19, 30), 40.0),
        (_minutes(20, 15), 33.0),
        (_minutes(21, 0), 27.0),
        (_minutes(21, 30), 24.0),
    ]
    scaled = [(time, level * rate) for time, rate in points]
    return Trace(
        scaled,
        ripple_amplitude=2.0,
        ripple_period=1800.0,
        ripple_harmonic=0.12,
        phase=1.7 + 0.8 * variant,
        name=f"{name}-{variant}",
    )


def standard_traces(app_names: Sequence[str]) -> dict[str, Trace]:
    """The paper's assignment: first two apps World Cup, rest HP."""
    traces: dict[str, Trace] = {}
    for index, app_name in enumerate(app_names):
        if index < 2:
            traces[app_name] = world_cup_trace(variant=index)
        else:
            traces[app_name] = hp_trace(variant=index - 2)
    return traces
