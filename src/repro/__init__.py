"""Reproduction of *Mistral: Dynamically Managing Power, Performance,
and Adaptation Cost in Cloud Infrastructures* (ICDCS 2010).

The package provides:

- ``repro.core`` — the Mistral controller stack: configurations,
  adaptation actions, the utility model, the Perf-Pwr optimizer, the
  Naive/Self-Aware A* adaptation search, and the controller hierarchy.
- ``repro.cluster`` / ``repro.apps`` / ``repro.perfmodel`` /
  ``repro.power`` / ``repro.workload`` / ``repro.costmodel`` — the
  substrates: a simulated Xen cluster, multi-tier application models,
  the LQN performance model, the power model, workload traces with
  ARMA stability prediction, and offline cost tables.
- ``repro.baselines`` — the Perf-Pwr / Perf-Cost / Pwr-Cost baselines.
- ``repro.testbed`` — the experiment rig (scenarios, runs, metrics).
- ``repro.experiments`` — one module per paper figure/table.
- ``repro.telemetry`` — metrics registry, span tracer, and JSONL
  trace sinks (off by default; see DESIGN.md §9).
- ``repro.faults`` — deterministic fault injection (action failures,
  host crashes, stale samples) and the recovery machinery: retries,
  rollback, re-planning, search degradation (off by default; see
  docs/OPERATIONS.md and DESIGN.md §10).

Quickstart::

    from repro import telemetry
    from repro.testbed import make_testbed, build_mistral

    testbed = make_testbed(app_count=2, seed=0)
    controller, initial = build_mistral(testbed)

    telemetry.enable(jsonl_path="mistral_trace.jsonl")
    metrics = testbed.run(controller, initial, "mistral")
    telemetry.disable()

    print(metrics.cumulative_utility())
    # Then: python scripts/telemetry_report.py mistral_trace.jsonl
    # for per-controller decision tables, search/prune counts, and
    # cache hit ratios rolled up from the trace.
"""

from __future__ import annotations

__version__ = "1.0.0"

_EXPORTS = {
    "Application": "repro.apps",
    "ApplicationSet": "repro.apps",
    "TierSpec": "repro.apps",
    "TransactionType": "repro.apps",
    "make_rubis_application": "repro.apps",
    "Configuration": "repro.core.config",
    "ConstraintLimits": "repro.core.config",
    "Placement": "repro.core.config",
    "VmCatalog": "repro.core.config",
    "VmDescriptor": "repro.core.config",
    "UtilityModel": "repro.core.utility",
    "UtilityParameters": "repro.core.utility",
    "MistralController": "repro.core.controller",
    "ControllerHierarchy": "repro.core.hierarchy",
    "AdaptationSearch": "repro.core.search",
    "SearchSettings": "repro.core.search",
    "PerfPwrOptimizer": "repro.core.perf_pwr",
    "FaultConfig": "repro.faults",
    "FaultInjector": "repro.faults",
    "HostCrash": "repro.faults",
    "ScriptedActionFault": "repro.faults",
    "RecoveryPolicy": "repro.faults",
    "DegradationSettings": "repro.faults",
    "Testbed": "repro.testbed",
    "TestbedSettings": "repro.testbed",
    "demo_fault_config": "repro.testbed",
    "make_testbed": "repro.testbed",
    "build_mistral": "repro.testbed",
    "build_perf_pwr": "repro.testbed",
    "build_perf_cost": "repro.testbed",
    "build_pwr_cost": "repro.testbed",
}

__all__ = sorted(_EXPORTS) + ["__version__"]


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    return getattr(module, name)


def __dir__():
    return __all__
