"""Tests for the seeded random-stream family."""

from repro.sim.rng import RandomStreams


def test_same_seed_same_stream_reproduces():
    a = RandomStreams(42).stream("noise")
    b = RandomStreams(42).stream("noise")
    assert list(a.random(5)) == list(b.random(5))


def test_different_streams_are_independent():
    streams = RandomStreams(42)
    a = streams.stream("alpha").random(5)
    b = streams.stream("beta").random(5)
    assert list(a) != list(b)


def test_stream_is_cached_not_recreated():
    streams = RandomStreams(0)
    first = streams.stream("x")
    first.random(3)
    again = streams.stream("x")
    assert again is first


def test_adding_a_consumer_does_not_perturb_others():
    solo = RandomStreams(7)
    solo_draws = list(solo.stream("main").random(4))

    shared = RandomStreams(7)
    shared.stream("extra").random(10)  # a new consumer appears first
    assert list(shared.stream("main").random(4)) == solo_draws


def test_fork_changes_the_universe():
    base = RandomStreams(3)
    fork = base.fork("run:mistral")
    assert list(base.stream("m").random(3)) != list(fork.stream("m").random(3))


def test_fork_is_deterministic():
    a = RandomStreams(3).fork("x").stream("s").random(4)
    b = RandomStreams(3).fork("x").stream("s").random(4)
    assert list(a) == list(b)


def test_seed_property():
    assert RandomStreams(11).seed == 11
