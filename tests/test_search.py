"""Tests for the Naive / Self-Aware A* adaptation search."""

import pytest

from repro.core.actions import NullAction
from repro.core.config import Configuration, Placement
from repro.core.search import (
    ALL_ACTION_KINDS,
    AdaptationSearch,
    SearchSettings,
)

HOSTS = ("host-0", "host-1", "host-2", "host-3")


@pytest.fixture(autouse=True)
def _pin_astar_backend(monkeypatch):
    """This suite specifies the A* loop itself; the
    MISTRAL_SEARCH_STRATEGY CI leg must not swap the backend here."""
    monkeypatch.delenv("MISTRAL_SEARCH_STRATEGY", raising=False)



@pytest.fixture
def search(apps, catalog, limits, estimator, cost_manager, optimizer):
    return AdaptationSearch(
        apps, catalog, limits, estimator, cost_manager, optimizer, HOSTS
    )


def saturated_config():
    """Both apps underprovisioned on two hosts."""
    return Configuration(
        {
            "RUBiS-1-web-0": Placement("host-0", 0.2),
            "RUBiS-1-app-0": Placement("host-0", 0.2),
            "RUBiS-1-db-0": Placement("host-1", 0.4),
            "RUBiS-2-web-0": Placement("host-0", 0.2),
            "RUBiS-2-app-0": Placement("host-0", 0.2),
            "RUBiS-2-db-0": Placement("host-1", 0.4),
        },
        {"host-0", "host-1"},
    )


def test_near_ideal_configuration_stays_put(search, optimizer):
    workloads = {"RUBiS-1": 30.0, "RUBiS-2": 30.0}
    ideal = optimizer.optimize(workloads).configuration
    outcome = search.search(ideal, workloads, control_window=600.0)
    assert outcome.is_null
    assert outcome.final_configuration == ideal


def test_scales_up_under_load(search, catalog, limits, estimator):
    workloads = {"RUBiS-1": 60.0, "RUBiS-2": 55.0}
    outcome = search.search(
        saturated_config(), workloads, control_window=600.0
    )
    assert not outcome.is_null
    final = estimator.estimate(outcome.final_configuration, workloads)
    start = estimator.estimate(saturated_config(), workloads)
    assert final.total_rate > start.total_rate
    assert outcome.final_configuration.is_candidate(catalog, limits)


def test_plan_is_applicable_in_sequence(search, catalog, limits):
    workloads = {"RUBiS-1": 60.0, "RUBiS-2": 55.0}
    start = saturated_config()
    outcome = search.search(start, workloads, control_window=600.0)
    state = start
    for action in outcome.actions:
        state = action.apply(state, catalog, limits)
    assert state == outcome.final_configuration


def test_no_null_actions_in_plan(search):
    outcome = search.search(
        saturated_config(),
        {"RUBiS-1": 60.0, "RUBiS-2": 55.0},
        control_window=600.0,
    )
    assert not any(isinstance(a, NullAction) for a in outcome.actions)


def test_short_window_avoids_expensive_reconfiguration(search):
    workloads = {"RUBiS-1": 90.0, "RUBiS-2": 85.0}
    short = search.search(saturated_config(), workloads, control_window=120.0)
    long = search.search(saturated_config(), workloads, control_window=1800.0)
    short_time = sum(
        search.cost_manager.predict(a, saturated_config(), workloads).duration
        for a in short.actions
    )
    long_time = sum(
        search.cost_manager.predict(a, saturated_config(), workloads).duration
        for a in long.actions
    )
    assert short_time <= long_time


def test_long_window_reaches_target_capacity(search, estimator):
    workloads = {"RUBiS-1": 90.0, "RUBiS-2": 85.0}
    outcome = search.search(
        saturated_config(), workloads, control_window=1800.0
    )
    final = estimator.estimate(outcome.final_configuration, workloads)
    target = estimator.utility.parameters.target_response_time
    # At least one app pulled under target; total rate strongly improved.
    assert any(rt <= target for rt in final.response_times.values())


def test_decision_seconds_scale_with_expansions(search):
    outcome = search.search(
        saturated_config(),
        {"RUBiS-1": 60.0, "RUBiS-2": 55.0},
        control_window=600.0,
    )
    assert outcome.decision_seconds > 0.0
    if outcome.expansions > 10:
        assert outcome.decision_seconds > 0.1


def test_naive_explores_at_least_as_much(
    apps, catalog, limits, estimator, cost_manager, optimizer
):
    workloads = {"RUBiS-1": 90.0, "RUBiS-2": 85.0}
    aware = AdaptationSearch(
        apps, catalog, limits, estimator, cost_manager, optimizer, HOSTS,
        SearchSettings(self_aware=True, max_expansions=1200),
    )
    naive = AdaptationSearch(
        apps, catalog, limits, estimator, cost_manager, optimizer, HOSTS,
        SearchSettings(self_aware=False, max_expansions=1200),
    )
    aware_out = aware.search(saturated_config(), workloads, 600.0)
    naive_out = naive.search(saturated_config(), workloads, 600.0)
    assert naive_out.expansions >= aware_out.expansions
    assert naive_out.decision_seconds >= aware_out.decision_seconds


def test_scoped_search_stays_in_scope(
    apps, catalog, limits, estimator, cost_manager, optimizer
):
    scoped = AdaptationSearch(
        apps, catalog, limits, estimator, cost_manager, optimizer,
        ("host-0", "host-1"),
        SearchSettings(
            allowed_kinds=frozenset({"increase_cpu", "decrease_cpu", "migrate"})
        ),
    )
    scoped.scope_hosts = frozenset({"host-0", "host-1"})
    outcome = scoped.search(
        saturated_config(),
        {"RUBiS-1": 60.0, "RUBiS-2": 55.0},
        control_window=600.0,
    )
    for action in outcome.actions:
        assert action.kind in {"increase_cpu", "decrease_cpu", "migrate"}
        target_host = getattr(action, "target_host", None)
        if target_host is not None:
            assert target_host in {"host-0", "host-1"}
    # Untouched hosts stay dark.
    assert outcome.final_configuration.powered_hosts == {"host-0", "host-1"}


def test_allowed_kinds_restrict_actions(
    apps, catalog, limits, estimator, cost_manager, optimizer
):
    cap_only = AdaptationSearch(
        apps, catalog, limits, estimator, cost_manager, optimizer, HOSTS,
        SearchSettings(
            allowed_kinds=frozenset({"increase_cpu", "decrease_cpu"})
        ),
    )
    outcome = cap_only.search(
        saturated_config(),
        {"RUBiS-1": 60.0, "RUBiS-2": 55.0},
        control_window=600.0,
    )
    assert all(
        action.kind in {"increase_cpu", "decrease_cpu"}
        for action in outcome.actions
    )


def test_settings_validation():
    with pytest.raises(ValueError):
        SearchSettings(prune_fraction=0.0)
    with pytest.raises(ValueError):
        SearchSettings(per_vertex_seconds=0.0)
    with pytest.raises(ValueError):
        SearchSettings(max_expansions=0)


def test_expected_utility_budget_triggers_pruning(
    apps, catalog, limits, estimator, cost_manager, optimizer
):
    search = AdaptationSearch(
        apps, catalog, limits, estimator, cost_manager, optimizer, HOSTS,
        SearchSettings(self_aware=True),
    )
    workloads = {"RUBiS-1": 90.0, "RUBiS-2": 85.0}
    outcome = search.search(
        saturated_config(),
        workloads,
        control_window=1800.0,
        expected_utility=-1e9,  # budget already exhausted
        expected_rate=0.0,
    )
    # With no budget, pruning kicks in immediately (if any expansion ran).
    if outcome.expansions > 0:
        assert outcome.pruning_activated
