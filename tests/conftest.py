"""Shared fixtures for the test suite.

Heavyweight artifacts (cost tables, testbeds) are session-scoped; most
tests run against a small 2-application scenario.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.application import ApplicationSet
from repro.apps.rubis import make_rubis_application
from repro.core.config import Configuration, ConstraintLimits, Placement
from repro.core.estimator import UtilityEstimator
from repro.core.perf_pwr import PerfPwrOptimizer
from repro.core.utility import UtilityModel
from repro.costmodel.manager import CostManager
from repro.costmodel.measurement import MeasurementCampaign, run_campaign
from repro.perfmodel.lqn import parameters_for
from repro.perfmodel.solver import LqnSolver
from repro.power.model import HostPowerModel, SystemPowerModel

HOSTS = tuple(f"host-{index}" for index in range(4))


@pytest.fixture(scope="session")
def apps() -> ApplicationSet:
    return ApplicationSet(
        [make_rubis_application("RUBiS-1"), make_rubis_application("RUBiS-2")]
    )


@pytest.fixture(scope="session")
def catalog(apps):
    return apps.build_catalog()


@pytest.fixture(scope="session")
def limits() -> ConstraintLimits:
    return ConstraintLimits()


@pytest.fixture(scope="session")
def solver(apps, catalog) -> LqnSolver:
    return LqnSolver(catalog, parameters_for(apps))


@pytest.fixture(scope="session")
def power_models() -> SystemPowerModel:
    return SystemPowerModel.uniform(HOSTS, HostPowerModel())


@pytest.fixture(scope="session")
def utility() -> UtilityModel:
    return UtilityModel()


@pytest.fixture(scope="session")
def estimator(solver, power_models, utility, catalog) -> UtilityEstimator:
    return UtilityEstimator(solver, power_models, utility, catalog)


@pytest.fixture(scope="session")
def optimizer(apps, catalog, limits, estimator) -> PerfPwrOptimizer:
    return PerfPwrOptimizer(apps, catalog, limits, estimator, HOSTS)


@pytest.fixture(scope="session")
def cost_table(apps, limits):
    campaign = MeasurementCampaign(
        target_app=apps.get("RUBiS-1"),
        background_app=apps.get("RUBiS-2"),
        host_ids=[f"rig-{index}" for index in range(8)],
        limits=limits,
        placements_per_point=4,
    )
    return run_campaign(campaign, rng=np.random.default_rng(1))


@pytest.fixture(scope="session")
def cost_manager(cost_table, catalog) -> CostManager:
    return CostManager(cost_table, catalog)


@pytest.fixture
def base_configuration() -> Configuration:
    """A feasible 2-app starting configuration on two hosts."""
    return Configuration(
        {
            "RUBiS-1-web-0": Placement("host-0", 0.2),
            "RUBiS-1-app-0": Placement("host-0", 0.2),
            "RUBiS-1-db-0": Placement("host-1", 0.4),
            "RUBiS-2-web-0": Placement("host-0", 0.2),
            "RUBiS-2-app-0": Placement("host-0", 0.2),
            "RUBiS-2-db-0": Placement("host-1", 0.4),
        },
        {"host-0", "host-1"},
    )


@pytest.fixture(scope="session")
def small_testbed():
    """A 2-app testbed shared by integration-style tests."""
    from repro.testbed import make_testbed

    return make_testbed(app_count=2, seed=0)
