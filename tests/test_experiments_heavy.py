"""Tests for the testbed-backed experiment modules (Figs. 5 and 7).

These share the memoized experiment testbed; the strategy-comparison
experiments (Figs. 8-10, Table I) are exercised by the benchmarks.
"""

import pytest

from repro.experiments.fig5_model_accuracy import run_fig5
from repro.experiments.fig7_adaptation_costs import (
    FIG7_ACTIONS,
    monotonicity_checks,
    power_cycle_costs,
    run_fig7,
)


@pytest.fixture(scope="module")
def fig5():
    return run_fig5(app_count=2, seed=0)


def test_fig5_covers_the_flash_crowd_window(fig5):
    assert len(fig5.points) >= 10
    assert fig5.points[0].time == pytest.approx(6720.0)


def test_fig5_errors_in_reported_range(fig5):
    assert 0.0 < fig5.rt_error() < 0.20
    assert 0.0 < fig5.util_error() < 0.10
    assert 0.0 < fig5.power_error() < 0.10


def test_fig5_model_is_not_the_truth(fig5):
    # If model == experiment everywhere, the calibration split is broken.
    assert any(
        abs(p.rt_model - p.rt_experiment) > 1e-6 for p in fig5.points
    )


@pytest.fixture(scope="module")
def fig7_rows():
    return run_fig7(app_count=2, seed=0)


def test_fig7_covers_all_plotted_actions(fig7_rows):
    actions = {row["action"] for row in fig7_rows}
    assert actions == {label for _, _, label in FIG7_ACTIONS}


def test_fig7_sessions_axis_matches_paper(fig7_rows):
    sessions = sorted({row["sessions"] for row in fig7_rows})
    assert sessions[0] == 100 and sessions[-1] == 800


def test_fig7_costs_grow_with_workload(fig7_rows):
    checks = monotonicity_checks(fig7_rows)
    assert all(checks.values()), checks


def test_fig7_magnitudes_match_paper_shapes(fig7_rows):
    mysql_add = [
        row for row in fig7_rows if row["action"] == "Add replica (MySQL)"
    ]
    peak = max(float(row["delay_ms"]) for row in mysql_add)
    assert 50_000 <= peak <= 120_000  # paper Fig. 7c: ~70 s
    deltas = [float(row["delta_watt_pct"]) for row in fig7_rows]
    assert all(2.0 <= value <= 30.0 for value in deltas)


def test_power_cycle_costs_match_section_vb():
    cycles = power_cycle_costs(app_count=2, seed=0)
    assert cycles["power_on"]["duration_s"] == pytest.approx(90.0, rel=0.15)
    assert cycles["power_on"]["delta_watts"] == pytest.approx(80.0, rel=0.15)
    assert cycles["power_off"]["duration_s"] == pytest.approx(30.0, rel=0.15)
    assert cycles["power_off"]["delta_watts"] == pytest.approx(20.0, rel=0.15)
