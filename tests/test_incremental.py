"""Equivalence tests for the incremental evaluation engine.

The engine's contract is *bit-compatibility*: a delta-solved estimate
and a delta-evaluated search must match the from-scratch path exactly
— same solver outputs, same chosen actions, same predicted utility —
so turning the engine on can never change a controller's decision.
"""

from __future__ import annotations

import random

import pytest

from repro.core.config import Configuration, Placement
from repro.core.estimator import FeedbackUtilityEstimator
from repro.core.feedback import ModelFeedback
from repro.core.search import AdaptationSearch, SearchSettings
from repro.testbed.scenarios import (
    _global_perf_pwr,
    initial_configuration,
    make_testbed,
)


@pytest.fixture(autouse=True)
def _pin_astar_backend(monkeypatch):
    """This suite specifies the A* loop itself; the
    MISTRAL_SEARCH_STRATEGY CI leg must not swap the backend here."""
    monkeypatch.delenv("MISTRAL_SEARCH_STRATEGY", raising=False)



CAP_STEPS = tuple(round(0.1 * step, 10) for step in range(1, 11))


def _random_step(rng, configuration, catalog):
    """One random structural edit; returns (child, changed_vm_ids).

    Draws from the same move set the adaptation actions produce: cap
    change, migration, replica removal, replica activation, and host
    power-on (which moves no VM — the delta contract's empty case).
    """
    placed = list(configuration.placed_vm_ids())
    powered = sorted(configuration.powered_hosts)
    dormant = [
        vm_id
        for vm_id in catalog.vm_ids()
        if not configuration.is_placed(vm_id)
    ]
    unpowered = sorted(
        {f"host-{index}" for index in range(4)} - configuration.powered_hosts
    )
    ops = ["cap", "migrate"]
    if len(placed) > 1:
        ops.append("remove")
    if dormant:
        ops.append("add")
    if unpowered:
        ops.append("power_on")
    op = rng.choice(ops)
    if op == "cap":
        vm_id = rng.choice(placed)
        placement = configuration.placement_of(vm_id)
        child = configuration.replace(
            vm_id, placement.with_cap(rng.choice(CAP_STEPS))
        )
        return child, (vm_id,)
    if op == "migrate":
        vm_id = rng.choice(placed)
        placement = configuration.placement_of(vm_id)
        child = configuration.replace(
            vm_id, Placement(rng.choice(powered), placement.cpu_cap)
        )
        return child, (vm_id,)
    if op == "remove":
        vm_id = rng.choice(placed)
        return configuration.remove(vm_id), (vm_id,)
    if op == "add":
        vm_id = rng.choice(dormant)
        child = configuration.replace(
            vm_id, Placement(rng.choice(powered), rng.choice(CAP_STEPS))
        )
        return child, (vm_id,)
    return configuration.power_on(rng.choice(unpowered)), ()


def _assert_estimates_identical(delta, full):
    """Bit-exact equality of two ``PerformanceEstimate`` objects."""
    assert delta.response_times == full.response_times
    assert delta.tier_utilizations == full.tier_utilizations
    assert delta.vm_utilizations == full.vm_utilizations
    assert delta.host_utilizations == full.host_utilizations
    assert delta.saturated_apps == full.saturated_apps


# -- solver: delta chain vs. fresh solves --------------------------------------


@pytest.mark.perf_smoke
@pytest.mark.parametrize("seed", range(24))
def test_solver_delta_chain_matches_full_solve(
    seed, solver, catalog, base_configuration
):
    """A random walk of single-VM edits, delta-solved along the chain,
    reproduces every fresh solve bit for bit (24 randomized configs)."""
    rng = random.Random(seed)
    workloads = {
        "RUBiS-1": rng.uniform(5.0, 60.0),
        "RUBiS-2": rng.uniform(5.0, 60.0),
    }
    configuration = base_configuration
    state = solver.solve_state(configuration, workloads)
    _assert_estimates_identical(
        state.estimate, solver.solve(configuration, workloads)
    )
    for _ in range(6):
        configuration, changed = _random_step(rng, configuration, catalog)
        state = solver.update_state(state, configuration, workloads, changed)
        assert state.configuration == configuration
        _assert_estimates_identical(
            state.estimate, solver.solve(configuration, workloads)
        )


@pytest.mark.perf_smoke
def test_solve_host_utilizations_cover_exactly_the_powered_hosts(
    solver, base_configuration
):
    """The host-busy seeding contract: one entry per powered host, no
    more — idle powered hosts report 0.0, unpowered hosts are absent."""
    configuration = base_configuration.power_on("host-2")
    workloads = {"RUBiS-1": 20.0, "RUBiS-2": 20.0}
    estimate = solver.solve(configuration, workloads)
    assert set(estimate.host_utilizations) == configuration.powered_hosts
    assert estimate.host_utilizations["host-2"] == 0.0
    assert estimate.host_utilizations["host-0"] > 0.0
    assert estimate.host_utilizations["host-1"] > 0.0
    assert "host-3" not in estimate.host_utilizations

    # The delta path composes hosts the same way: power-on with no VM
    # moved adds exactly the idle entry.
    state = solver.solve_state(base_configuration, workloads)
    updated = solver.update_state(state, configuration, workloads, ())
    _assert_estimates_identical(updated.estimate, estimate)


# -- search: incremental vs. full evaluation -----------------------------------


@pytest.fixture(scope="module")
def _search_pair():
    """Two independent testbeds + searches, one per evaluation path.

    Separate testbeds keep the estimator caches disjoint, so the full
    path cannot silently reuse results the incremental path produced
    (which would make the comparison vacuous).
    """

    def build(incremental):
        testbed = make_testbed(2, seed=0)

        def searcher(settings_kwargs):
            return AdaptationSearch(
                testbed.applications,
                testbed.catalog,
                testbed.limits,
                testbed.estimator,
                testbed.cost_manager,
                _global_perf_pwr(testbed),
                testbed.host_ids,
                settings=SearchSettings(
                    incremental=incremental, **settings_kwargs
                ),
            )

        return testbed, searcher

    return build(True), build(False)


@pytest.mark.parametrize("seed", range(20))
def test_search_incremental_matches_full_evaluation(seed, _search_pair):
    """20 randomized scenarios: the incremental engine picks the exact
    same plan at the exact same predicted utility as full evaluation."""
    (inc_testbed, inc_build), (full_testbed, full_build) = _search_pair
    rng = random.Random(1000 + seed)
    settings_kwargs = {
        "self_aware": bool(seed % 2),
        "seed_with_plan": seed % 3 != 0,
        "max_expansions": 30,
    }
    names = [app.name for app in inc_testbed.applications]
    workloads = {
        name: rng.uniform(10.0, 55.0) for name in names
    }
    # Same perturbed start on both sides (the catalogs are identical).
    start = initial_configuration(inc_testbed)
    for _ in range(rng.randrange(0, 3)):
        start, _ = _random_step(rng, start, inc_testbed.catalog)

    inc_outcome = inc_build(settings_kwargs).search(start, workloads, 300.0)
    full_outcome = full_build(settings_kwargs).search(start, workloads, 300.0)

    assert inc_outcome.actions == full_outcome.actions
    assert (
        abs(inc_outcome.predicted_utility - full_outcome.predicted_utility)
        <= 1e-9
    )
    assert inc_outcome.expansions == full_outcome.expansions
    assert inc_outcome.final_configuration == full_outcome.final_configuration


@pytest.mark.perf_smoke
def test_incremental_engine_engages_on_the_search_hot_path(small_testbed):
    """The delta estimator path actually serves search evaluations."""
    search = AdaptationSearch(
        small_testbed.applications,
        small_testbed.catalog,
        small_testbed.limits,
        small_testbed.estimator,
        small_testbed.cost_manager,
        _global_perf_pwr(small_testbed),
        small_testbed.host_ids,
        settings=SearchSettings(self_aware=True, incremental=True),
    )
    names = [app.name for app in small_testbed.applications]
    workloads = {
        name: 45.0 + 5.0 * index for index, name in enumerate(names)
    }
    before = small_testbed.estimator.incremental_evaluations
    outcome = search.search(
        initial_configuration(small_testbed), workloads, 300.0
    )
    assert outcome.actions  # high load forces a real adaptation
    assert small_testbed.estimator.incremental_evaluations > before


# -- estimator: feedback-keyed invalidation ------------------------------------


@pytest.mark.perf_smoke
def test_feedback_version_bump_invalidates_cached_estimates(
    solver, power_models, utility, catalog, base_configuration
):
    feedback = ModelFeedback()
    estimator = FeedbackUtilityEstimator(
        feedback, solver, power_models, utility, catalog
    )
    workloads = {"RUBiS-1": 20.0, "RUBiS-2": 20.0}

    first = estimator.estimate(base_configuration, workloads)
    assert estimator.evaluations == 1
    assert estimator.estimate(base_configuration, workloads) is first
    assert estimator.evaluations == 1  # pure cache hit

    # Measured response times persistently above predictions: the bias
    # estimate moves, the version bumps, and the old key goes stale —
    # no explicit cache clear anywhere.
    feedback.observe({"RUBiS-1": 1.0}, {"RUBiS-1": 0.5})
    assert feedback.version == 1
    fresh = estimator.estimate(base_configuration, workloads)
    assert estimator.evaluations == 2
    assert fresh is not first
