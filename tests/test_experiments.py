"""Tests for the lightweight experiment modules (heavy runs live in
benchmarks/)."""

import pytest

from repro.experiments.fig1_migration_cost import SESSION_LEVELS, run_fig1
from repro.experiments.fig3_utility_function import (
    crossover_checks,
    run_fig3,
)
from repro.experiments.fig4_workloads import run_fig4, shape_checks
from repro.experiments.fig6_stability import run_fig6
from repro.experiments.report import (
    format_series,
    format_table,
    paper_vs_measured,
)


# -- Fig. 1 --------------------------------------------------------------------


@pytest.fixture(scope="module")
def fig1():
    return run_fig1(seed=0)


def test_fig1_covers_all_session_levels(fig1):
    assert set(fig1) == set(SESSION_LEVELS)
    for trace in fig1.values():
        assert len(trace.times) >= 100


def test_fig1_deltas_grow_with_sessions(fig1):
    rt_peaks = [fig1[s].peak_rt_delta() for s in SESSION_LEVELS]
    power_peaks = [fig1[s].peak_power_delta() for s in SESSION_LEVELS]
    assert rt_peaks[0] < rt_peaks[-1]
    assert power_peaks[0] <= power_peaks[-1]


def test_fig1_baseline_is_quiet_before_migration(fig1):
    trace = fig1[400]
    pre = [
        value
        for time, value in zip(trace.times, trace.rt_delta_pct)
        if time < 25.0
    ]
    assert max(abs(v) for v in pre) < 20.0  # only measurement noise


def test_fig1_migration_duration_grows(fig1):
    assert fig1[100].migration_seconds < fig1[800].migration_seconds


# -- Fig. 3 / Fig. 4 ---------------------------------------------------------------


def test_fig3_shape():
    rows = run_fig3()
    assert len(rows) == 21
    checks = crossover_checks(rows)
    assert all(checks.values()), checks


def test_fig4_shapes():
    series = run_fig4()
    assert set(series) == {"RUBiS-1", "RUBiS-2", "RUBiS-3", "RUBiS-4"}
    checks = shape_checks(series)
    assert all(checks.values()), checks


# -- Fig. 6 --------------------------------------------------------------------------


def test_fig6_collects_enough_windows():
    result = run_fig6()
    assert len(result.measured) > 20
    assert len(result.measured) == len(result.estimated)
    assert result.mean_relative_error() < 1.0
    assert all(m > 0 for m in result.measured)


def test_fig6_band_zero_gives_constant_intervals():
    result = run_fig6(band_width=0.0, horizon=3600.0)
    assert set(result.measured) == {120.0}


# -- report helpers ---------------------------------------------------------------------


def test_format_table_alignment():
    text = format_table(
        [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}], title="T"
    )
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "b" in lines[1]
    assert len(lines) == 5


def test_format_table_empty():
    assert "(no rows)" in format_table([], title="T")


def test_format_series_thins_points():
    series = [(float(i), float(i)) for i in range(100)]
    text = format_series(series, "s", max_points=10)
    assert text.startswith("s:")
    assert len(text.split()) <= 15


def test_paper_vs_measured_layout():
    text = paper_vs_measured([("metric", 1.0, 2.0)], title="X")
    assert "metric" in text and "paper" in text and "measured" in text
