"""Tests for the Table I module's pure pieces (runs live in benchmarks)."""

from repro.experiments.table1_scalability import (
    PAPER_TABLE1,
    ScenarioRow,
    scaling_checks,
)


def row(app_count, aware, naive, mistral, ideal):
    return ScenarioRow(
        app_count=app_count,
        vm_count=5 * app_count,
        host_count=2 * app_count,
        self_aware_overall_s=aware,
        self_aware_level1_s=aware * 0.8,
        self_aware_level2_s=aware * 1.5,
        naive_overall_s=naive,
        naive_level1_s=naive * 0.7,
        naive_level2_s=naive * 3.0,
        mistral_utility=mistral,
        ideal_utility=ideal,
    )


def test_paper_reference_values_present():
    assert set(PAPER_TABLE1) == {2, 3, 4}
    for values in PAPER_TABLE1.values():
        assert values["ideal_utility"] > values["mistral_utility"]
        assert values["naive_ms"] > values["self_aware_ms"]


def test_scaling_checks_pass_on_paper_shape():
    rows = [
        row(2, 3.8, 4.3, 152.3, 351.7),
        row(3, 5.7, 11.3, 336.6, 538.3),
        row(4, 7.5, 35.2, 504.8, 701.9),
    ]
    checks = scaling_checks(rows)
    assert all(checks.values()), checks


def test_scaling_checks_flag_inverted_scaling():
    rows = [
        row(2, 3.8, 35.0, 152.3, 351.7),
        row(3, 5.7, 11.3, 336.6, 538.3),
        row(4, 7.5, 4.0, 504.8, 701.9),
    ]
    checks = scaling_checks(rows)
    assert not checks["naive_grows"]


def test_scaling_checks_flag_unbounded_mistral():
    rows = [row(2, 3.8, 4.3, 400.0, 351.7)]
    checks = scaling_checks(rows)
    assert not checks["ideal_bounds_mistral"]
