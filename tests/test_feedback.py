"""Tests for the online model-feedback calibration."""

import pytest

from repro.core.feedback import ModelFeedback


def test_default_factor_is_one():
    feedback = ModelFeedback()
    assert feedback.factor("app") == 1.0
    assert feedback.corrected_target("app", 0.4) == pytest.approx(0.4)


def test_persistent_bias_converges():
    feedback = ModelFeedback()
    for _ in range(30):
        feedback.observe({"app": 0.5}, {"app": 0.4})
    assert feedback.factor("app") == pytest.approx(1.25, rel=0.02)
    assert feedback.corrected_target("app", 0.4) == pytest.approx(
        0.4 / 1.25, rel=0.02
    )


def test_observation_clamp_bounds_spikes():
    feedback = ModelFeedback()
    feedback.observe({"app": 100.0}, {"app": 0.1})  # transient spike
    # A single observation moves the EWMA by at most smoothing * clamp.
    assert feedback.factor("app") <= 1.0 + 0.3 * 1.0 + 1e-9


def test_factor_clamp():
    feedback = ModelFeedback()
    for _ in range(100):
        feedback.observe({"app": 10.0}, {"app": 0.1})
    assert feedback.factor("app") == pytest.approx(1.5)
    for _ in range(200):
        feedback.observe({"app": 0.01}, {"app": 1.0})
    assert feedback.factor("app") == pytest.approx(0.9)


def test_version_bumps_on_update_only():
    feedback = ModelFeedback()
    version = feedback.version
    feedback.observe({"app": 0.5}, {})  # no prediction: no update
    assert feedback.version == version
    feedback.observe({"app": 0.5}, {"app": 0.4})
    assert feedback.version == version + 1


def test_zero_values_ignored():
    feedback = ModelFeedback()
    feedback.observe({"app": 0.0}, {"app": 0.4})
    feedback.observe({"app": 0.4}, {"app": 0.0})
    assert feedback.factor("app") == 1.0


def test_apps_tracked_independently():
    feedback = ModelFeedback()
    for _ in range(20):
        feedback.observe(
            {"slow": 0.6, "fine": 0.4}, {"slow": 0.4, "fine": 0.4}
        )
    assert feedback.factor("slow") > 1.2
    assert feedback.factor("fine") == pytest.approx(1.0)
