"""Recovery machinery: retries, rollback, degradation, determinism."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.host import HostSpec, PowerState
from repro.cluster.transients import TransientModel
from repro.cluster.vm import VmState
from repro.core.actions import IncreaseCpu, MigrateVm, PowerOnHost
from repro.core.config import (
    Configuration,
    ConstraintLimits,
    Placement,
    VmCatalog,
    VmDescriptor,
)
from repro.faults import (
    DegradationLadder,
    DegradationSettings,
    FaultConfig,
    FaultInjector,
    RecoveryPolicy,
    ScriptedActionFault,
)
from repro.power.model import HostPowerModel, SystemPowerModel
from repro.sim.engine import SimulationEngine
from repro.telemetry import runtime
from repro.telemetry.trace import RingBufferSink

LIMITS = ConstraintLimits()


@pytest.fixture(autouse=True)
def telemetry_off():
    runtime.disable()
    runtime.registry.reset()
    yield
    runtime.disable()
    runtime.registry.reset()


def make_cluster():
    engine = SimulationEngine()
    catalog = VmCatalog(
        [
            VmDescriptor("a-web-0", "a", "web"),
            VmDescriptor("a-db-0", "a", "db"),
            VmDescriptor("b-web-0", "b", "web"),
        ]
    )
    hosts = [HostSpec("h1"), HostSpec("h2"), HostSpec("h3")]
    power = SystemPowerModel.uniform(["h1", "h2", "h3"], HostPowerModel())
    cluster = Cluster(
        hosts,
        catalog,
        LIMITS,
        engine,
        TransientModel(catalog),  # noise-free
        power,
        workload_provider=lambda: {"a": 50.0, "b": 50.0},
    )
    cluster.deploy(
        Configuration(
            {
                "a-web-0": Placement("h1", 0.4),
                "a-db-0": Placement("h2", 0.6),
                "b-web-0": Placement("h1", 0.4),
            },
            {"h1", "h2"},
        )
    )
    return engine, cluster


def migrate_all_attempts_fail():
    """An injector that deterministically fails every migrate attempt."""
    return FaultInjector(
        FaultConfig(
            scripted=tuple(
                ScriptedActionFault(kind="migrate", occurrence=index)
                for index in range(10)
            )
        )
    )


# ---------------------------------------------------------------------------
# RecoveryPolicy bounds
# ---------------------------------------------------------------------------


def test_backoff_is_exponential_and_capped():
    policy = RecoveryPolicy()
    assert [policy.backoff_seconds(n) for n in (1, 2, 3, 4, 5)] == [
        10.0,
        20.0,
        40.0,
        80.0,
        120.0,
    ]
    custom = RecoveryPolicy(
        backoff_base_seconds=5.0, backoff_factor=3.0, backoff_max_seconds=40.0
    )
    assert [custom.backoff_seconds(n) for n in (1, 2, 3, 4)] == [
        5.0,
        15.0,
        40.0,
        40.0,
    ]
    with pytest.raises(ValueError):
        policy.backoff_seconds(0)


def test_timeout_never_below_sampled_duration():
    policy = RecoveryPolicy()
    assert policy.timeout_seconds(20.0) == 60.0
    assert policy.timeout_seconds(1.0) == 45.0  # the floor
    # The timeout always exceeds the expected duration, so an unstalled
    # action can never spuriously time out.
    for duration in (0.5, 10.0, 44.9, 45.0, 100.0, 1000.0):
        assert policy.timeout_seconds(duration) >= duration


def test_policy_validation():
    with pytest.raises(ValueError):
        RecoveryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RecoveryPolicy(backoff_factor=0.5)
    with pytest.raises(ValueError):
        RecoveryPolicy(backoff_base_seconds=50.0, backoff_max_seconds=10.0)
    with pytest.raises(ValueError):
        RecoveryPolicy(timeout_factor=0.9)


# ---------------------------------------------------------------------------
# retries and backoff timing
# ---------------------------------------------------------------------------


def test_retry_waits_the_policy_backoff():
    engine, cluster = make_cluster()
    injector = FaultInjector(
        FaultConfig(
            scripted=(
                ScriptedActionFault(kind="migrate", occurrence=0),
                ScriptedActionFault(kind="migrate", occurrence=1),
            )
        )
    )
    policy = RecoveryPolicy()
    execution = cluster.execute_plan(
        [MigrateVm("a-db-0", "h1")],
        fault_injector=injector,
        recovery=policy,
    )
    engine.run_until(3600.0)

    assert execution.completed and execution.aborted is None
    assert execution.failures == 2 and execution.retries == 2
    attempts = [record for record in execution.records if record.phase == "plan"]
    assert [record.outcome for record in attempts] == ["failed", "failed", "ok"]
    assert [record.attempt for record in attempts] == [1, 2, 3]
    # Retry n starts exactly backoff_seconds(n) after failure n surfaces.
    assert attempts[1].start - attempts[0].end == pytest.approx(
        policy.backoff_seconds(1)
    )
    assert attempts[2].start - attempts[1].end == pytest.approx(
        policy.backoff_seconds(2)
    )
    # The migration landed on the third try.
    assert cluster.configuration.placement_of("a-db-0").host_id == "h1"
    assert cluster.vms["a-db-0"].state is VmState.ACTIVE


def test_stalled_action_completes_late_with_outcome_stalled():
    engine, cluster = make_cluster()
    injector = FaultInjector(
        FaultConfig(
            scripted=(
                ScriptedActionFault(
                    kind="increase_cpu", occurrence=0, mode="stall"
                ),
            ),
            stall_factor=2.0,  # below the x3 timeout: completes late
        )
    )
    execution = cluster.execute_plan(
        [IncreaseCpu("a-web-0")],
        fault_injector=injector,
        recovery=RecoveryPolicy(min_timeout_seconds=0.001),
    )
    engine.run_until(3600.0)
    assert execution.completed and execution.aborted is None
    (record,) = execution.records
    assert record.outcome == "stalled"
    assert record.end - record.start == pytest.approx(2.0 * record.spec.duration)
    assert cluster.configuration.placement_of("a-web-0").cpu_cap == 0.5


def test_stall_past_timeout_counts_as_failure():
    engine, cluster = make_cluster()
    injector = FaultInjector(
        FaultConfig(
            scripted=(
                ScriptedActionFault(
                    kind="increase_cpu", occurrence=0, mode="stall"
                ),
            ),
            stall_factor=5.0,  # above the x3 timeout: abandoned
        )
    )
    execution = cluster.execute_plan(
        [IncreaseCpu("a-web-0")],
        fault_injector=injector,
        recovery=RecoveryPolicy(min_timeout_seconds=0.001),
    )
    engine.run_until(3600.0)
    assert execution.completed
    assert execution.records[0].outcome == "timeout"
    assert execution.failures >= 1
    # Abandoned at the timeout, not after the full stalled duration.
    first = execution.records[0]
    assert first.end - first.start == pytest.approx(3.0 * first.spec.duration)


# ---------------------------------------------------------------------------
# rollback
# ---------------------------------------------------------------------------


def test_rollback_restores_exact_prior_configuration():
    engine, cluster = make_cluster()
    before = cluster.configuration
    execution = cluster.execute_plan(
        [IncreaseCpu("a-web-0"), MigrateVm("a-db-0", "h1")],
        fault_injector=migrate_all_attempts_fail(),
        recovery=RecoveryPolicy(max_attempts=3),
    )
    engine.run_until(7200.0)

    assert execution.aborted is not None
    assert "failed after 3 attempts" in execution.aborted
    assert execution.rolled_back
    # The applied prefix (the cap increase) was undone by its inverse.
    rollback = [
        record for record in execution.records if record.phase == "rollback"
    ]
    assert [record.action.kind for record in rollback] == ["decrease_cpu"]
    assert cluster.configuration == before
    assert cluster.configuration.placement_of("a-web-0").cpu_cap == 0.4
    assert cluster.vms["a-db-0"].state is VmState.ACTIVE
    assert cluster.vms["a-db-0"].host_id == "h2"
    assert not cluster.is_adapting()


def test_rollback_disabled_leaves_partial_configuration():
    engine, cluster = make_cluster()
    before = cluster.configuration
    execution = cluster.execute_plan(
        [IncreaseCpu("a-web-0"), MigrateVm("a-db-0", "h1")],
        fault_injector=migrate_all_attempts_fail(),
        recovery=RecoveryPolicy(max_attempts=2, rollback=False),
    )
    engine.run_until(7200.0)
    assert execution.aborted is not None
    assert not execution.rolled_back
    assert cluster.configuration != before
    assert cluster.configuration.placement_of("a-web-0").cpu_cap == 0.5


def test_crash_mid_plan_rolls_back_and_skips_dead_inverses():
    engine, cluster = make_cluster()
    runtime.enable()
    execution = cluster.execute_plan(
        [MigrateVm("a-web-0", "h2"), MigrateVm("a-db-0", "h1")],
        fault_injector=FaultInjector(FaultConfig()),
        recovery=RecoveryPolicy(),
    )
    # Step until the first migration landed and the second is in flight,
    # then kill the host both VMs now depend on.
    time = 0.0
    while True:
        time += 1.0
        engine.run_until(time)
        assert time < 600.0, "plan never reached its second action"
        if (
            len(execution.records) >= 2
            and execution.records[1].action.kind == "migrate"
            and execution.records[1].action.vm_id == "a-db-0"
            and engine.now < execution.records[1].end
        ):
            break
    stranded = cluster.crash_host("h2")
    engine.run_until(time + 3600.0)

    # a-web-0 landed on h2; a-db-0 was still serving from h2 mid-copy.
    assert set(stranded) == {"a-web-0", "a-db-0"}
    assert execution.aborted == "host crash: h2"
    assert execution.records[1].outcome == "aborted"
    assert execution.rolled_back
    # The inverse of the landed migration (a-web-0 back to h1) is
    # inapplicable — the crash already stranded the VM — so rollback
    # skips it instead of failing.
    counters = runtime.registry.snapshot()["counters"]
    assert counters.get("recovery.rollback_skips", 0) == 1
    assert cluster.hosts["h2"].state is PowerState.OFF
    config = cluster.configuration
    assert config.placement_of("a-web-0") is None
    assert config.placement_of("a-db-0") is None
    assert "h2" not in config.powered_hosts
    assert config.violations(cluster.catalog, LIMITS) == []
    assert not cluster.is_adapting()


def test_crash_during_boot_aborts_power_on_cleanly():
    engine, cluster = make_cluster()
    execution = cluster.execute_plan(
        [PowerOnHost("h3"), MigrateVm("a-db-0", "h3")],
        fault_injector=FaultInjector(FaultConfig()),
        recovery=RecoveryPolicy(),
    )
    before = cluster.configuration
    engine.run_until(5.0)  # boot takes ~90 s: still booting
    assert cluster.hosts["h3"].state is PowerState.BOOTING
    cluster.crash_host("h3")
    engine.run_until(7200.0)

    assert execution.aborted == "host crash: h3"
    assert not execution.rolled_back  # nothing had landed yet
    assert cluster.hosts["h3"].state is PowerState.OFF
    assert cluster.configuration == before
    assert cluster.vms["a-db-0"].state is VmState.ACTIVE
    assert cluster.vms["a-db-0"].host_id == "h2"


# ---------------------------------------------------------------------------
# degradation ladder
# ---------------------------------------------------------------------------


def test_ladder_escalates_on_fault_burst():
    ladder = DegradationLadder(
        DegradationSettings(fault_window_seconds=900.0, escalate_after=3)
    )
    assert ladder.level == "normal"
    assert ladder.record_fault(0.0, "action_failure") is None
    assert ladder.record_fault(100.0, "action_failure") is None
    assert ladder.record_fault(200.0, "host_crash") == "pruned"
    # The window restarts after escalation.
    assert ladder.record_fault(300.0, "action_failure") is None
    assert ladder.record_fault(310.0, "action_failure") is None
    assert ladder.record_fault(320.0, "action_failure") == "noop"
    # The top rung cannot escalate further.
    for t in (330.0, 340.0, 350.0):
        assert ladder.record_fault(t, "action_failure") is None
    assert ladder.level == "noop"


def test_ladder_ignores_faults_outside_the_window():
    ladder = DegradationLadder(
        DegradationSettings(fault_window_seconds=100.0, escalate_after=2)
    )
    assert ladder.record_fault(0.0, "action_failure") is None
    # 200s later: the first fault has left the sliding window.
    assert ladder.record_fault(200.0, "action_failure") is None
    assert ladder.level == "normal"
    assert ladder.record_fault(250.0, "action_failure") == "pruned"


def test_deadline_overrun_escalates_immediately():
    ladder = DegradationLadder()
    assert ladder.record_fault(10.0, "deadline") == "pruned"
    assert ladder.record_fault(20.0, "deadline") == "noop"


def test_ladder_recovers_one_rung_per_quiet_period():
    settings = DegradationSettings(
        fault_window_seconds=100.0,
        escalate_after=1,
        recover_after_seconds=500.0,
    )
    ladder = DegradationLadder(settings)
    ladder.record_fault(0.0, "deadline")
    ladder.record_fault(10.0, "deadline")
    assert ladder.level == "noop"
    assert ladder.observe(100.0) is None  # too soon
    assert ladder.observe(510.0) == "pruned"
    assert ladder.observe(511.0) is None  # needs another quiet period
    assert ladder.observe(1100.0) == "normal"
    assert ladder.observe(5000.0) is None  # already at the bottom


def test_degradation_settings_validation():
    with pytest.raises(ValueError):
        DegradationSettings(escalate_after=0)
    with pytest.raises(ValueError):
        DegradationSettings(fault_window_seconds=0.0)
    with pytest.raises(ValueError):
        DegradationSettings(deadline_fraction=1.5)


# ---------------------------------------------------------------------------
# determinism: a fixed fault seed reproduces the exact event trace
# ---------------------------------------------------------------------------


def test_fixed_fault_seed_reproduces_identical_event_trace(small_testbed):
    from repro.testbed import build_mistral

    config = FaultConfig(
        seed=5,
        default_fail_probability=0.4,
        default_stall_probability=0.2,
        sample_stale_probability=0.2,
        sample_drop_probability=0.1,
    )

    def fault_events() -> list[tuple[str, dict]]:
        sink = RingBufferSink()
        controller, initial = build_mistral(small_testbed)
        runtime.enable(sink=sink)
        try:
            small_testbed.run(
                controller, initial, "d", horizon=3600.0, faults=config
            )
        finally:
            runtime.disable()
        return [
            (event["name"], event["attrs"])
            for event in sink.events()
            if event["kind"] == "event"
            and event["name"].startswith(
                ("fault.", "recovery.", "resilience.")
            )
        ]

    first = fault_events()
    second = fault_events()
    assert first, "the fault config injected nothing"
    assert first == second
