"""Tests for the three baseline controllers."""

import pytest

from repro.baselines.perf_pwr import PerfPwrController
from repro.testbed.scenarios import (
    build_perf_cost,
    build_perf_pwr,
    build_pwr_cost,
    perf_cost_host_assignment,
)
from repro.workload.monitor import WorkloadMonitor


@pytest.fixture(scope="module")
def tb():
    from repro.testbed import make_testbed

    return make_testbed(app_count=2, seed=3)


# -- Perf-Pwr ----------------------------------------------------------------


def test_perf_pwr_reoptimizes_on_change(tb):
    controller, initial = build_perf_pwr(tb)
    decisions = controller.on_sample(
        0.0, tb.workloads_at(0.0), initial
    )
    # First sample establishes bands; optimizer output equals the
    # initial configuration only when nothing moved.
    later = controller.on_sample(
        120.0, {"RUBiS-1": 80.0, "RUBiS-2": 75.0}, initial
    )
    assert later, "a large workload change must trigger a plan"
    assert not later[0].is_null
    assert later[0].controller == "perf-pwr"


def test_perf_pwr_skips_when_busy(tb):
    controller, initial = build_perf_pwr(tb)
    controller.on_sample(0.0, tb.workloads_at(0.0), initial)
    assert (
        controller.on_sample(
            120.0, {"RUBiS-1": 80.0, "RUBiS-2": 75.0}, initial, busy=True
        )
        == []
    )
    assert controller.stats.skipped_busy == 1


def test_perf_pwr_null_when_already_optimal(tb):
    controller, initial = build_perf_pwr(tb)
    workloads = tb.workloads_at(0.0)
    target = controller.optimizer.optimize(workloads).configuration
    decisions = controller.on_sample(0.0, workloads, target)
    assert decisions == []
    assert controller.stats.null_decisions == 1


# -- Perf-Cost ----------------------------------------------------------------


def test_perf_cost_assignment_is_two_hosts_per_app(tb):
    assignment = perf_cost_host_assignment(tb)
    assert assignment["RUBiS-1"] == ("host-0", "host-1")
    assert assignment["RUBiS-2"] == ("host-2", "host-3")


def test_perf_cost_initial_configuration_uses_all_pools(tb):
    _, initial = build_perf_cost(tb)
    assert initial.powered_hosts == {"host-0", "host-1", "host-2", "host-3"}
    assert initial.placement_of("RUBiS-1-db-0").host_id == "host-1"
    assert initial.placement_of("RUBiS-2-web-0").host_id == "host-2"


def test_perf_cost_actions_stay_in_the_apps_pool(tb):
    controller, initial = build_perf_cost(tb)
    controller.on_sample(0.0, tb.workloads_at(0.0), initial)
    decisions = controller.on_sample(
        120.0, {"RUBiS-1": 85.0, "RUBiS-2": 20.0}, initial
    )
    assignment = perf_cost_host_assignment(tb)
    for decision in decisions:
        for action in decision.actions:
            assert action.kind not in ("power_on", "power_off")
            target_host = getattr(action, "target_host", None)
            if target_host is not None:
                vm_id = getattr(action, "vm_id", None)
                app = (
                    tb.catalog.get(vm_id).app_name
                    if vm_id
                    else getattr(action, "app_name")
                )
                assert target_host in assignment[app]


def test_perf_cost_never_powers_off(tb):
    controller, initial = build_perf_cost(tb)
    state = initial
    for step in range(4):
        decisions = controller.on_sample(
            step * 120.0, tb.workloads_at(step * 120.0), state
        )
        for decision in decisions:
            for action in decision.actions:
                state = action.apply(state, tb.catalog, tb.limits)
    assert state.powered_hosts == initial.powered_hosts


# -- Pwr-Cost ------------------------------------------------------------------


def test_pwr_cost_plans_toward_oracle_capacities(tb):
    controller, initial = build_pwr_cost(tb)
    controller.on_sample(0.0, tb.workloads_at(0.0), initial)
    decisions = controller.on_sample(
        120.0, {"RUBiS-1": 85.0, "RUBiS-2": 80.0}, initial
    )
    assert decisions
    kinds = {
        action.kind
        for decision in decisions
        for action in decision.actions
    }
    # Scaling up demands capacity growth of some form.
    assert kinds & {"increase_cpu", "add_replica", "power_on", "migrate"}


def test_pwr_cost_consolidates_at_low_load(tb):
    controller, initial = build_pwr_cost(tb)
    state = initial
    for step in range(5):
        decisions = controller.on_sample(
            step * 120.0, {"RUBiS-1": 8.0, "RUBiS-2": 8.0}, state
        )
        for decision in decisions:
            for action in decision.actions:
                state = action.apply(state, tb.catalog, tb.limits)
    assert len(state.powered_hosts) <= 2


def test_pwr_cost_target_is_feasible(tb):
    controller, initial = build_pwr_cost(tb)
    sizes = controller.oracle.minimal_capacities(
        {"RUBiS-1": 60.0, "RUBiS-2": 55.0}
    )
    target = controller._fit(initial, dict(sizes.caps))
    target = controller._consolidate(
        target, {"RUBiS-1": 60.0, "RUBiS-2": 55.0}, 600.0
    )
    assert target.is_candidate(tb.catalog, tb.limits)


def test_pwr_cost_survives_cluster_exhaustion(tb):
    controller, initial = build_pwr_cost(tb)
    # Demand beyond what the pool can serve with margined targets must
    # degrade gracefully, not raise.
    decisions = controller.on_sample(
        0.0, {"RUBiS-1": 100.0, "RUBiS-2": 100.0}, initial
    )
    assert isinstance(decisions, list)


def test_baseline_interface_parity(tb):
    for builder in (build_perf_pwr, build_perf_cost, build_pwr_cost):
        controller, initial = builder(tb)
        controller.record_interval_utility(1.0)  # must not raise
        result = controller.on_sample(
            0.0, tb.workloads_at(0.0), initial, busy=False
        )
        assert isinstance(result, list)
