"""Tests for applications, transactions, and the RUBiS factory."""

import pytest

from repro.apps.application import Application, ApplicationSet, TierSpec
from repro.apps.rubis import (
    make_rubis_application,
    rate_to_sessions,
    sessions_to_rate,
)
from repro.apps.transactions import TransactionType, validate_mix


def simple_txn(name="t", mix=1.0):
    return TransactionType(
        name=name,
        mix_fraction=mix,
        visits={"web": 1, "db": 2},
        demand_per_visit={"web": 0.001, "db": 0.002},
    )


# -- TransactionType -----------------------------------------------------------


def test_tier_demand_multiplies_visits():
    txn = simple_txn()
    assert txn.tier_demand("db") == pytest.approx(0.004)
    assert txn.tier_demand("web") == pytest.approx(0.001)
    assert txn.tier_demand("unknown") == 0.0


def test_tiers_lists_visited_tiers():
    assert set(simple_txn().tiers()) == {"web", "db"}


def test_transaction_validation():
    with pytest.raises(ValueError):
        TransactionType("bad", 1.5, {"web": 1}, {"web": 0.001})
    with pytest.raises(ValueError):
        TransactionType("bad", 0.5, {"web": -1}, {})
    with pytest.raises(ValueError):
        TransactionType("bad", 0.5, {"web": 1}, {"db": 0.001})


def test_validate_mix():
    validate_mix([simple_txn("a", 0.6), simple_txn("b", 0.4)])
    with pytest.raises(ValueError):
        validate_mix([simple_txn("a", 0.6), simple_txn("b", 0.6)])
    with pytest.raises(ValueError):
        validate_mix([simple_txn("a", 0.5), simple_txn("a", 0.5)])
    with pytest.raises(ValueError):
        validate_mix([])


# -- Application -----------------------------------------------------------------


def test_application_validates_tiers_and_mix():
    tiers = [TierSpec("web", "apache"), TierSpec("db", "mysql")]
    app = Application("shop", tiers, [simple_txn()])
    assert app.tier_names() == ("web", "db")
    assert app.tier("db").software == "mysql"
    with pytest.raises(KeyError):
        app.tier("cache")


def test_application_rejects_unknown_tier_in_transaction():
    with pytest.raises(ValueError):
        Application("shop", [TierSpec("api", "nginx")], [simple_txn()])


def test_application_rejects_duplicate_tiers():
    with pytest.raises(ValueError):
        Application(
            "shop",
            [TierSpec("web", "a"), TierSpec("web", "b")],
            [
                TransactionType(
                    "t", 1.0, {"web": 1}, {"web": 0.001}
                )
            ],
        )


def test_mean_demand_is_mix_weighted():
    tiers = [TierSpec("web", "apache"), TierSpec("db", "mysql")]
    light = TransactionType("l", 0.5, {"web": 1, "db": 0}, {"web": 0.001})
    heavy = TransactionType(
        "h", 0.5, {"web": 1, "db": 4}, {"web": 0.001, "db": 0.002}
    )
    app = Application("shop", tiers, [light, heavy])
    assert app.mean_tier_demand("db") == pytest.approx(0.5 * 4 * 0.002)
    assert app.mean_tier_visits("db") == pytest.approx(2.0)


def test_vm_descriptors_cover_all_replica_slots():
    app = make_rubis_application("RUBiS-1")
    ids = [d.vm_id for d in app.vm_descriptors()]
    assert ids == [
        "RUBiS-1-web-0",
        "RUBiS-1-app-0",
        "RUBiS-1-app-1",
        "RUBiS-1-db-0",
        "RUBiS-1-db-1",
    ]


def test_tier_spec_validation():
    with pytest.raises(ValueError):
        TierSpec("web", "apache", min_replicas=0)
    with pytest.raises(ValueError):
        TierSpec("web", "apache", min_replicas=2, max_replicas=1)


# -- ApplicationSet -----------------------------------------------------------------


def test_application_set_basics():
    apps = ApplicationSet(
        [make_rubis_application("A"), make_rubis_application("B")]
    )
    assert apps.names() == ("A", "B")
    assert "A" in apps and len(apps) == 2
    assert apps.get("B").name == "B"


def test_application_set_rejects_duplicates_and_empty():
    with pytest.raises(ValueError):
        ApplicationSet(
            [make_rubis_application("A"), make_rubis_application("A")]
        )
    with pytest.raises(ValueError):
        ApplicationSet([])


def test_build_catalog_merges_applications():
    apps = ApplicationSet(
        [make_rubis_application("A"), make_rubis_application("B")]
    )
    catalog = apps.build_catalog()
    assert len(catalog) == 10
    assert catalog.apps() == ("A", "B")


# -- RUBiS factory ----------------------------------------------------------------


def test_rubis_has_nine_browse_transactions():
    app = make_rubis_application("RUBiS-1")
    assert len(app.transactions) == 9
    validate_mix(app.transactions)


def test_rubis_replication_rules():
    app = make_rubis_application("RUBiS-1")
    assert app.tier("web").max_replicas == 1
    assert app.tier("app").max_replicas == 2
    assert app.tier("db").max_replicas == 2


def test_rubis_demand_normalization_anchors():
    app = make_rubis_application("RUBiS-1")
    profile = app.demand_profile()
    assert profile["web"] == pytest.approx(0.0012)
    assert profile["app"] == pytest.approx(0.0032)
    assert profile["db"] == pytest.approx(0.0070)


def test_rubis_demand_scale():
    fast = make_rubis_application("fast", demand_scale=0.5)
    assert fast.demand_profile()["db"] == pytest.approx(0.0035)
    with pytest.raises(ValueError):
        make_rubis_application("bad", demand_scale=0.0)


def test_db_heaviest_tier():
    app = make_rubis_application("RUBiS-1")
    profile = app.demand_profile()
    assert profile["db"] > profile["app"] > profile["web"]


# -- session mapping ----------------------------------------------------------------


def test_session_rate_mapping_roundtrip():
    assert rate_to_sessions(100.0) == pytest.approx(800.0)
    assert sessions_to_rate(800.0) == pytest.approx(100.0)
    assert sessions_to_rate(rate_to_sessions(37.5)) == pytest.approx(37.5)


def test_session_mapping_rejects_negative():
    with pytest.raises(ValueError):
        rate_to_sessions(-1.0)
    with pytest.raises(ValueError):
        sessions_to_rate(-1.0)
