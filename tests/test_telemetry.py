"""Telemetry subsystem: instruments, tracing, and the off-switch contract."""

import json

import pytest

from repro.telemetry import runtime
from repro.telemetry.metrics import Counter, Histogram, MetricsRegistry
from repro.telemetry.trace import (
    SCHEMA_VERSION,
    JsonlFileSink,
    RingBufferSink,
    Tracer,
)


@pytest.fixture(autouse=True)
def telemetry_off():
    """Every test starts and ends with global telemetry disabled."""
    runtime.disable()
    runtime.registry.reset()
    yield
    runtime.disable()
    runtime.registry.reset()


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------


def test_histogram_bucket_edges():
    histogram = Histogram("t", bounds=(0.001, 0.01, 0.1))
    # A value equal to a bound lands in that bound's bucket
    # (upper-bound / ``le`` convention).
    histogram.observe(0.001)
    histogram.observe(0.0005)  # below first bound -> bucket 0
    histogram.observe(0.0011)  # just above -> bucket 1
    histogram.observe(0.1)  # equal to last bound -> bucket 2
    histogram.observe(5.0)  # above every bound -> overflow
    assert histogram.counts == [2, 1, 1, 1]
    assert histogram.count == 5
    assert histogram.sum == pytest.approx(0.001 + 0.0005 + 0.0011 + 0.1 + 5.0)
    assert histogram.mean == pytest.approx(histogram.sum / 5)


def test_histogram_rejects_bad_bounds():
    with pytest.raises(ValueError):
        Histogram("t", bounds=())
    with pytest.raises(ValueError):
        Histogram("t", bounds=(0.1, 0.1))
    with pytest.raises(ValueError):
        Histogram("t", bounds=(0.2, 0.1))


def test_counter_accumulates_without_overflow():
    counter = Counter("c")
    # Push far past 2**64: Python ints are unbounded, the counter must
    # simply keep counting.
    counter.inc(2**64)
    counter.inc(2**64)
    counter.inc()
    assert counter.value == 2**65 + 1
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_registry_instruments_and_name_collisions():
    registry = MetricsRegistry()
    registry.counter("a").inc(3)
    assert registry.counter("a").value == 3  # same instrument returned
    registry.gauge("g").set(1.5)
    with pytest.raises(ValueError):
        registry.gauge("a")  # name already used by a counter
    snapshot = registry.snapshot()
    assert snapshot["counters"] == {"a": 3}
    assert snapshot["gauges"] == {"g": 1.5}


def test_registry_cache_stats_aggregate_and_weakref():
    from repro.core.lru import LruDict

    registry = MetricsRegistry()
    first = LruDict(4)
    second = LruDict(4)
    registry.register_cache("test.cache", first)
    registry.register_cache("test.cache", second)
    first.put("k", 1)
    first.get("k")
    second.get("absent")
    stats = registry.cache_stats()["test.cache"]
    assert stats == {
        "instances": 2,
        "hits": 1,
        "misses": 1,
        "evictions": 0,
        "entries": 1,
    }
    del second
    assert registry.cache_stats()["test.cache"]["instances"] == 1


# ---------------------------------------------------------------------------
# tracing
# ---------------------------------------------------------------------------


def test_span_nesting_and_ordering_in_jsonl(tmp_path):
    path = tmp_path / "trace.jsonl"
    tracer = Tracer(JsonlFileSink(path))
    with tracer.span("outer", run=1) as outer:
        tracer.event("point", x=2)
        with tracer.span("inner") as inner:
            inner.set("deep", True)
        outer.set(done=True)
    tracer.sink.close()

    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert lines[0]["kind"] == "meta"
    assert lines[0]["schema"] == SCHEMA_VERSION
    assert all(line["v"] == SCHEMA_VERSION for line in lines)

    by_name = {line["name"]: line for line in lines if line["kind"] != "meta"}
    outer_event = by_name["outer"]
    inner_event = by_name["inner"]
    point = by_name["point"]
    # Spans emit at close: the inner span appears before the outer.
    names = [line["name"] for line in lines[1:]]
    assert names == ["point", "inner", "outer"]
    # Nesting is reconstructed from parent/depth, not file order.
    assert outer_event["parent"] is None and outer_event["depth"] == 0
    assert inner_event["parent"] == outer_event["seq"]
    assert inner_event["depth"] == 1
    assert point["parent"] == outer_event["seq"]
    # Timestamps are monotonic and the durations nest.
    assert inner_event["t"] >= outer_event["t"]
    assert outer_event["dur"] >= inner_event["dur"] >= 0.0
    assert outer_event["attrs"] == {"run": 1, "done": True}
    assert inner_event["attrs"] == {"deep": True}


def test_ring_buffer_sink_caps_capacity():
    sink = RingBufferSink(capacity=3)
    tracer = Tracer(sink)
    for index in range(5):
        tracer.event("e", i=index)
    kept = [event["attrs"]["i"] for event in sink.events()]
    assert kept == [2, 3, 4]


def test_disabled_mode_emits_nothing_and_touches_no_instruments():
    """With telemetry off, instrumented code paths must neither emit
    events nor look up any instrument."""

    class Exploding:
        # Cache *registration* is a constructor-time act and allowed
        # while disabled; only instrument lookups must not happen.
        def register_cache(self, name, cache):
            pass

        def __getattr__(self, name):
            raise AssertionError(f"instrument access while disabled: {name}")

    sink = RingBufferSink()
    runtime.tracer.set_sink(sink)
    original_registry = runtime.registry
    runtime.registry = Exploding()
    try:
        from repro.testbed.scenarios import build_mistral, make_testbed

        testbed = make_testbed(2, seed=0)
        controller, initial = build_mistral(testbed)
        testbed.run(controller, initial, "mistral", horizon=600.0)
    finally:
        runtime.registry = original_registry
        runtime.tracer.set_sink(RingBufferSink())
    assert len(sink) == 0

    # The no-op span hands out a shared object that swallows attrs.
    span = runtime.span("anything", a=1)
    with span as entered:
        entered.set("k", 1)
        entered.set(k2=2)
        entered["k3"] = 3


def test_enable_disable_cycle_routes_events(tmp_path):
    path = tmp_path / "cycle.jsonl"
    runtime.enable(jsonl_path=str(path))
    assert runtime.enabled
    with runtime.span("top", phase="test"):
        runtime.event("tick", n=1)
    runtime.registry.counter("c").inc(2)
    runtime.emit_metrics_snapshot(label="done")
    runtime.disable()
    assert not runtime.enabled

    lines = [json.loads(line) for line in path.read_text().splitlines()]
    kinds = [(line["kind"], line.get("name")) for line in lines]
    assert kinds == [
        ("meta", None),
        ("event", "tick"),
        ("span", "top"),
        ("event", "metrics.snapshot"),
    ]
    snapshot = lines[-1]["attrs"]["metrics"]
    assert snapshot["counters"]["c"] == 2
    assert lines[-1]["attrs"]["label"] == "done"


# ---------------------------------------------------------------------------
# whole-search smoke
# ---------------------------------------------------------------------------


def test_search_trace_matches_outcome(search_setup):
    """A traced search emits one search.run event whose expansion count
    matches the returned SearchOutcome."""
    search, start, workloads = search_setup
    sink = RingBufferSink()
    runtime.enable(sink=sink)
    try:
        outcome = search.search(start, workloads, 300.0)
    finally:
        runtime.disable()
    runs = [
        event for event in sink.events() if event["name"] == "search.run"
    ]
    assert len(runs) == 1
    attrs = runs[0]["attrs"]
    assert attrs["expansions"] == outcome.expansions
    assert attrs["actions"] == len(outcome.actions)
    assert attrs["decision_seconds"] == pytest.approx(
        outcome.decision_seconds
    )
    assert attrs["children_generated"] >= outcome.expansions
    # The registry saw the same totals.
    counters = runtime.registry.snapshot()["counters"]
    assert counters["search.runs"] == 1
    assert counters["search.expansions"] == outcome.expansions


def test_early_return_search_reports_wall_seconds(search_setup):
    """The no-escape path still measures wall time and flags itself."""
    search, start, workloads = search_setup
    # Search from the ideal configuration for the same workloads: the
    # second call starts where the optimizer already wants to be.
    ideal = search.perf_pwr.optimize(workloads).configuration
    sink = RingBufferSink()
    runtime.enable(sink=sink)
    try:
        outcome = search.search(ideal, workloads, 300.0)
    finally:
        runtime.disable()
    assert outcome.expansions == 0
    assert outcome.actions == ()
    assert outcome.wall_seconds > 0.0
    (run,) = [e for e in sink.events() if e["name"] == "search.run"]
    assert run["attrs"]["early_return"] is True
    assert run["attrs"]["dur"] == pytest.approx(outcome.wall_seconds)


@pytest.fixture(scope="module")
def search_setup():
    from repro.core.search import AdaptationSearch, SearchSettings
    from repro.testbed.scenarios import (
        _global_perf_pwr,
        initial_configuration,
        make_testbed,
    )

    testbed = make_testbed(2, seed=0)
    search = AdaptationSearch(
        testbed.applications,
        testbed.catalog,
        testbed.limits,
        testbed.estimator,
        testbed.cost_manager,
        _global_perf_pwr(testbed),
        testbed.host_ids,
        settings=SearchSettings(self_aware=True),
    )
    names = [app.name for app in testbed.applications]
    workloads = {
        name: 45.0 + 5.0 * index for index, name in enumerate(names)
    }
    return search, initial_configuration(testbed), workloads


# ---------------------------------------------------------------------------
# report CLI
# ---------------------------------------------------------------------------


def _report_module():
    import importlib.util
    from pathlib import Path

    path = (
        Path(__file__).resolve().parents[1]
        / "scripts"
        / "telemetry_report.py"
    )
    spec = importlib.util.spec_from_file_location("telemetry_report", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_report_rejects_unknown_schema_version(tmp_path):
    report = _report_module()
    path = tmp_path / "future.jsonl"
    path.write_text(
        json.dumps({"v": 999, "kind": "meta", "schema": 999, "attrs": {}})
        + "\n"
    )
    with pytest.raises(report.SchemaError, match="schema version 999"):
        report.read_trace(path)
    # And via the CLI: clear error, non-zero exit.
    assert report.main([str(path)]) == 1


def test_report_rolls_up_controller_decisions(tmp_path):
    report = _report_module()
    path = tmp_path / "trace.jsonl"
    runtime.enable(jsonl_path=str(path))
    try:
        with runtime.span(
            "controller.decision",
            controller="L1",
            null=False,
            actions=["AddVm"],
            expansions=12,
            decision_seconds=1.5,
            search_watts=7.2,
        ):
            pass
        runtime.emit_metrics_snapshot()
    finally:
        runtime.disable()
    rollup = report.build_report(report.read_trace(path))
    row = rollup["controllers"]["L1"]
    assert row["decisions"] == 1
    assert row["total_expansions"] == 12
    assert row["mean_decision_seconds"] == pytest.approx(1.5)
    assert row["mean_search_watts"] == pytest.approx(7.2)
    assert report.render(rollup)  # renders without error
