"""Tests for figure-module helpers using synthetic run metrics."""

import pytest

from repro.experiments.fig8_strategies import shape_checks
from repro.experiments.fig9_cumulative_utility import (
    comparison_rows,
    ordering_checks,
)
from repro.experiments.strategies import Comparison
from repro.testbed.metrics import RunMetrics, TimeSeries


def synthetic_run(strategy, utility_per_interval, power, rt_values):
    run = RunMetrics(strategy=strategy)
    for app in ("RUBiS-1", "RUBiS-2"):
        run.response_times[app] = TimeSeries(app)
    for index, rt in enumerate(rt_values):
        time = index * 120.0
        run.response_times["RUBiS-1"].append(time, rt)
        run.response_times["RUBiS-2"].append(time, rt / 2)
        run.power_watts.append(time, power)
        run.utility_increments.append(time, utility_per_interval)
    return run


class _FakeTestbed:
    class _Utility:
        class parameters:
            target_response_time = 0.4

    utility = _Utility()


def synthetic_comparison():
    runs = {
        "mistral": synthetic_run("mistral", 1.0, 220.0, [0.2, 0.3, 0.5]),
        "pwr-cost": synthetic_run("pwr-cost", 0.6, 230.0, [0.2, 0.3, 0.3]),
        "perf-cost": synthetic_run("perf-cost", 0.2, 310.0, [0.1, 0.1, 0.1]),
        "perf-pwr": synthetic_run("perf-pwr", -0.5, 225.0, [0.6, 0.9, 1.2]),
    }
    # Action counts: perf-pwr adapts most, mistral less.
    for _ in range(10):
        runs["perf-pwr"].actions.append(None)
    for _ in range(3):
        runs["mistral"].actions.append(None)
    return Comparison(testbed=_FakeTestbed(), runs=runs)


def test_fig9_rows_are_sorted_and_complete():
    comparison = synthetic_comparison()
    rows = comparison_rows(comparison)
    assert [row["strategy"] for row in rows] == [
        "mistral",
        "pwr-cost",
        "perf-cost",
        "perf-pwr",
    ]
    assert all("paper" in row for row in rows)


def test_fig9_ordering_checks_pass_on_paper_shape():
    checks = ordering_checks(synthetic_comparison())
    assert all(checks.values()), checks


def test_fig9_ordering_checks_fail_when_flipped():
    comparison = synthetic_comparison()
    comparison.runs["mistral"], comparison.runs["perf-pwr"] = (
        comparison.runs["perf-pwr"],
        comparison.runs["mistral"],
    )
    # After the swap the dict values no longer match their keys'
    # intended shapes; mistral's series now loses.
    checks = ordering_checks(comparison)
    assert not checks["mistral_wins"]


def test_fig8_shape_checks_on_paper_shape():
    checks = shape_checks(synthetic_comparison())
    assert checks["perf_cost_burns_most_power"]
    assert checks["perf_cost_best_response_times"]
    assert checks["perf_pwr_most_adaptations"]
    assert checks["perf_pwr_most_violations"]
    assert checks["mistral_power_below_perf_cost"]
    assert checks["mistral_fewer_actions_than_perf_pwr"]
