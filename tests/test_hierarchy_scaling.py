"""Scenario-scaling tests: 3-app and 4-app testbeds build and run."""

import pytest

from repro.testbed.scenarios import build_mistral, make_testbed


@pytest.mark.parametrize("app_count,hosts,vms", [(3, 6, 15), (4, 8, 20)])
def test_larger_scenarios_build(app_count, hosts, vms):
    testbed = make_testbed(app_count=app_count, seed=5)
    assert len(testbed.host_ids) == hosts
    assert len(testbed.catalog) == vms
    assert len(testbed.applications) == app_count


def test_four_app_hierarchy_has_two_level1_controllers():
    testbed = make_testbed(app_count=4, seed=5)
    hierarchy, initial = build_mistral(testbed)
    assert len(hierarchy.level1) == 2
    scopes = [
        frozenset(controller.search.scope_hosts)
        for controller in hierarchy.level1
    ]
    assert scopes[0] & scopes[1] == frozenset()
    assert scopes[0] | scopes[1] == frozenset(testbed.host_ids)


def test_three_app_short_run():
    testbed = make_testbed(app_count=3, seed=5)
    hierarchy, initial = build_mistral(testbed)
    metrics = testbed.run(hierarchy, initial, "3app", horizon=1800.0)
    assert set(metrics.response_times) == {"RUBiS-1", "RUBiS-2", "RUBiS-3"}
    assert metrics.mean_power() > 100.0


def test_single_level_controller_variant():
    testbed = make_testbed(app_count=2, seed=5)
    controller, initial = build_mistral(testbed, hierarchical=False)
    metrics = testbed.run(controller, initial, "flat", horizon=1200.0)
    assert controller.stats.invocations > 0
    assert len(metrics.power_watts) == 11
