"""White-box tests for adaptation-search internals."""

import pytest

from repro.core.actions import AddReplica, MigrateVm, PowerOnHost
from repro.core.config import Configuration, Placement
from repro.core.search import AdaptationSearch, SearchSettings

HOSTS = ("host-0", "host-1", "host-2", "host-3")


@pytest.fixture
def search(apps, catalog, limits, estimator, cost_manager, optimizer):
    return AdaptationSearch(
        apps, catalog, limits, estimator, cost_manager, optimizer, HOSTS
    )


@pytest.fixture
def config(base_configuration):
    return base_configuration


# -- action enumeration ----------------------------------------------------------


def test_enumeration_covers_all_kinds(search, config):
    actions = search._enumerate_actions(config)
    kinds = {action.kind for action in actions}
    assert kinds == {
        "increase_cpu",
        "decrease_cpu",
        "migrate",
        "add_replica",
        "power_on",
    }
    # No removable replicas (all tiers at one replica) and no idle
    # powered hosts, hence no remove/power_off.


def test_enumeration_includes_remove_and_power_off(search, config):
    grown = config.replace("RUBiS-1-db-1", Placement("host-0", 0.2))
    grown = grown.power_on("host-2")
    actions = search._enumerate_actions(grown)
    kinds = {action.kind for action in actions}
    assert "remove_replica" in kinds
    assert "power_off" in kinds


def test_enumeration_migration_targets_are_powered(search, config):
    actions = search._enumerate_actions(config)
    for action in actions:
        if isinstance(action, MigrateVm):
            assert action.target_host in config.powered_hosts


def test_enumeration_emits_cap_jumps_toward_ideal(search, config):
    target_caps = {"RUBiS-1-db-0": 0.8}
    actions = search._enumerate_actions(config, target_caps)
    jumps = [
        action
        for action in actions
        if getattr(action, "count", 1) > 1
        and getattr(action, "vm_id", None) == "RUBiS-1-db-0"
    ]
    assert jumps, "expected a multi-step jump to the ideal cap"
    assert jumps[0].count == 4  # 0.4 -> 0.8


def test_enumeration_add_replica_uses_ideal_cap(search, config):
    target_caps = {"RUBiS-1-db-1": 0.6}
    actions = search._enumerate_actions(config, target_caps)
    caps = {
        action.cpu_cap
        for action in actions
        if isinstance(action, AddReplica)
        and action.app_name == "RUBiS-1"
        and action.tier_name == "db"
    }
    assert 0.6 in caps
    assert 0.2 in caps  # the default replica cap remains available


# -- cost-to-go ------------------------------------------------------------------


def test_togo_seconds_zero_for_identical_configs(search, config):
    durations = search._togo_durations({"RUBiS-1": 50.0, "RUBiS-2": 50.0})
    assert search._togo_seconds(config, config, durations) == pytest.approx(0.0)


def test_togo_seconds_counts_each_difference(search, config):
    durations = search._togo_durations({"RUBiS-1": 50.0, "RUBiS-2": 50.0})
    moved = config.replace(
        "RUBiS-1-db-0", Placement("host-0", 0.4)
    )
    migrate_only = search._togo_seconds(config, moved, durations)
    assert migrate_only == pytest.approx(
        durations[("migrate", "db")]
    )
    recapped = config.replace("RUBiS-1-db-0", Placement("host-1", 0.6))
    cap_only = search._togo_seconds(config, recapped, durations)
    assert cap_only == pytest.approx(2.0)  # two cap steps at ~1 s each
    powered = config.power_on("host-2")
    boot_only = search._togo_seconds(config, powered, durations)
    assert boot_only == pytest.approx(durations[("power_on", "-")])


def test_togo_seconds_replica_changes(search, config):
    grown = config.replace("RUBiS-1-db-1", Placement("host-0", 0.2))
    durations = search._togo_durations({"RUBiS-1": 50.0, "RUBiS-2": 50.0})
    add_cost = search._togo_seconds(config, grown, durations)
    assert add_cost == pytest.approx(durations[("add_replica", "db")])
    remove_cost = search._togo_seconds(grown, config, durations)
    assert remove_cost == pytest.approx(durations[("remove_replica", "db")])


# -- distance ---------------------------------------------------------------------


def test_distance_zero_at_ideal(search, optimizer, config):
    workloads = {"RUBiS-1": 50.0, "RUBiS-2": 50.0}
    ideal = optimizer.optimize(workloads)
    weights, caps = search._ideal_distance_basis(ideal)
    assert search._distance(
        ideal.configuration, caps, weights, ideal
    ) == pytest.approx(0.0)


def test_distance_grows_with_cap_mismatch(search, optimizer, config):
    workloads = {"RUBiS-1": 50.0, "RUBiS-2": 50.0}
    ideal = optimizer.optimize(workloads)
    weights, caps = search._ideal_distance_basis(ideal)
    base = search._distance(config, caps, weights, ideal)
    assert base > 0.0


# -- projection --------------------------------------------------------------------


def test_project_ideal_pins_out_of_scope_vms(
    apps, catalog, limits, estimator, cost_manager, optimizer, config
):
    scoped = AdaptationSearch(
        apps, catalog, limits, estimator, cost_manager, optimizer,
        ("host-0",),
        SearchSettings(
            allowed_kinds=frozenset({"increase_cpu", "decrease_cpu", "migrate"})
        ),
    )
    scoped.scope_hosts = frozenset({"host-0"})
    workloads = {"RUBiS-1": 60.0, "RUBiS-2": 55.0}
    ideal = optimizer.optimize(workloads)
    projected = scoped._project_ideal(config, ideal, workloads)
    # host-1 VMs untouched; replication unchanged (no add/remove kinds).
    for vm_id in config.vms_on_host("host-1"):
        assert projected.configuration.placement_of(vm_id) == (
            config.placement_of(vm_id)
        )
    assert set(projected.configuration.placed_vm_ids()) == set(
        config.placed_vm_ids()
    )
    assert projected.configuration.powered_hosts == config.powered_hosts
